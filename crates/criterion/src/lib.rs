//! Vendored, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the subset of criterion's surface the workspace's benches use:
//! [`Criterion`] with the `sample_size` / `warm_up_time` / `measurement_time`
//! builders, [`Criterion::bench_function`] with a [`Bencher`] whose
//! [`iter`](Bencher::iter) times a closure, and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the `name = ..; config = ..; targets =`
//! and the positional forms).
//!
//! Measurement is plain wall-clock: each bench is calibrated to the target
//! measurement time, run for `sample_size` samples, and reported as a single
//! `name  median ± spread  (N samples × M iters)` line on stdout. There is
//! no statistical outlier analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Re-export for call sites that import `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver: holds the measurement configuration and runs benches.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent warming up (calibrating iteration count) per bench.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Target total measurement time per bench.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up / calibration: grow the iteration count until one batch
        // takes a measurable slice of the warm-up budget.
        let mut iters: u64 = 1;
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_nanos(1);
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / iters as u32;
            }
            if Instant::now() >= warm_deadline || b.elapsed >= Duration::from_millis(20) {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        // Pick per-sample iterations so all samples fit the measurement time.
        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let per = per_iter.as_nanos().max(1);
        let sample_iters = ((budget / per) as u64).clamp(1, 1 << 30);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed / sample_iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let spread = samples[samples.len() - 1].saturating_sub(samples[0]);
        println!(
            "{name:<40} {:>12} ± {:<10} ({} samples × {} iters)",
            fmt_duration(median),
            fmt_duration(spread),
            self.sample_size,
            sample_iters
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Timing handle passed to each bench routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this batch's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a bench group: a function running each target against a shared
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("counts", |b| {
            calls += 1;
            b.iter(|| black_box(calls))
        });
        assert!(calls >= 4, "warm-up plus 3 samples should call the routine");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
