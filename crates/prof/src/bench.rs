//! The `BENCH_<n>.json` performance-trajectory schema written by
//! `cargo xtask perf` (ROADMAP perf-trajectory item).
//!
//! One file per PR, at the repo root, so `git log -p BENCH_*.json` is
//! the simulator's performance history. `xtask perf` compares the fresh
//! report against the highest-numbered prior file and *warns* (never
//! fails) when a scenario's `sim_cycles_per_sec` regresses by more than
//! [`REGRESSION_THRESHOLD`].

use pcmap_obs::Value;

/// Schema version of BENCH files.
pub const SCHEMA_VERSION: u64 = 1;

/// Relative throughput drop that counts as a regression (>10%).
pub const REGRESSION_THRESHOLD: f64 = 0.10;

/// One measured scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchScenario {
    /// Stable scenario name (`fig08-irlp`, `sweep-jobs4`, ...).
    pub name: String,
    /// Wall-clock time of the child process, milliseconds.
    pub wall_ms: u64,
    /// Simulated memory cycles summed over the scenario's runs.
    pub sim_cycles: u64,
    /// Headline throughput: simulated cycles per wall second.
    pub sim_cycles_per_sec: f64,
    /// Peak RSS of the child in kilobytes, if the OS reported one.
    pub peak_rss_kb: Option<u64>,
    /// The child's full `pcmap-prof-report` document (spans, counters,
    /// occupancy, alloc) — [`Value::Null`] if the sidecar was missing.
    pub profile: Value,
}

impl BenchScenario {
    /// Serializes to the BENCH JSON shape.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut o = Value::obj();
        o.set("name", Value::Str(self.name.clone()));
        o.set("wall_ms", Value::U64(self.wall_ms));
        o.set("sim_cycles", Value::U64(self.sim_cycles));
        o.set("sim_cycles_per_sec", Value::F64(self.sim_cycles_per_sec));
        o.set(
            "peak_rss_kb",
            self.peak_rss_kb.map_or(Value::Null, Value::U64),
        );
        o.set("profile", self.profile.clone());
        o
    }

    /// Parses one scenario object; `None` if required fields are absent.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(Self {
            name: match v.get("name")? {
                Value::Str(s) => s.clone(),
                _ => return None,
            },
            wall_ms: v.get("wall_ms")?.as_u64()?,
            sim_cycles: v.get("sim_cycles")?.as_u64()?,
            sim_cycles_per_sec: v.get("sim_cycles_per_sec")?.as_f64()?,
            peak_rss_kb: match v.get("peak_rss_kb") {
                Some(Value::Null) | None => None,
                Some(other) => Some(other.as_u64()?),
            },
            profile: v.get("profile").cloned().unwrap_or(Value::Null),
        })
    }
}

/// A whole BENCH file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The `n` of `BENCH_<n>.json` (PR index in the stacked sequence).
    pub bench_index: u64,
    /// `"full"` or `"smoke"` — scenario scales differ between modes, so
    /// cross-mode comparisons are skipped.
    pub mode: String,
    /// The measured scenarios, in execution order.
    pub scenarios: Vec<BenchScenario>,
}

impl BenchReport {
    /// Serializes to the schema-versioned BENCH document.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        v.set("schema", Value::Str("pcmap-bench".to_owned()));
        v.set("schema_version", Value::U64(SCHEMA_VERSION));
        v.set("bench_index", Value::U64(self.bench_index));
        v.set("mode", Value::Str(self.mode.clone()));
        v.set(
            "scenarios",
            Value::Arr(self.scenarios.iter().map(BenchScenario::to_value).collect()),
        );
        v
    }

    /// Parses a BENCH document; `None` on schema mismatch.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<Self> {
        if v.get("schema") != Some(&Value::Str("pcmap-bench".to_owned())) {
            return None;
        }
        let Value::Arr(items) = v.get("scenarios")? else {
            return None;
        };
        Some(Self {
            bench_index: v.get("bench_index")?.as_u64()?,
            mode: match v.get("mode")? {
                Value::Str(s) => s.clone(),
                _ => return None,
            },
            scenarios: items
                .iter()
                .map(BenchScenario::from_value)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    /// Compares against a prior report: scenarios (matched by name, same
    /// mode only) whose throughput dropped more than
    /// [`REGRESSION_THRESHOLD`]. Each entry is
    /// `(name, old cycles/sec, new cycles/sec)`.
    #[must_use]
    pub fn regressions_vs(&self, prior: &BenchReport) -> Vec<(String, f64, f64)> {
        if self.mode != prior.mode {
            return Vec::new();
        }
        let mut out = Vec::new();
        for s in &self.scenarios {
            let Some(old) = prior.scenarios.iter().find(|p| p.name == s.name) else {
                continue;
            };
            if old.sim_cycles_per_sec > 0.0
                && s.sim_cycles_per_sec < old.sim_cycles_per_sec * (1.0 - REGRESSION_THRESHOLD)
            {
                out.push((s.name.clone(), old.sim_cycles_per_sec, s.sim_cycles_per_sec));
            }
        }
        out
    }
}

/// Compact trajectory view over a set of parsed BENCH reports: one row
/// per file carrying only the schema version, mode, and per-scenario
/// `sim_cycles_per_sec` — small enough to plot or diff at a glance.
/// Written by `cargo xtask perf` as `results/bench_history.json`.
#[must_use]
pub fn history_value(reports: &[BenchReport]) -> Value {
    Value::Arr(
        reports
            .iter()
            .map(|r| {
                let mut o = Value::obj();
                o.set("bench_index", Value::U64(r.bench_index));
                o.set("schema_version", Value::U64(SCHEMA_VERSION));
                o.set("mode", Value::Str(r.mode.clone()));
                let mut rates = Value::obj();
                for s in &r.scenarios {
                    rates.set(&s.name, Value::F64(s.sim_cycles_per_sec));
                }
                o.set("sim_cycles_per_sec", rates);
                o
            })
            .collect(),
    )
}

/// Index for the next `BENCH_<n>.json` artifact.
///
/// `existing` holds the indices already parsed from the repo root (any
/// order, gaps welcome); `taken` reports whether a candidate index is
/// occupied on disk — covering files the directory scan missed (a
/// pre-existing target must never be overwritten). The result is the
/// first free index at or above 6 (the trajectory's historical start)
/// that is also beyond every existing index.
pub fn next_bench_index(existing: &[u64], taken: impl Fn(u64) -> bool) -> u64 {
    let mut candidate = existing
        .iter()
        .max()
        .map_or(6, |&hi| hi.saturating_add(1).max(6));
    while taken(candidate) {
        candidate += 1;
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            bench_index: 6,
            mode: "full".to_owned(),
            scenarios: vec![
                BenchScenario {
                    name: "sweep-jobs1".to_owned(),
                    wall_ms: 4200,
                    sim_cycles: 9_000_000,
                    sim_cycles_per_sec: 2_142_857.1,
                    peak_rss_kb: Some(51_200),
                    profile: Value::Null,
                },
                BenchScenario {
                    name: "sweep-jobs4".to_owned(),
                    wall_ms: 1500,
                    sim_cycles: 9_000_000,
                    sim_cycles_per_sec: 6_000_000.0,
                    peak_rss_kb: None,
                    profile: Value::Null,
                },
            ],
        }
    }

    #[test]
    fn bench_schema_round_trips_through_json_text() {
        let report = sample();
        let text = report.to_value().to_json_pretty();
        let parsed = pcmap_obs::json::parse(&text).expect("BENCH JSON parses");
        let back = BenchReport::from_value(&parsed).expect("schema accepted");
        assert_eq!(back, report);
        assert_eq!(
            parsed.get("schema_version").and_then(Value::as_u64),
            Some(SCHEMA_VERSION)
        );
    }

    #[test]
    fn regression_detection_uses_threshold_and_mode() {
        let old = sample();
        let mut new = sample();
        // 5% slower: not a regression.
        new.scenarios[0].sim_cycles_per_sec = old.scenarios[0].sim_cycles_per_sec * 0.95;
        assert!(new.regressions_vs(&old).is_empty());
        // 20% slower: flagged.
        new.scenarios[0].sim_cycles_per_sec = old.scenarios[0].sim_cycles_per_sec * 0.80;
        let regs = new.regressions_vs(&old);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].0, "sweep-jobs1");
        // Different mode: comparison skipped entirely.
        new.mode = "smoke".to_owned();
        assert!(new.regressions_vs(&old).is_empty());
    }

    #[test]
    fn history_rows_carry_version_mode_and_rates() {
        let h = history_value(&[sample()]);
        let Value::Arr(rows) = &h else {
            panic!("history must be an array");
        };
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.get("bench_index"), Some(&Value::U64(6)));
        assert_eq!(
            row.get("schema_version").and_then(Value::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(row.get("mode"), Some(&Value::Str("full".to_owned())));
        let rates = row.get("sim_cycles_per_sec").expect("rates present");
        assert_eq!(
            rates.get("sweep-jobs4").and_then(Value::as_f64),
            Some(6_000_000.0)
        );
        // Round-trips through the JSON text layer.
        pcmap_obs::json::parse(&h.to_json_string()).expect("valid JSON");
    }

    #[test]
    fn from_value_rejects_foreign_documents() {
        let mut v = Value::obj();
        v.set("schema", Value::Str("something-else".to_owned()));
        assert!(BenchReport::from_value(&v).is_none());
        assert!(BenchReport::from_value(&Value::Null).is_none());
    }
}
