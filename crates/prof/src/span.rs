//! Scoped host-monotonic spans over the simulator's hot phases.
//!
//! A span is an RAII guard: [`span`] stamps `Instant::now()` on entry
//! (only when profiling is enabled), and `Drop` folds the elapsed
//! nanoseconds into a fixed, enum-indexed atomic table. Spans nest
//! freely — each level accumulates its own wall total, so a parent's
//! total *includes* its children (the report documents totals as
//! inclusive time).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Every instrumented phase. Adding a variant: extend [`SpanId::ALL`]
/// and [`SpanId::name`]; storage sizes itself from `ALL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanId {
    /// One full controller `step` call (both scheduler variants).
    CtrlStep,
    /// The constraint/scheduling scan: queue walk + chip-availability
    /// checks deciding what (if anything) issues this step.
    CtrlSchedule,
    /// Read resolution: SECDED verify plus the recovery pipeline.
    CtrlResolve,
    /// Device timing advance (reservation-interval pruning).
    DeviceAdvance,
    /// ECC/PCC encode: Hamming word encode and parity updates on writes.
    EccEncode,
    /// ECC decode: SECDED verify and erasure reconstruction on reads.
    EccDecode,
    /// Fault-plan application at the controller (chip faults, wear
    /// planting).
    FaultInject,
    /// Epoch-barrier wait in the scoped thread pool (time the driving
    /// thread spends joining workers).
    ParBarrier,
    /// Delivering due completions to cores (engine phase 1).
    SimDeliver,
    /// Core polling and request injection (engine phase 2).
    SimPoll,
    /// Stepping all channel controllers (engine phase 3, includes the
    /// parallel dispatch + barrier when a pool is active).
    SimStep,
}

impl SpanId {
    /// All spans, in report order.
    pub const ALL: [SpanId; 11] = [
        SpanId::CtrlStep,
        SpanId::CtrlSchedule,
        SpanId::CtrlResolve,
        SpanId::DeviceAdvance,
        SpanId::EccEncode,
        SpanId::EccDecode,
        SpanId::FaultInject,
        SpanId::ParBarrier,
        SpanId::SimDeliver,
        SpanId::SimPoll,
        SpanId::SimStep,
    ];

    /// Stable dotted name used in reports and trace events.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::CtrlStep => "ctrl.step",
            SpanId::CtrlSchedule => "ctrl.schedule",
            SpanId::CtrlResolve => "ctrl.resolve_read",
            SpanId::DeviceAdvance => "device.advance",
            SpanId::EccEncode => "ecc.encode",
            SpanId::EccDecode => "ecc.decode",
            SpanId::FaultInject => "faults.inject",
            SpanId::ParBarrier => "par.barrier",
            SpanId::SimDeliver => "sim.deliver",
            SpanId::SimPoll => "sim.poll_cores",
            SpanId::SimStep => "sim.step_channels",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

const N: usize = SpanId::ALL.len();
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static TOTAL_NS: [AtomicU64; N] = [ZERO; N];
static HITS: [AtomicU64; N] = [ZERO; N];

/// Opens a span over `id`. Drop it to record; keep it alive across the
/// region you want attributed. When profiling is disabled the guard is
/// inert (no clock read, nothing recorded on drop).
#[inline]
#[must_use = "a span records on Drop; binding it to _ would close it immediately"]
pub fn span(id: SpanId) -> SpanGuard {
    SpanGuard {
        id,
        begun: if crate::enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// RAII recorder returned by [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    id: SpanId,
    begun: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(begun) = self.begun.take() {
            let ns = u64::try_from(begun.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let i = self.id.idx();
            TOTAL_NS[i].fetch_add(ns, Ordering::Relaxed);
            HITS[i].fetch_add(1, Ordering::Relaxed);
            if crate::trace::trace_enabled() {
                crate::trace::record(self.id.name(), begun, ns);
            }
        }
    }
}

/// Snapshot of one span's accumulators: `(calls, total_ns)`.
#[must_use]
pub fn snapshot(id: SpanId) -> (u64, u64) {
    let i = id.idx();
    (
        HITS[i].load(Ordering::Relaxed),
        TOTAL_NS[i].load(Ordering::Relaxed),
    )
}

pub(crate) fn reset_spans() {
    for i in 0..N {
        TOTAL_NS[i].store(0, Ordering::Relaxed);
        HITS[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_lock();
        crate::disable();
        let before = snapshot(SpanId::EccEncode);
        {
            let _s = span(SpanId::EccEncode);
        }
        assert_eq!(snapshot(SpanId::EccEncode), before);
    }

    #[test]
    fn nested_spans_accumulate_inclusive_time_in_drop_order() {
        let _g = crate::test_lock();
        crate::enable();
        let (outer_calls0, outer_ns0) = snapshot(SpanId::SimStep);
        let (inner_calls0, inner_ns0) = snapshot(SpanId::CtrlStep);
        let inner_ns_alone;
        {
            let _outer = span(SpanId::SimStep);
            {
                let _inner = span(SpanId::CtrlStep);
                std::thread::sleep(std::time::Duration::from_millis(2));
                // _inner drops first (reverse declaration order), so the
                // inner total is already visible while outer is still
                // open.
            }
            let (c, ns) = snapshot(SpanId::CtrlStep);
            assert_eq!(c, inner_calls0 + 1, "inner recorded before outer");
            inner_ns_alone = ns - inner_ns0;
            assert!(
                inner_ns_alone >= 1_000_000,
                "slept ≥2ms, got {inner_ns_alone}ns"
            );
        }
        let (outer_calls1, outer_ns1) = snapshot(SpanId::SimStep);
        assert_eq!(outer_calls1, outer_calls0 + 1);
        // Inclusive timing: the outer span contains the inner sleep.
        assert!(outer_ns1 - outer_ns0 >= inner_ns_alone);
        crate::disable();
    }
}
