//! Simulated-cycle occupancy: busy chip-cycles per (channel, bank, chip).
//!
//! Fed from the single reservation-creation point
//! (`pcmap_device::RankTiming::reserve`) and its watchdog inverse
//! (`force_free`), so busy totals are exact by construction: reservation
//! intervals on one chip never overlap (debug-asserted in the device
//! crate), and every committed interval is either served in full or
//! explicitly truncated.
//!
//! The channel dimension rides on a thread-local set by the engine
//! before it steps (or enqueues into) a channel's controller — the
//! device layer itself has no notion of channels. One rank per channel
//! in every paper configuration, so "per channel" is "per rank".
//!
//! Idle time is derived at report time: each run contributes its final
//! simulated cycle count ([`note_run_cycles`]) to a shared denominator;
//! `idle = runs_total_cycles − busy` per component.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Channel slots tracked (paper default is 4).
pub const MAX_CHANNELS: usize = 8;
/// Bank slots tracked per channel (paper default is 8).
pub const MAX_BANKS: usize = 16;
/// Chip slots tracked per bank (paper rank is 10: 8 data + ECC + PCC).
pub const MAX_CHIPS: usize = 16;

const CELLS: usize = MAX_CHANNELS * MAX_BANKS * MAX_CHIPS;
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static BUSY: [AtomicU64; CELLS] = [ZERO; CELLS];
static RUN_CYCLES: AtomicU64 = AtomicU64::new(0);
static RUNS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CHANNEL: Cell<usize> = const { Cell::new(0) };
}

#[inline]
fn cell(channel: usize, bank: usize, chip: usize) -> Option<&'static AtomicU64> {
    if channel < MAX_CHANNELS && bank < MAX_BANKS && chip < MAX_CHIPS {
        Some(&BUSY[(channel * MAX_BANKS + bank) * MAX_CHIPS + chip])
    } else {
        None
    }
}

/// Sets the calling thread's current channel context. The engine calls
/// this before stepping (or enqueuing into) a channel's controller so
/// device-level reservations attribute to the right channel.
#[inline]
pub fn set_channel(channel: usize) {
    CHANNEL.with(|c| c.set(channel));
}

/// Records `cycles` of committed busy time for (current channel, `bank`,
/// `chip`). No-op while profiling is disabled or indices exceed the
/// tracked range.
#[inline]
pub fn note_busy(bank: usize, chip: usize, cycles: u64) {
    if !crate::enabled() {
        return;
    }
    let channel = CHANNEL.with(Cell::get);
    if let Some(c) = cell(channel, bank, chip) {
        c.fetch_add(cycles, Ordering::Relaxed);
    }
}

/// Takes back `cycles` of previously recorded busy time (watchdog
/// truncation / cancellation of a committed reservation).
#[inline]
pub fn note_unbusy(bank: usize, chip: usize, cycles: u64) {
    if !crate::enabled() {
        return;
    }
    let channel = CHANNEL.with(Cell::get);
    if let Some(c) = cell(channel, bank, chip) {
        // Saturating: an unbalanced subtract (reset mid-run) clamps at 0
        // instead of wrapping.
        let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(cycles))
        });
    }
}

/// Adds one finished run's simulated cycle count to the occupancy
/// denominator (a channel exists for the whole run, so its per-component
/// capacity is the run's full cycle count).
pub fn note_run_cycles(mem_cycles: u64) {
    if !crate::enabled() {
        return;
    }
    RUN_CYCLES.fetch_add(mem_cycles, Ordering::Relaxed);
    RUNS.fetch_add(1, Ordering::Relaxed);
}

/// `(runs recorded, summed simulated cycles across runs)`.
#[must_use]
pub fn run_totals() -> (u64, u64) {
    (
        RUNS.load(Ordering::Relaxed),
        RUN_CYCLES.load(Ordering::Relaxed),
    )
}

/// Busy chip-cycles recorded for one (channel, bank, chip) cell (0 for
/// out-of-range indices).
#[must_use]
pub fn busy_cycles(channel: usize, bank: usize, chip: usize) -> u64 {
    cell(channel, bank, chip).map_or(0, |c| c.load(Ordering::Relaxed))
}

pub(crate) fn reset_occupancy() {
    for c in &BUSY {
        c.store(0, Ordering::Relaxed);
    }
    RUN_CYCLES.store(0, Ordering::Relaxed);
    RUNS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_accounting_adds_subtracts_and_clamps() {
        let _g = crate::test_lock();
        crate::enable();
        set_channel(6); // a channel no other test uses
        let b0 = busy_cycles(6, 2, 3);
        note_busy(2, 3, 40);
        note_busy(2, 3, 10);
        assert_eq!(busy_cycles(6, 2, 3), b0 + 50);
        note_unbusy(2, 3, 15);
        assert_eq!(busy_cycles(6, 2, 3), b0 + 35);
        // Neighbouring cells untouched.
        note_busy(3, 3, 7);
        assert_eq!(busy_cycles(6, 2, 3), b0 + 35);
        // Out-of-range indices are dropped, not misattributed.
        note_busy(MAX_BANKS, 0, 99);
        note_busy(0, MAX_CHIPS, 99);
        crate::disable();
    }

    #[test]
    fn disabled_occupancy_is_inert() {
        let _g = crate::test_lock();
        crate::disable();
        set_channel(7);
        let b0 = busy_cycles(7, 0, 0);
        let (runs0, cyc0) = run_totals();
        note_busy(0, 0, 1000);
        note_run_cycles(5000);
        assert_eq!(busy_cycles(7, 0, 0), b0);
        assert_eq!(run_totals(), (runs0, cyc0));
    }
}
