//! Host-side performance observability for the PCMap simulator
//! (DESIGN.md §12).
//!
//! This crate is the **only** sim-adjacent crate allowed to read the
//! wall clock (pcmap-lint's `profiling` scope). Everything here is an
//! *observer*: global atomics written from the hot paths, read back at
//! report time. Nothing in this crate feeds data into the simulation, so
//! enabling or disabling profiling cannot change a single simulated
//! byte — `RunReport`, goldens and `pardiff` stay byte-identical either
//! way (enforced by `crates/sim/tests/par_equiv.rs` and the
//! `profiling_does_not_change_simulation` test).
//!
//! Three instruments:
//!
//! * **Spans** ([`span`]) — scoped host-monotonic timers around the hot
//!   phases (controller step, constraint scan, ECC codec, fault
//!   injection, epoch barriers). Near-zero cost when disabled: one
//!   relaxed atomic load and an untaken branch.
//! * **Counters** ([`bump`]/[`add`]) — hot-path event counts (constraint
//!   checks, queue scans, commands issued, pool jobs, epochs).
//! * **Occupancy** ([`note_busy`]) — a simulated-cycle busy histogram
//!   per (channel, bank, chip), fed from the single reservation point in
//!   `pcmap-device`. Busy vs idle per component is exactly the
//!   idle-skip opportunity the ROADMAP's discrete-event refactor needs.
//!
//! Enable programmatically ([`enable`]) or from the environment
//! ([`init_from_env`]): `PCMAP_PROF=1` turns profiling on,
//! `PCMAP_PROF_JSON=path` writes the JSON report at [`finish_from_env`],
//! and `PCMAP_TRACE=1` additionally records Chrome trace events
//! (written to `results/trace.json` or `$PCMAP_TRACE_OUT`).

#![warn(missing_docs)]

pub mod bench;
pub mod counter;
pub mod occupancy;
pub mod report;
pub mod rss;
pub mod span;
pub mod trace;

#[cfg(feature = "alloc-profile")]
pub mod alloc;

pub use counter::{add, bump, Counter};
pub use occupancy::{note_busy, note_run_cycles, note_unbusy, run_totals, set_channel};
pub use report::{report, reset, write_report};
pub use span::{span, SpanGuard, SpanId};
pub use trace::{disable_trace, enable_trace, record_request_span, trace_enabled};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serializes tests that toggle the process-global profiler state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// `true` when profiling is collecting. The hot-path fast exit: a single
/// relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling collection on (spans, counters, occupancy).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns profiling collection off. Accumulated data is kept until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Configures profiling from the environment (call once at the top of a
/// binary): `PCMAP_TRACE=1` enables profiling + Chrome trace recording;
/// `PCMAP_PROF=1` or a set `PCMAP_PROF_JSON` enables profiling alone.
pub fn init_from_env() {
    let truthy = |k: &str| {
        std::env::var(k)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    };
    if truthy("PCMAP_TRACE") {
        trace::enable_trace();
    }
    if truthy("PCMAP_PROF") || std::env::var("PCMAP_PROF_JSON").is_ok() {
        enable();
    }
}

/// Writes whatever the environment asked for (call once at the bottom of
/// a binary): the JSON profile to `$PCMAP_PROF_JSON`, the Chrome trace
/// to `$PCMAP_TRACE_OUT` (default `results/trace.json`). Errors are
/// reported on stderr, never fatal — profiling must not fail a run.
pub fn finish_from_env() {
    if let Ok(path) = std::env::var("PCMAP_PROF_JSON") {
        if let Err(e) = write_report(&path) {
            eprintln!("pcmap-prof: cannot write {path}: {e}");
        }
    }
    if trace::trace_enabled() {
        let path =
            std::env::var("PCMAP_TRACE_OUT").unwrap_or_else(|_| "results/trace.json".to_owned());
        match trace::write_chrome_trace(&path) {
            Ok(n) => eprintln!("pcmap-prof: wrote {n} trace events to {path}"),
            Err(e) => eprintln!("pcmap-prof: cannot write {path}: {e}"),
        }
    }
}
