//! Peak resident-set size, read from the OS (no allocator hook needed).

/// Peak RSS of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or if the field is missing.
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for l in status.lines() {
            if let Some(rest) = l.strip_prefix("VmHWM:") {
                return rest.trim().trim_end_matches("kB").trim().parse().ok();
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        assert!(super::peak_rss_kb().unwrap_or(0) > 0);
    }
}
