//! Feature-gated counting global allocator (`alloc-profile`).
//!
//! Wraps the system allocator with four atomics: allocation count,
//! deallocation count, cumulative bytes requested, and a running peak of
//! live bytes. Installing it here (rather than in each binary) means a
//! single cargo feature — `pcmap-prof/alloc-profile` — turns it on
//! program-wide; `cargo xtask perf --alloc` builds the bench binaries
//! with it so allocation totals land in the BENCH JSON.
//!
//! Counting is unconditional while the feature is compiled in (the
//! allocator cannot consult the enable flag without recursion hazards);
//! the cost is one `fetch_add` pair per allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES_TOTAL: AtomicU64 = AtomicU64::new(0);
static BYTES_LIVE: AtomicU64 = AtomicU64::new(0);
static BYTES_PEAK: AtomicU64 = AtomicU64::new(0);

/// The counting allocator (installed below as the global allocator).
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        let size = size as u64;
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_TOTAL.fetch_add(size, Ordering::Relaxed);
        let live = BYTES_LIVE.fetch_add(size, Ordering::Relaxed) + size;
        BYTES_PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_LIVE.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the added atomic counters never touch the
// returned memory and cannot allocate (so no reentrancy).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: `layout` is forwarded unmodified to `System.alloc`; the
    // caller's layout obligations transfer directly.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    // SAFETY: `ptr`/`layout` come from a matching `alloc` on this same
    // allocator (the `GlobalAlloc` contract) and are forwarded unmodified
    // to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    // SAFETY: `ptr`/`layout` obey the same matching-allocation contract
    // as `dealloc`, and `new_size` is forwarded unmodified; counter
    // updates happen only after `System.realloc` succeeds.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Snapshot of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations performed.
    pub allocs: u64,
    /// Deallocations performed.
    pub deallocs: u64,
    /// Cumulative bytes requested across all allocations.
    pub bytes_total: u64,
    /// Highest number of live heap bytes observed.
    pub bytes_peak: u64,
}

/// Current allocator counters.
#[must_use]
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        bytes_total: BYTES_TOTAL.load(Ordering::Relaxed),
        bytes_peak: BYTES_PEAK.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_counted() {
        let before = stats();
        let v: Vec<u64> = Vec::with_capacity(4096);
        let after = stats();
        drop(v);
        assert!(after.allocs > before.allocs);
        assert!(after.bytes_total >= before.bytes_total + 4096 * 8);
        assert!(after.bytes_peak > 0);
        let done = stats();
        assert!(done.deallocs > before.deallocs);
    }
}
