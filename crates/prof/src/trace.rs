//! Chrome trace-event export (`chrome://tracing` / Perfetto "X" events).
//!
//! When tracing is on, every closed span additionally appends a complete
//! ("X") event to an in-memory buffer: name, microsecond timestamp
//! relative to trace start, duration, and a small per-thread tid. The
//! buffer is capped ([`MAX_EVENTS`]); overflow increments the
//! `trace_events_dropped` counter instead of growing without bound.

use crate::counter::{self, Counter};
use pcmap_obs::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events (~40 MB worst case).
pub const MAX_EVENTS: usize = 1_000_000;

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static ASYNC_EVENTS: Mutex<Vec<AsyncEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

/// An async ("b"/"e") event describing one end of a simulated request's
/// lifetime on the *simulated* timebase (1 cycle = 1 µs of trace time).
/// Names are owned because they are formatted per request.
#[derive(Debug, Clone)]
struct AsyncEvent {
    name: String,
    phase: char,
    ts_us: u64,
    id: u64,
}

/// `true` when span closures are being recorded as trace events.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Turns on trace recording (implies [`crate::enable`]) and anchors the
/// trace clock.
pub fn enable_trace() {
    crate::enable();
    EPOCH.get_or_init(Instant::now);
    TRACE_ON.store(true, Ordering::Relaxed);
}

/// Stops recording trace events (profiling stays enabled).
pub fn disable_trace() {
    TRACE_ON.store(false, Ordering::Relaxed);
}

/// Appends one complete event (called from `SpanGuard::drop`).
pub(crate) fn record(name: &'static str, begun: Instant, dur_ns: u64) {
    let Some(&epoch) = EPOCH.get() else { return };
    let ts_us = u64::try_from(begun.duration_since(epoch).as_micros()).unwrap_or(u64::MAX);
    let ev = TraceEvent {
        name,
        ts_us,
        dur_us: dur_ns / 1_000,
        tid: TID.with(|t| *t),
    };
    let mut buf = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    if buf.len() < MAX_EVENTS {
        buf.push(ev);
    } else {
        drop(buf);
        counter::bump(Counter::TraceDropped);
    }
}

/// Appends an async begin/end pair describing one simulated request's
/// lifetime (used by `pcmap_explain` to overlay request timelines on the
/// span trace; simulated cycles map 1:1 to trace microseconds, so the
/// two timebases are distinguished by category, not unit). No-op when
/// trace recording is off; overflow past [`MAX_EVENTS`] bumps the
/// `trace_events_dropped` counter.
pub fn record_request_span(name: &str, id: u64, start_us: u64, end_us: u64) {
    if !trace_enabled() {
        return;
    }
    let mut buf = ASYNC_EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    if buf.len() + 2 <= MAX_EVENTS {
        buf.push(AsyncEvent {
            name: name.to_owned(),
            phase: 'b',
            ts_us: start_us,
            id,
        });
        buf.push(AsyncEvent {
            name: name.to_owned(),
            phase: 'e',
            ts_us: end_us,
            id,
        });
    } else {
        drop(buf);
        counter::bump(Counter::TraceDropped);
    }
}

/// Number of events currently buffered.
#[must_use]
pub fn buffered() -> usize {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Number of async request events currently buffered.
#[must_use]
pub fn async_buffered() -> usize {
    ASYNC_EVENTS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Renders the buffer in Chrome trace-event JSON format.
#[must_use]
pub fn to_chrome_json() -> Value {
    let buf = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    let events: Vec<Value> = buf
        .iter()
        .map(|e| {
            let mut o = Value::obj();
            o.set("name", Value::Str(e.name.to_owned()));
            o.set("cat", Value::Str("pcmap".to_owned()));
            o.set("ph", Value::Str("X".to_owned()));
            o.set("ts", Value::U64(e.ts_us));
            o.set("dur", Value::U64(e.dur_us));
            o.set("pid", Value::U64(1));
            o.set("tid", Value::U64(e.tid));
            o
        })
        .collect();
    let mut events = events;
    let async_buf = ASYNC_EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    events.extend(async_buf.iter().map(|e| {
        let mut o = Value::obj();
        o.set("name", Value::Str(e.name.clone()));
        o.set("cat", Value::Str("pcmap-req".to_owned()));
        o.set("ph", Value::Str(e.phase.to_string()));
        o.set("ts", Value::U64(e.ts_us));
        o.set("id", Value::Str(format!("{:#x}", e.id)));
        o.set("pid", Value::U64(2));
        o.set("tid", Value::U64(0));
        o
    }));
    let mut root = Value::obj();
    root.set("traceEvents", Value::Arr(events));
    root.set("displayTimeUnit", Value::Str("ms".to_owned()));
    root
}

/// Writes the buffered events as a Chrome trace file and returns how
/// many were written. Creates parent directories.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let n = buffered() + async_buffered();
    pcmap_obs::export::write_json(path, &to_chrome_json())?;
    Ok(n)
}

pub(crate) fn reset_trace() {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    ASYNC_EVENTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{span, SpanId};

    #[test]
    fn traced_spans_become_complete_events() {
        let _g = crate::test_lock();
        enable_trace();
        let before = buffered();
        {
            let _s = span(SpanId::ParBarrier);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(buffered(), before + 1);
        let json = to_chrome_json();
        let Some(Value::Arr(events)) = json.get("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        let ev = events.last().expect("at least one event");
        assert_eq!(ev.get("ph"), Some(&Value::Str("X".to_owned())));
        assert_eq!(ev.get("name"), Some(&Value::Str("par.barrier".to_owned())));
        assert!(ev.get("ts").and_then(Value::as_u64).is_some());
        assert!(ev.get("dur").and_then(Value::as_u64).unwrap_or(0) >= 900);
        // Round-trips through the JSON parser.
        let text = json.to_json_string();
        pcmap_obs::json::parse(&text).expect("valid JSON");
        disable_trace();
        crate::disable();
    }

    #[test]
    fn request_spans_become_async_event_pairs() {
        let _g = crate::test_lock();
        enable_trace();
        let before = async_buffered();
        record_request_span("req 42 read", 42, 100, 350);
        assert_eq!(async_buffered(), before + 2);
        let json = to_chrome_json();
        let Some(Value::Arr(events)) = json.get("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        let pair: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat") == Some(&Value::Str("pcmap-req".to_owned())))
            .collect();
        assert!(pair.len() >= 2);
        let b = pair[pair.len() - 2];
        let e = pair[pair.len() - 1];
        assert_eq!(b.get("ph"), Some(&Value::Str("b".to_owned())));
        assert_eq!(e.get("ph"), Some(&Value::Str("e".to_owned())));
        assert_eq!(b.get("ts"), Some(&Value::U64(100)));
        assert_eq!(e.get("ts"), Some(&Value::U64(350)));
        assert_eq!(b.get("id"), e.get("id"));
        pcmap_obs::json::parse(&json.to_json_string()).expect("valid JSON");
        disable_trace();
        crate::disable();
        // Off means no-op.
        let n = async_buffered();
        record_request_span("ignored", 1, 0, 1);
        assert_eq!(async_buffered(), n);
        // Leave the shared buffer clean for the other trace tests.
        reset_trace();
    }
}
