//! Chrome trace-event export (`chrome://tracing` / Perfetto "X" events).
//!
//! When tracing is on, every closed span additionally appends a complete
//! ("X") event to an in-memory buffer: name, microsecond timestamp
//! relative to trace start, duration, and a small per-thread tid. The
//! buffer is capped ([`MAX_EVENTS`]); overflow increments the
//! `trace_events_dropped` counter instead of growing without bound.

use crate::counter::{self, Counter};
use pcmap_obs::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events (~40 MB worst case).
pub const MAX_EVENTS: usize = 1_000_000;

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

/// `true` when span closures are being recorded as trace events.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Turns on trace recording (implies [`crate::enable`]) and anchors the
/// trace clock.
pub fn enable_trace() {
    crate::enable();
    EPOCH.get_or_init(Instant::now);
    TRACE_ON.store(true, Ordering::Relaxed);
}

/// Stops recording trace events (profiling stays enabled).
pub fn disable_trace() {
    TRACE_ON.store(false, Ordering::Relaxed);
}

/// Appends one complete event (called from `SpanGuard::drop`).
pub(crate) fn record(name: &'static str, begun: Instant, dur_ns: u64) {
    let Some(&epoch) = EPOCH.get() else { return };
    let ts_us = u64::try_from(begun.duration_since(epoch).as_micros()).unwrap_or(u64::MAX);
    let ev = TraceEvent {
        name,
        ts_us,
        dur_us: dur_ns / 1_000,
        tid: TID.with(|t| *t),
    };
    let mut buf = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    if buf.len() < MAX_EVENTS {
        buf.push(ev);
    } else {
        drop(buf);
        counter::bump(Counter::TraceDropped);
    }
}

/// Number of events currently buffered.
#[must_use]
pub fn buffered() -> usize {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Renders the buffer in Chrome trace-event JSON format.
#[must_use]
pub fn to_chrome_json() -> Value {
    let buf = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    let events: Vec<Value> = buf
        .iter()
        .map(|e| {
            let mut o = Value::obj();
            o.set("name", Value::Str(e.name.to_owned()));
            o.set("cat", Value::Str("pcmap".to_owned()));
            o.set("ph", Value::Str("X".to_owned()));
            o.set("ts", Value::U64(e.ts_us));
            o.set("dur", Value::U64(e.dur_us));
            o.set("pid", Value::U64(1));
            o.set("tid", Value::U64(e.tid));
            o
        })
        .collect();
    let mut root = Value::obj();
    root.set("traceEvents", Value::Arr(events));
    root.set("displayTimeUnit", Value::Str("ms".to_owned()));
    root
}

/// Writes the buffered events as a Chrome trace file and returns how
/// many were written. Creates parent directories.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let n = buffered();
    pcmap_obs::export::write_json(path, &to_chrome_json())?;
    Ok(n)
}

pub(crate) fn reset_trace() {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{span, SpanId};

    #[test]
    fn traced_spans_become_complete_events() {
        let _g = crate::test_lock();
        enable_trace();
        let before = buffered();
        {
            let _s = span(SpanId::ParBarrier);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(buffered(), before + 1);
        let json = to_chrome_json();
        let Some(Value::Arr(events)) = json.get("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        let ev = events.last().expect("at least one event");
        assert_eq!(ev.get("ph"), Some(&Value::Str("X".to_owned())));
        assert_eq!(ev.get("name"), Some(&Value::Str("par.barrier".to_owned())));
        assert!(ev.get("ts").and_then(Value::as_u64).is_some());
        assert!(ev.get("dur").and_then(Value::as_u64).unwrap_or(0) >= 900);
        // Round-trips through the JSON parser.
        let text = json.to_json_string();
        pcmap_obs::json::parse(&text).expect("valid JSON");
        disable_trace();
        crate::disable();
    }
}
