//! The profiling report: everything collected, as one JSON document.
//!
//! Schema (`pcmap-prof-report`, version 1):
//!
//! ```json
//! {
//!   "schema": "pcmap-prof-report", "schema_version": 1,
//!   "enabled": true,
//!   "spans":    [{"name": "ctrl.step", "calls": 1, "total_ns": 1}],
//!   "counters": [{"name": "constraint_checks", "value": 1}],
//!   "sim": {"runs": 1, "sim_cycles": 1},
//!   "occupancy": {
//!     "run_cycles": 1,
//!     "per_chip": [{"channel": 0, "chip": 0, "busy_cycles": 1}],
//!     "per_bank": [{"channel": 0, "bank": 0, "busy_chip_cycles": 1, "chips": 10}]
//!   },
//!   "peak_rss_kb": 1, "alloc": null
//! }
//! ```
//!
//! Span totals are *inclusive* (a parent span contains its children).
//! Occupancy idle time is derived by the consumer:
//! `idle = run_cycles − busy_cycles` per chip, and per bank
//! `idle_chip_cycles = run_cycles × chips − busy_chip_cycles`.

use crate::counter::{self, Counter};
use crate::occupancy::{self, MAX_BANKS, MAX_CHANNELS, MAX_CHIPS};
use crate::span::{self, SpanId};
use pcmap_obs::Value;

/// Schema version of the profiling report.
pub const SCHEMA_VERSION: u64 = 1;

/// Builds the full profiling report.
#[must_use]
pub fn report() -> Value {
    let mut v = Value::obj();
    v.set("schema", Value::Str("pcmap-prof-report".to_owned()));
    v.set("schema_version", Value::U64(SCHEMA_VERSION));
    v.set("enabled", Value::Bool(crate::enabled()));

    let spans: Vec<Value> = SpanId::ALL
        .iter()
        .map(|&id| {
            let (calls, total_ns) = span::snapshot(id);
            let mut o = Value::obj();
            o.set("name", Value::Str(id.name().to_owned()));
            o.set("calls", Value::U64(calls));
            o.set("total_ns", Value::U64(total_ns));
            o
        })
        .collect();
    v.set("spans", Value::Arr(spans));

    let counters: Vec<Value> = Counter::ALL
        .iter()
        .map(|&c| {
            let mut o = Value::obj();
            o.set("name", Value::Str(c.name().to_owned()));
            o.set("value", Value::U64(counter::get(c)));
            o
        })
        .collect();
    v.set("counters", Value::Arr(counters));

    let (runs, cycles) = occupancy::run_totals();
    let mut sim = Value::obj();
    sim.set("runs", Value::U64(runs));
    sim.set("sim_cycles", Value::U64(cycles));
    v.set("sim", sim);

    v.set("occupancy", occupancy_json(cycles));
    v.set(
        "peak_rss_kb",
        crate::rss::peak_rss_kb().map_or(Value::Null, Value::U64),
    );
    v.set("alloc", alloc_json());
    v
}

/// Occupancy rollups. Only non-zero cells are emitted, so the document
/// stays small for tiny test configurations.
fn occupancy_json(run_cycles: u64) -> Value {
    let mut per_chip = Vec::new();
    let mut per_bank = Vec::new();
    for channel in 0..MAX_CHANNELS {
        for chip in 0..MAX_CHIPS {
            let busy: u64 = (0..MAX_BANKS)
                .map(|b| occupancy::busy_cycles(channel, b, chip))
                .sum();
            if busy > 0 {
                let mut o = Value::obj();
                o.set("channel", Value::U64(channel as u64));
                o.set("chip", Value::U64(chip as u64));
                o.set("busy_cycles", Value::U64(busy));
                per_chip.push(o);
            }
        }
        for bank in 0..MAX_BANKS {
            let busy: u64 = (0..MAX_CHIPS)
                .map(|c| occupancy::busy_cycles(channel, bank, c))
                .sum();
            let chips = (0..MAX_CHIPS)
                .filter(|&c| occupancy::busy_cycles(channel, bank, c) > 0)
                .count();
            if busy > 0 {
                let mut o = Value::obj();
                o.set("channel", Value::U64(channel as u64));
                o.set("bank", Value::U64(bank as u64));
                o.set("busy_chip_cycles", Value::U64(busy));
                o.set("chips", Value::U64(chips as u64));
                per_bank.push(o);
            }
        }
    }
    let mut occ = Value::obj();
    occ.set("run_cycles", Value::U64(run_cycles));
    occ.set("per_chip", Value::Arr(per_chip));
    occ.set("per_bank", Value::Arr(per_bank));
    occ
}

#[cfg(feature = "alloc-profile")]
fn alloc_json() -> Value {
    let s = crate::alloc::stats();
    let mut o = Value::obj();
    o.set("allocs", Value::U64(s.allocs));
    o.set("deallocs", Value::U64(s.deallocs));
    o.set("bytes_total", Value::U64(s.bytes_total));
    o.set("bytes_peak", Value::U64(s.bytes_peak));
    o
}

#[cfg(not(feature = "alloc-profile"))]
fn alloc_json() -> Value {
    Value::Null
}

/// Writes the report as pretty JSON, creating parent directories.
pub fn write_report(path: &str) -> std::io::Result<()> {
    pcmap_obs::export::write_json(path, &report())
}

/// Zeroes every accumulator: spans, counters, occupancy, trace buffer.
/// The enabled flags are left as they are.
pub fn reset() {
    span::reset_spans();
    counter::reset_counters();
    occupancy::reset_occupancy();
    crate::trace::reset_trace();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::span;

    #[test]
    fn report_round_trips_and_carries_occupancy() {
        let _g = crate::test_lock();
        crate::enable();
        crate::set_channel(5);
        crate::note_busy(1, 2, 123);
        crate::note_run_cycles(1000);
        {
            let _s = span(SpanId::DeviceAdvance);
        }
        crate::bump(Counter::Reservations);
        let text = report().to_json_pretty();
        crate::disable();

        let parsed = pcmap_obs::json::parse(&text).expect("report parses");
        assert_eq!(
            parsed.get("schema"),
            Some(&Value::Str("pcmap-prof-report".to_owned()))
        );
        assert_eq!(
            parsed.get("schema_version").and_then(Value::as_u64),
            Some(SCHEMA_VERSION)
        );
        let Some(Value::Arr(chips)) = parsed.get("occupancy").and_then(|o| o.get("per_chip"))
        else {
            panic!("occupancy.per_chip must be an array");
        };
        assert!(chips.iter().any(|e| {
            e.get("channel").and_then(Value::as_u64) == Some(5)
                && e.get("chip").and_then(Value::as_u64) == Some(2)
                && e.get("busy_cycles").and_then(Value::as_u64).unwrap_or(0) >= 123
        }));
        let Some(Value::Arr(spans)) = parsed.get("spans") else {
            panic!("spans must be an array");
        };
        assert_eq!(spans.len(), SpanId::ALL.len());
    }
}
