//! Hot-path event counters (global, enum-indexed atomics).

use std::sync::atomic::{AtomicU64, Ordering};

/// Every hot-path counter the profiler tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Chip-availability checks evaluated by the schedulers (one per
    /// candidate considered in a pick/try-issue scan).
    ConstraintChecks,
    /// Scheduler queue scans started (pick/try-issue invocations).
    QueueScans,
    /// Memory commands issued (coarse/fine reads and writes).
    CommandsIssued,
    /// Chip-reservation windows created in `pcmap-device`.
    Reservations,
    /// Fault-plan hook evaluations (per-event Bernoulli draws).
    FaultDraws,
    /// Closures dispatched through the scoped thread pool.
    PoolJobs,
    /// Engine epochs executed (event-loop iterations).
    Epochs,
    /// Epochs whose controller steps were dispatched to the pool.
    EpochsParallel,
    /// Chrome trace events dropped after the in-memory cap was hit.
    TraceDropped,
}

impl Counter {
    /// All counters, in report order.
    pub const ALL: [Counter; 9] = [
        Counter::ConstraintChecks,
        Counter::QueueScans,
        Counter::CommandsIssued,
        Counter::Reservations,
        Counter::FaultDraws,
        Counter::PoolJobs,
        Counter::Epochs,
        Counter::EpochsParallel,
        Counter::TraceDropped,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ConstraintChecks => "constraint_checks",
            Counter::QueueScans => "queue_scans",
            Counter::CommandsIssued => "commands_issued",
            Counter::Reservations => "reservations",
            Counter::FaultDraws => "fault_draws",
            Counter::PoolJobs => "pool_jobs",
            Counter::Epochs => "epochs",
            Counter::EpochsParallel => "epochs_parallel",
            Counter::TraceDropped => "trace_events_dropped",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

const N: usize = Counter::ALL.len();
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTS: [AtomicU64; N] = [ZERO; N];

/// Adds `n` to `c` (no-op while profiling is disabled).
#[inline]
pub fn add(c: Counter, n: u64) {
    if crate::enabled() {
        COUNTS[c.idx()].fetch_add(n, Ordering::Relaxed);
    }
}

/// Increments `c` by one (no-op while profiling is disabled).
#[inline]
pub fn bump(c: Counter) {
    add(c, 1);
}

/// Current value of `c`.
#[must_use]
pub fn get(c: Counter) -> u64 {
    COUNTS[c.idx()].load(Ordering::Relaxed)
}

pub(crate) fn reset_counters() {
    for c in &COUNTS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_respects_enable_gate() {
        let _g = crate::test_lock();
        crate::disable();
        let before = get(Counter::QueueScans);
        bump(Counter::QueueScans);
        assert_eq!(get(Counter::QueueScans), before);
        crate::enable();
        bump(Counter::QueueScans);
        add(Counter::QueueScans, 4);
        assert_eq!(get(Counter::QueueScans), before + 5);
        crate::disable();
    }
}
