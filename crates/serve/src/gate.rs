//! A token-bucket [`IngressGate`] for the real simulator (DESIGN.md §16).
//!
//! The standalone fleet ([`crate::fleet`]) models admission at scale;
//! [`TokenGate`] attaches the *same admission policy* to
//! `pcmap_sim::System` via
//! [`set_ingress_gate`](pcmap_sim::System::set_ingress_gate), so the two
//! tiers can be cross-checked at small scale. Each core gets a token
//! bucket; an empty bucket defers the core with exponential backoff
//! (charged exactly like a full controller queue), and completions echo
//! back to refill the ledger and score latency against the SLO.
//!
//! The gate is deterministic — pure integer state driven only by the
//! simulator's own cycle arguments — so attaching it preserves the
//! byte-identical report contract (DESIGN.md §9).

use std::collections::VecDeque;

use pcmap_sim::{GateDecision, IngressGate};
use pcmap_types::{Cycle, ServeSummary, SloSpec};

use crate::bucket::TokenBucket;

/// Per-core admission state.
struct CoreState {
    bucket: TokenBucket,
    /// Consecutive deferrals of the currently staged request.
    defers: u32,
    /// Issue cycles of requests admitted but not yet completed (FIFO —
    /// per-core completion order matches issue order closely enough for
    /// SLO scoring, and exactly for single-outstanding cores).
    inflight: VecDeque<u64>,
}

/// Token-bucket admission control over every core of a `System`.
pub struct TokenGate {
    cores: Vec<CoreState>,
    slo: SloSpec,
    /// Base of the exponential deferral backoff, in memory cycles.
    backoff: u64,
    summary: ServeSummary,
    /// Requests currently admitted-but-incomplete, across cores.
    inflight_total: u64,
}

impl TokenGate {
    /// A gate with one token bucket per core.
    ///
    /// # Panics
    ///
    /// Panics if `cores`, `capacity`, `refill_period`, or `backoff` is
    /// zero.
    #[must_use]
    pub fn new(
        cores: usize,
        capacity: u64,
        refill_period: u64,
        backoff: u64,
        slo: SloSpec,
    ) -> Self {
        assert!(cores > 0, "gate needs at least one core");
        assert!(backoff > 0, "deferral backoff must be positive");
        Self {
            cores: (0..cores)
                .map(|_| CoreState {
                    bucket: TokenBucket::new(capacity, refill_period),
                    defers: 0,
                    inflight: VecDeque::new(),
                })
                .collect(),
            slo,
            backoff,
            summary: ServeSummary::default(),
            inflight_total: 0,
        }
    }
}

impl IngressGate for TokenGate {
    fn admit(&mut self, core: usize, _is_read: bool, now: Cycle) -> GateDecision {
        let state = &mut self.cores[core];
        if state.defers == 0 {
            // First sight of this staged request.
            self.summary.generated += 1;
        }
        if state.bucket.try_take(now.0) {
            state.defers = 0;
            state.inflight.push_back(now.0);
            self.summary.admitted += 1;
            self.inflight_total += 1;
            if self.inflight_total > self.summary.peak_ingress {
                self.summary.peak_ingress = self.inflight_total;
            }
            GateDecision::Admit
        } else {
            let wait = self.backoff << state.defers.min(16);
            state.defers += 1;
            self.summary.deferrals += 1;
            GateDecision::Defer(Cycle(now.0 + wait.max(1)))
        }
    }

    fn note_complete(&mut self, core: usize, _is_read: bool, now: Cycle) {
        let state = &mut self.cores[core];
        let Some(issued) = state.inflight.pop_front() else {
            // A completion the gate never admitted (e.g. the gate was
            // attached mid-run); ignore rather than corrupt the ledger.
            return;
        };
        self.inflight_total -= 1;
        self.summary.retired += 1;
        if now.0.saturating_sub(issued) <= self.slo.target {
            self.summary.slo_ok += 1;
        }
    }

    fn note_rejected(&mut self, core: usize, _is_read: bool, now: Cycle) {
        let _ = now;
        let state = &mut self.cores[core];
        if state.inflight.pop_back().is_none() {
            return;
        }
        // Unwind the admission entirely: the controller queue bounced
        // the request, and the core will re-stage it as a fresh attempt.
        state.bucket.refund();
        self.inflight_total -= 1;
        self.summary.admitted -= 1;
        self.summary.generated -= 1;
    }

    fn summary(&self) -> ServeSummary {
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> TokenGate {
        TokenGate::new(
            2,
            2,
            100,
            8,
            SloSpec {
                target: 50,
                goal_bp: 9_500,
            },
        )
    }

    #[test]
    fn admits_until_bucket_empties_then_defers_with_backoff() {
        let mut g = gate();
        assert_eq!(g.admit(0, true, Cycle(0)), GateDecision::Admit);
        assert_eq!(g.admit(0, true, Cycle(1)), GateDecision::Admit);
        // Bucket empty: deferral horizon doubles per consecutive defer.
        assert_eq!(g.admit(0, true, Cycle(2)), GateDecision::Defer(Cycle(10)));
        assert_eq!(g.admit(0, true, Cycle(10)), GateDecision::Defer(Cycle(26)));
        // One refill period later the same request is admitted.
        assert_eq!(g.admit(0, true, Cycle(100)), GateDecision::Admit);
        let s = g.summary();
        assert_eq!(s.generated, 3, "a deferred request is generated once");
        assert_eq!(s.admitted, 3);
        assert_eq!(s.deferrals, 2);
    }

    #[test]
    fn completion_scores_slo_and_conserves() {
        let mut g = gate();
        assert_eq!(g.admit(0, true, Cycle(0)), GateDecision::Admit);
        assert_eq!(g.admit(1, false, Cycle(0)), GateDecision::Admit);
        g.note_complete(0, true, Cycle(40)); // within target
        g.note_complete(1, false, Cycle(90)); // missed target
        let s = g.summary();
        assert_eq!(s.retired, 2);
        assert_eq!(s.slo_ok, 1);
        assert_eq!(s.peak_ingress, 2);
        assert!(s.conserved());
    }

    #[test]
    fn rejection_unwinds_the_admission() {
        let mut g = gate();
        assert_eq!(g.admit(0, true, Cycle(0)), GateDecision::Admit);
        assert_eq!(g.admit(0, true, Cycle(1)), GateDecision::Admit);
        g.note_rejected(0, true, Cycle(1));
        let s = g.summary();
        assert_eq!(s.generated, 1);
        assert_eq!(s.admitted, 1);
        // The refunded token readmits immediately despite the drained
        // bucket.
        assert_eq!(g.admit(0, true, Cycle(2)), GateDecision::Admit);
        g.note_complete(0, true, Cycle(30));
        g.note_complete(0, true, Cycle(31));
        assert!(g.summary().conserved());
    }
}
