//! Fleet orchestration: shards fan out over a worker pool and merge in
//! shard order (DESIGN.md §16).
//!
//! Each shard is a self-contained [`ShardSim`]; the fleet farms them to
//! [`Pool::ordered_map`] and folds the outcomes left-to-right in shard
//! order, so the merged report is byte-identical at any `--jobs` count
//! (DESIGN.md §9). [`ServeReport::check`] enforces the overload-safety
//! contract before anything is exported: conservation (every generated
//! request reached exactly one terminal outcome), the bounded-ingress
//! cap, and a non-empty run.

use pcmap_obs::{MetricsSnapshot, TenantTable, Value};
use pcmap_par::Pool;
use pcmap_types::{ServeConfig, ServeSummary};

use crate::shard::{ServiceLevel, ShardOutcome, ShardSim};

/// Worst SLO attainers exported in the tenant block.
const REPORT_TOP_K: usize = 8;

/// The merged outcome of a full fleet run.
pub struct ServeReport {
    /// The configuration that produced this report.
    pub cfg: ServeConfig,
    /// Fleet-wide outcome ledger.
    pub summary: ServeSummary,
    /// Fleet-wide counters, gauges, and latency histograms.
    pub snapshot: MetricsSnapshot,
    /// Per-tenant outcome rows (fleet width).
    pub tenants: TenantTable,
    /// Cycles each shard spent at each ladder rung, summed
    /// ([`ServiceLevel::ALL`] order).
    pub level_cycles: [u64; 4],
    /// Latest end cycle across shards (fleet makespan).
    pub end_cycle: u64,
    /// Per-shard ledgers, in shard order.
    pub shards: Vec<ServeSummary>,
}

/// Runs every shard of `cfg` on `pool` and merges the outcomes.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_fleet(cfg: &ServeConfig, pool: &mut Pool) -> ServeReport {
    cfg.validate().expect("valid serve config");
    let shard_ids: Vec<u32> = (0..cfg.shards()).collect();
    let outcomes: Vec<ShardOutcome> = pool.ordered_map(shard_ids, |shard| {
        ShardSim::new(cfg.clone(), shard).run_to_completion()
    });

    let mut summary = ServeSummary::default();
    let mut snapshot = MetricsSnapshot::new();
    let mut tenants = TenantTable::new(cfg.tenants as usize);
    let mut level_cycles = [0u64; 4];
    let mut end_cycle = 0u64;
    let mut shards = Vec::with_capacity(outcomes.len());
    for out in &outcomes {
        summary.merge(&out.summary);
        snapshot.merge(&out.snapshot);
        tenants.merge(&out.tenants);
        for (total, cycles) in level_cycles.iter_mut().zip(out.level_cycles) {
            *total += cycles;
        }
        end_cycle = end_cycle.max(out.end_cycle);
        shards.push(out.summary);
    }
    ServeReport {
        cfg: cfg.clone(),
        summary,
        snapshot,
        tenants,
        level_cycles,
        end_cycle,
        shards,
    }
}

impl ServeReport {
    /// Verifies the overload-safety contract; returns every violation
    /// found (empty means the run is sound).
    #[must_use]
    pub fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.summary.generated != self.cfg.requests {
            problems.push(format!(
                "generated {} requests, configured {}",
                self.summary.generated, self.cfg.requests
            ));
        }
        if !self.summary.conserved() {
            problems.push(format!(
                "fleet ledger leaks requests: generated {} != retired {} + shed {} + failed {}",
                self.summary.generated,
                self.summary.retired,
                self.summary.shed_total(),
                self.summary.failed
            ));
        }
        if self.summary.peak_ingress > u64::from(self.cfg.ingress_cap) {
            problems.push(format!(
                "peak ingress {} exceeds the cap {}",
                self.summary.peak_ingress, self.cfg.ingress_cap
            ));
        }
        for (shard, s) in self.shards.iter().enumerate() {
            if !s.conserved() {
                problems.push(format!("shard {shard} ledger leaks requests: {s:?}"));
            }
            if s.peak_ingress > u64::from(self.cfg.ingress_cap) {
                problems.push(format!(
                    "shard {shard} peak ingress {} exceeds the cap {}",
                    s.peak_ingress, self.cfg.ingress_cap
                ));
            }
        }
        problems
    }

    /// Stable JSON export. Deliberately excludes anything that varies
    /// with `--jobs` (worker counts, wall time), so two runs of the same
    /// config serialize byte-identically regardless of parallelism.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut scale = Value::obj();
        scale.set("tenants", Value::U64(u64::from(self.cfg.tenants)));
        scale.set("shards", Value::U64(u64::from(self.cfg.shards())));
        scale.set("ranks", Value::U64(u64::from(self.cfg.total_ranks())));
        scale.set("requests", Value::U64(self.cfg.requests));
        scale.set("seed", Value::U64(self.cfg.seed));
        scale.set("fault_storm", Value::Bool(self.cfg.faults.enabled()));

        let mut latency = Value::obj();
        if let Some(h) = self.snapshot.histogram("serve_latency") {
            latency.set("count", Value::U64(h.count()));
            latency.set("p50", Value::U64(h.percentile(50.0)));
            latency.set("p99", Value::U64(h.percentile(99.0)));
        }

        let mut levels = Value::obj();
        for (level, cycles) in ServiceLevel::ALL.iter().zip(self.level_cycles) {
            levels.set(level.as_str(), Value::U64(cycles));
        }

        let mut v = Value::obj();
        v.set("scale", scale);
        v.set("summary", summary_json(&self.summary));
        v.set("latency", latency);
        v.set("level_cycles", levels);
        v.set("end_cycle", Value::U64(self.end_cycle));
        v.set(
            "tenants",
            self.tenants
                .to_json(u64::from(self.cfg.slo.goal_bp), REPORT_TOP_K),
        );
        v.set(
            "shards",
            Value::Arr(self.shards.iter().map(summary_json).collect()),
        );
        v.set("metrics", self.snapshot.to_json());
        let problems = self.check();
        v.set("sound", Value::Bool(problems.is_empty()));
        v.set(
            "problems",
            Value::Arr(problems.into_iter().map(Value::Str).collect()),
        );
        v
    }
}

/// Renders one outcome ledger.
fn summary_json(s: &ServeSummary) -> Value {
    let mut v = Value::obj();
    v.set("generated", Value::U64(s.generated));
    v.set("admitted", Value::U64(s.admitted));
    v.set("retired", Value::U64(s.retired));
    v.set("shed_throttled", Value::U64(s.shed_throttled));
    v.set("shed_overflow", Value::U64(s.shed_overflow));
    v.set("shed_degraded", Value::U64(s.shed_degraded));
    v.set("shed_deadline", Value::U64(s.shed_deadline));
    v.set("failed", Value::U64(s.failed));
    v.set("retries", Value::U64(s.retries));
    v.set("deferrals", Value::U64(s.deferrals));
    v.set("slo_ok", Value::U64(s.slo_ok));
    v.set(
        "slo_attainment_bp",
        Value::U64(u64::from(s.slo_attainment_bp())),
    );
    v.set("peak_ingress", Value::U64(s.peak_ingress));
    v.set("conserved", Value::Bool(s.conserved()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::FaultConfig;

    fn small_cfg() -> ServeConfig {
        ServeConfig::paper_default()
            .with_tenants(32)
            .with_requests(6_000)
            .with_fleet(2, 2, 2)
            .with_faults(FaultConfig::storm(0.05, 3))
    }

    #[test]
    fn fleet_json_is_byte_identical_across_jobs() {
        let cfg = small_cfg();
        let serial = run_fleet(&cfg, &mut Pool::new(1))
            .to_json()
            .to_json_string();
        let parallel = run_fleet(&cfg, &mut Pool::new(4))
            .to_json()
            .to_json_string();
        assert_eq!(serial, parallel, "serve report must not depend on --jobs");
    }

    #[test]
    fn fleet_checks_clean_and_covers_all_tenants() {
        let cfg = small_cfg();
        let report = run_fleet(&cfg, &mut Pool::new(2));
        assert!(report.check().is_empty(), "{:?}", report.check());
        assert_eq!(report.summary.generated, cfg.requests);
        assert_eq!(report.tenants.len(), cfg.tenants as usize);
        assert_eq!(report.tenants.aggregate().generated, cfg.requests);
        assert_eq!(report.shards.len(), cfg.shards() as usize);
    }

    #[test]
    fn json_reports_soundness_and_latency() {
        let report = run_fleet(&small_cfg(), &mut Pool::new(1));
        let v = report.to_json();
        assert_eq!(v.get("sound"), Some(&Value::Bool(true)));
        let latency = v.get("latency").expect("latency block");
        assert!(latency.get("p99").and_then(Value::as_u64).is_some());
        let summary = v.get("summary").expect("summary block");
        assert_eq!(summary.get("conserved"), Some(&Value::Bool(true)));
    }

    #[test]
    fn check_flags_a_cooked_ledger() {
        let cfg = small_cfg();
        let mut report = run_fleet(&cfg, &mut Pool::new(1));
        report.summary.retired -= 1;
        let problems = report.check();
        assert!(
            problems.iter().any(|p| p.contains("leaks requests")),
            "{problems:?}"
        );
    }
}
