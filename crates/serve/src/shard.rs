//! One fleet shard: an independent, deterministic sub-simulation of
//! admission, queueing, service, and degradation (DESIGN.md §16).
//!
//! A shard owns a static subset of tenants (`tenant_id % shards ==
//! shard_id`), a bounded ingress queue, `ranks_per_shard` service
//! lanes, and its own [`FaultPlan`]. Nothing crosses shard boundaries,
//! so the fleet can farm shards to pool workers and merge results in
//! shard order with byte-identical output at any `--jobs` (DESIGN.md
//! §9).
//!
//! The clock only ever jumps to computed horizons (the next generation,
//! re-admission, or lane-free cycle); every request reaches exactly one
//! terminal outcome, which [`ServeSummary::conserved`] checks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use pcmap_faults::{ChipFault, FaultPlan, ReadFault};
use pcmap_obs::{GaugeRule, HistogramId, MetricRegistry, MetricsSnapshot, TenantTable};
use pcmap_types::serve::BP_SCALE;
use pcmap_types::{Cycle, ServeConfig, ServeSummary, TenantClass, Xoshiro256};

use crate::bucket::TokenBucket;

/// Extra service cycles charged when inline SECDED corrects a
/// single-bit fault.
const ECC_CORRECT_EXTRA: u64 = 4;

/// Rung of the graceful-degradation ladder, in order of shrinking
/// service (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceLevel {
    /// Healthy: every class admitted, FIFO dispatch.
    Full,
    /// Backlogged or degraded: reads dispatch before writes.
    ReadPriority,
    /// Degraded *and* backlogged: only `Critical` tenants admitted.
    CriticalOnly,
    /// Storm raging with the window re-filled: admission fully shed.
    Shed,
}

impl ServiceLevel {
    /// All rungs, healthiest first.
    pub const ALL: [ServiceLevel; 4] = [
        ServiceLevel::Full,
        ServiceLevel::ReadPriority,
        ServiceLevel::CriticalOnly,
        ServiceLevel::Shed,
    ];

    /// Stable lowercase name for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceLevel::Full => "full",
            ServiceLevel::ReadPriority => "read_priority",
            ServiceLevel::CriticalOnly => "critical_only",
            ServiceLevel::Shed => "shed",
        }
    }

    /// Index into per-level arrays ([`Self::ALL`] order).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ServiceLevel::Full => 0,
            ServiceLevel::ReadPriority => 1,
            ServiceLevel::CriticalOnly => 2,
            ServiceLevel::Shed => 3,
        }
    }
}

/// A tenant resident on this shard.
struct Tenant {
    /// Global tenant id (row index in the fleet-wide table).
    id: u32,
    class: TenantClass,
    bucket: TokenBucket,
    rng: Xoshiro256,
    /// Requests this tenant still has to generate.
    remaining: u64,
    /// Mean inter-arrival gap in cycles.
    period: u64,
}

/// One in-flight request (from generation to terminal outcome).
#[derive(Debug, Clone)]
struct Request {
    /// Index into this shard's `tenants`.
    slot: u32,
    class: TenantClass,
    is_read: bool,
    /// First-generation cycle; SLO latency is measured from here.
    born: u64,
    /// Current completion deadline (refreshed on re-admission).
    due: u64,
    /// Re-admissions taken (timeout or failed service).
    attempts: u32,
    /// Backpressure deferrals taken before first admission.
    defers: u32,
    /// Whether the first admission was already counted.
    counted_admit: bool,
}

enum EvKind {
    /// Tenant `slot` generates its next request.
    Generate { slot: u32 },
    /// A deferred or retried request re-enters admission.
    Readmit { req: Request },
}

struct Ev {
    at: u64,
    /// Unique, monotone tiebreaker: equal-cycle events process in
    /// creation order, deterministically.
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// What one shard hands back to the fleet merge.
pub struct ShardOutcome {
    /// This shard's conserved outcome ledger.
    pub summary: ServeSummary,
    /// This shard's counters/gauges/histograms.
    pub snapshot: MetricsSnapshot,
    /// Fleet-width tenant table (zero rows for non-resident tenants).
    pub tenants: TenantTable,
    /// Cycles spent at each ladder rung ([`ServiceLevel::ALL`] order).
    pub level_cycles: [u64; 4],
    /// Final simulated cycle of this shard.
    pub end_cycle: u64,
}

/// The per-shard simulation.
pub struct ShardSim {
    cfg: ServeConfig,
    shard: u32,
    tenants: Vec<Tenant>,
    events: BinaryHeap<Reverse<Ev>>,
    queue: VecDeque<Request>,
    /// Busy-until horizon per service lane.
    lanes: Vec<u64>,
    plan: Option<FaultPlan>,
    clock: u64,
    next_seq: u64,
    backpressured: bool,
    level: ServiceLevel,
    level_cycles: [u64; 4],
    summary: ServeSummary,
    table: TenantTable,
    registry: MetricRegistry,
    h_latency: HistogramId,
    h_class: [HistogramId; 3],
}

impl ShardSim {
    /// Builds shard `shard` of the fleet described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: ServeConfig, shard: u32) -> Self {
        cfg.validate().expect("valid serve config");
        assert!(shard < cfg.shards());
        let shards = u64::from(cfg.shards());
        let total_tenants = u64::from(cfg.tenants);
        let base_quota = cfg.requests / total_tenants;
        let extra = cfg.requests % total_tenants;

        let mut tenants = Vec::new();
        let mut events = BinaryHeap::new();
        let mut next_seq = 0u64;
        for id in 0..cfg.tenants {
            if u64::from(id) % shards != u64::from(shard) {
                continue;
            }
            // Class by percentile position, so the configured mix holds
            // exactly at fleet scale.
            let pos_bp = u64::from(id) * u64::from(BP_SCALE) / total_tenants;
            let class = if pos_bp < u64::from(cfg.class_mix_bp[0]) {
                TenantClass::Critical
            } else if pos_bp < u64::from(cfg.class_mix_bp[0] + cfg.class_mix_bp[1]) {
                TenantClass::Standard
            } else {
                TenantClass::Background
            };
            let spec = cfg.tenant_template[class.index()];
            let quota = base_quota + u64::from(u64::from(id) < extra);
            let mut tenant = Tenant {
                id,
                class,
                bucket: TokenBucket::new(
                    u64::from(spec.bucket_capacity),
                    spec.bucket_refill_period,
                ),
                rng: Xoshiro256::new(
                    cfg.seed ^ 0x7e4a_0a57 ^ u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                remaining: quota,
                period: spec.arrival_period,
            };
            if tenant.remaining > 0 {
                let first = Self::draw_gap(&mut tenant);
                let slot = tenants.len() as u32;
                events.push(Reverse(Ev {
                    at: first,
                    seq: next_seq,
                    kind: EvKind::Generate { slot },
                }));
                next_seq += 1;
            }
            tenants.push(tenant);
        }

        let mut registry = MetricRegistry::new();
        let h_latency = registry.histogram("serve_latency");
        let h_class = [
            registry.histogram("latency_critical"),
            registry.histogram("latency_standard"),
            registry.histogram("latency_background"),
        ];
        Self {
            tenants,
            events,
            queue: VecDeque::new(),
            lanes: vec![0; cfg.ranks_per_shard as usize],
            plan: FaultPlan::new(cfg.faults, u64::from(shard)),
            clock: 0,
            next_seq,
            backpressured: false,
            level: ServiceLevel::Full,
            level_cycles: [0; 4],
            summary: ServeSummary::default(),
            table: TenantTable::new(cfg.tenants as usize),
            registry,
            h_latency,
            h_class,
            cfg,
            shard,
        }
    }

    fn draw_gap(t: &mut Tenant) -> u64 {
        // Uniform in `1..=2*period-1`, mean ≈ period; never zero so a
        // tenant cannot generate twice in one cycle.
        1 + t.rng.next_below(2 * t.period - 1)
    }

    fn push_event(&mut self, at: u64, kind: EvKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Ev { at, seq, kind }));
    }

    /// Ingress backlog weighted for write drain: a queued write counts
    /// double (its service occupancy is ~2× a read's), so a write-heavy
    /// backlog asserts backpressure earlier — the "write drain falling
    /// behind" signal of DESIGN.md §16.
    fn weighted_backlog(&self) -> u64 {
        self.queue
            .iter()
            .map(|r| if r.is_read { 1 } else { 2 })
            .sum()
    }

    /// Re-evaluates the degradation ladder at `at`.
    fn reassess(&mut self, at: u64) {
        let weighted = self.weighted_backlog();
        let high = u64::from(self.cfg.backpressure_high);
        let low = u64::from(self.cfg.backpressure_low);
        if !self.backpressured && weighted >= high {
            self.backpressured = true;
        } else if self.backpressured && weighted <= low {
            self.backpressured = false;
        }
        let (degraded, storm_pressure) = match self.plan.as_mut() {
            Some(plan) => {
                let degraded = plan.is_degraded(Cycle(at));
                (degraded, plan.signal(Cycle(at)).pressure_bp >= BP_SCALE)
            }
            None => (false, false),
        };
        let backlogged = weighted >= high;
        self.level = match (degraded, backlogged) {
            (true, true) if storm_pressure => ServiceLevel::Shed,
            (true, true) => ServiceLevel::CriticalOnly,
            (true, false) | (false, true) => ServiceLevel::ReadPriority,
            (false, false) => ServiceLevel::Full,
        };
    }

    /// One request reaches a terminal outcome.
    fn terminal(&mut self, req: &Request, outcome: &'static str) {
        let row = self
            .table
            .row_mut(self.tenants[req.slot as usize].id as usize);
        row.generated += 1;
        match outcome {
            "shed_throttled" => {
                self.summary.shed_throttled += 1;
                row.shed += 1;
            }
            "shed_overflow" => {
                self.summary.shed_overflow += 1;
                row.shed += 1;
            }
            "shed_degraded" => {
                self.summary.shed_degraded += 1;
                row.shed += 1;
            }
            "shed_deadline" => {
                self.summary.shed_deadline += 1;
                row.shed += 1;
            }
            "failed" => {
                self.summary.failed += 1;
                row.failed += 1;
            }
            other => unreachable!("unknown terminal outcome {other}"),
        }
        if req.counted_admit {
            row.admitted += 1;
        }
        row.retries += u64::from(req.attempts);
    }

    /// Admission: ladder gate, backpressure deferral, token bucket,
    /// bounded queue — in that order. Consumes the request; every exit
    /// is either the queue, a future re-admission event, or a terminal
    /// outcome.
    fn admit(&mut self, mut req: Request, at: u64) {
        self.reassess(at);
        // 1. Degradation ladder.
        let ladder_shed = match self.level {
            ServiceLevel::Shed => true,
            ServiceLevel::CriticalOnly => req.class != TenantClass::Critical,
            ServiceLevel::Full | ServiceLevel::ReadPriority => false,
        };
        if ladder_shed {
            self.terminal(&req, "shed_degraded");
            return;
        }
        // 2. Backpressure: defer fresh arrivals upstream with
        // exponential backoff; a deferral that cannot land before the
        // deadline is shed visibly instead of looping forever.
        if self.backpressured && !req.counted_admit {
            let wait = self.cfg.retry_backoff << req.defers.min(16);
            let resume = at + wait.max(1);
            self.summary.deferrals += 1;
            if resume > req.due {
                self.terminal(&req, "shed_deadline");
                return;
            }
            req.defers += 1;
            self.push_event(resume, EvKind::Readmit { req });
            return;
        }
        // 3. Token bucket (first admission only; retries were paid for).
        if !req.counted_admit {
            let tenant = &mut self.tenants[req.slot as usize];
            if !tenant.bucket.try_take(at) {
                self.terminal(&req, "shed_throttled");
                return;
            }
        }
        // 4. Bounded ingress queue — the hard memory cap.
        if self.queue.len() >= self.cfg.ingress_cap as usize {
            self.terminal(&req, "shed_overflow");
            return;
        }
        if !req.counted_admit {
            req.counted_admit = true;
            self.summary.admitted += 1;
        }
        self.queue.push_back(req);
        let occupancy = self.queue.len() as u64;
        if occupancy > self.summary.peak_ingress {
            self.summary.peak_ingress = occupancy;
        }
    }

    /// Picks the queue index to dispatch next under the current ladder
    /// rung. Deterministic: scans in FIFO order.
    fn pick(&self) -> usize {
        match self.level {
            ServiceLevel::Full => 0,
            ServiceLevel::ReadPriority => self.queue.iter().position(|r| r.is_read).unwrap_or(0),
            ServiceLevel::CriticalOnly | ServiceLevel::Shed => {
                let best = |want_class: bool, want_read: bool| {
                    self.queue.iter().position(|r| {
                        (!want_class || r.class == TenantClass::Critical)
                            && (!want_read || r.is_read)
                    })
                };
                best(true, true)
                    .or_else(|| best(true, false))
                    .or_else(|| best(false, true))
                    .unwrap_or(0)
            }
        }
    }

    /// Records an injected fault on the shard's plan and counters.
    fn note_fault(&mut self, at: u64, counter: &'static str) {
        self.registry_bump("faults_injected");
        self.registry_bump(counter);
        if let Some(plan) = self.plan.as_mut() {
            if plan.record_fault(Cycle(at)) {
                self.registry_bump("degraded_enters");
            }
        }
    }

    fn registry_bump(&mut self, name: &'static str) {
        // Counters are registered on first use; the fixed call sites
        // keep the name set identical across shards.
        let id = self.registry.counter(name);
        self.registry.add(id, 1);
    }

    /// Dispatches queued requests onto free lanes at `at`.
    fn dispatch(&mut self, at: u64) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let Some(lane) = self.lanes.iter().position(|&busy| busy <= at) else {
                return;
            };
            self.reassess(at);
            let idx = self.pick();
            let mut req = self.queue.remove(idx).expect("picked index in range");

            // Deadline enforcement at service start: a request that
            // aged out while queued re-enters with backoff, bounded by
            // the retry budget.
            if at > req.due {
                if req.attempts < self.cfg.retry_budget {
                    let wait = self.cfg.retry_backoff << req.attempts.min(16);
                    req.attempts += 1;
                    req.due = at + wait.max(1) + self.cfg.deadline;
                    self.summary.retries += 1;
                    self.registry_bump("timeouts");
                    self.push_event(at + wait.max(1), EvKind::Readmit { req });
                } else {
                    self.registry_bump("timeouts");
                    self.terminal(&req, "shed_deadline");
                }
                continue;
            }

            let base = if req.is_read {
                self.cfg.service_read
            } else {
                self.cfg.service_write
            };
            let mut service = base;
            let mut failed_delivery = false;
            if self.plan.is_some() {
                match self.plan.as_mut().expect("plan present").on_chip_op() {
                    ChipFault::None => {}
                    ChipFault::Slow(extra) => {
                        service += extra;
                        self.note_fault(at, "faults_chip_slow");
                    }
                    ChipFault::StuckBusy => {
                        // The lane hangs until the watchdog force-frees
                        // it; the request rides out the stall.
                        service += self
                            .plan
                            .as_ref()
                            .expect("plan present")
                            .watchdog_deadline();
                        self.registry_bump("watchdog_trips");
                        self.note_fault(at, "faults_chip_stuck");
                    }
                }
                if req.is_read {
                    match self.plan.as_mut().expect("plan present").on_line_read() {
                        ReadFault::None => {}
                        ReadFault::SingleBit { .. } => {
                            service += ECC_CORRECT_EXTRA;
                            self.registry_bump("faults_corrected");
                            self.note_fault(at, "faults_single_bit");
                        }
                        ReadFault::DoubleBit { .. } => {
                            self.note_fault(at, "faults_uncorrectable");
                            failed_delivery = true;
                        }
                    }
                }
            }
            self.lanes[lane] = at + service;

            if failed_delivery {
                // Uncorrectable delivery: bounded retry with the fault
                // plan's exponential backoff, then a visible failure.
                if req.attempts < self.cfg.retry_budget {
                    let delay = self
                        .plan
                        .as_ref()
                        .expect("plan present")
                        .retry_delay(req.attempts);
                    req.attempts += 1;
                    req.due = at + service + delay.max(1) + self.cfg.deadline;
                    self.summary.retries += 1;
                    self.push_event(at + service + delay.max(1), EvKind::Readmit { req });
                } else {
                    self.terminal(&req, "failed");
                }
                continue;
            }

            // Retirement: the completion cycle is known at dispatch.
            let completion = at + service;
            let latency = completion.saturating_sub(req.born);
            self.registry.observe(self.h_latency, latency);
            self.registry
                .observe(self.h_class[req.class.index()], latency);
            self.summary.retired += 1;
            let met_slo = latency <= self.cfg.slo.target;
            if met_slo {
                self.summary.slo_ok += 1;
            }
            let row = self
                .table
                .row_mut(self.tenants[req.slot as usize].id as usize);
            row.generated += 1;
            row.admitted += 1;
            row.retired += 1;
            row.retries += u64::from(req.attempts);
            row.latency_sum += latency;
            row.latency_max = row.latency_max.max(latency);
            if met_slo {
                row.slo_ok += 1;
            }
        }
    }

    /// The next cycle at which anything can happen: the earliest
    /// pending event, or the earliest lane-free horizon while work is
    /// queued.
    fn next_event(&self) -> Option<u64> {
        let mut next = self.events.peek().map(|Reverse(ev)| ev.at);
        if !self.queue.is_empty() && self.lanes.iter().all(|&busy| busy > self.clock) {
            let lane_free = self.lanes.iter().copied().min().unwrap_or(u64::MAX);
            next = Some(next.map_or(lane_free, |n| n.min(lane_free)));
        }
        next
    }

    /// Runs the shard to completion and returns its outcome.
    pub fn run_to_completion(mut self) -> ShardOutcome {
        loop {
            // Drain everything scheduled at the current cycle, then
            // dispatch onto whatever lanes are free.
            while let Some(Reverse(ev)) = self.events.peek() {
                if ev.at > self.clock {
                    break;
                }
                let Reverse(ev) = self.events.pop().expect("peeked event");
                match ev.kind {
                    EvKind::Generate { slot } => {
                        let at = ev.at;
                        let tenant = &mut self.tenants[slot as usize];
                        debug_assert!(tenant.remaining > 0);
                        tenant.remaining -= 1;
                        let is_read = tenant.rng.next_below(u64::from(BP_SCALE))
                            < u64::from(self.cfg.read_fraction_bp);
                        let class = tenant.class;
                        let gap = if tenant.remaining > 0 {
                            Some(Self::draw_gap(tenant))
                        } else {
                            None
                        };
                        self.summary.generated += 1;
                        let req = Request {
                            slot,
                            class,
                            is_read,
                            born: at,
                            due: at + self.cfg.deadline,
                            attempts: 0,
                            defers: 0,
                            counted_admit: false,
                        };
                        if let Some(gap) = gap {
                            self.push_event(at + gap, EvKind::Generate { slot });
                        }
                        self.admit(req, at);
                    }
                    EvKind::Readmit { req } => {
                        self.admit(req, ev.at);
                    }
                }
            }
            self.dispatch(self.clock);

            let Some(next) = self.next_event() else {
                break;
            };
            debug_assert!(next > self.clock, "horizon must advance");
            self.reassess(self.clock);
            self.level_cycles[self.level.index()] += next - self.clock;
            self.clock = next;
        }

        debug_assert!(self.queue.is_empty() && self.events.is_empty());
        // Fold the ladder/degradation tallies into the snapshot.
        for (level, cycles) in ServiceLevel::ALL.iter().zip(self.level_cycles) {
            let id = self.registry.counter(match level {
                ServiceLevel::Full => "level_full_cycles",
                ServiceLevel::ReadPriority => "level_read_priority_cycles",
                ServiceLevel::CriticalOnly => "level_critical_only_cycles",
                ServiceLevel::Shed => "level_shed_cycles",
            });
            self.registry.add(id, cycles);
        }
        if let Some(plan) = self.plan.as_ref() {
            let d = plan.degrade();
            let id = self.registry.counter("degraded_exits");
            self.registry.add(id, d.exits());
            let id = self.registry.counter("degraded_cycles");
            self.registry.add(id, d.degraded_cycles(Cycle(self.clock)));
        }
        let peak = self.registry.gauge("peak_ingress", GaugeRule::Max);
        self.registry
            .set_gauge(peak, self.summary.peak_ingress as f64);
        for (name, value) in [
            ("generated", self.summary.generated),
            ("admitted", self.summary.admitted),
            ("retired", self.summary.retired),
            ("shed_throttled", self.summary.shed_throttled),
            ("shed_overflow", self.summary.shed_overflow),
            ("shed_degraded", self.summary.shed_degraded),
            ("shed_deadline", self.summary.shed_deadline),
            ("failed_visible", self.summary.failed),
            ("retries", self.summary.retries),
            ("deferrals", self.summary.deferrals),
            ("slo_ok", self.summary.slo_ok),
        ] {
            let id = self.registry.counter(name);
            self.registry.add(id, value);
        }

        debug_assert!(
            self.summary.conserved(),
            "shard {} leaked a request: {:?}",
            self.shard,
            self.summary
        );
        ShardOutcome {
            summary: self.summary,
            snapshot: self.registry.snapshot(),
            tenants: self.table,
            level_cycles: self.level_cycles,
            end_cycle: self.clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::FaultConfig;

    fn small_cfg() -> ServeConfig {
        ServeConfig::paper_default()
            .with_tenants(8)
            .with_requests(2_000)
            .with_fleet(2, 1, 2)
    }

    #[test]
    fn shard_conserves_every_request_fault_free() {
        let cfg = small_cfg();
        let mut total = ServeSummary::default();
        for shard in 0..cfg.shards() {
            let out = ShardSim::new(cfg.clone(), shard).run_to_completion();
            assert!(out.summary.conserved(), "{:?}", out.summary);
            total.merge(&out.summary);
        }
        assert_eq!(total.generated, cfg.requests);
        assert!(total.conserved());
        assert_eq!(total.failed, 0, "no faults, no visible failures");
        assert_eq!(total.shed_degraded, 0, "no faults, ladder stays up");
    }

    #[test]
    fn shard_conserves_under_storm_and_stays_bounded() {
        let mut cfg = small_cfg().with_faults(FaultConfig::storm(0.2, 7));
        cfg.requests = 4_000;
        let mut total = ServeSummary::default();
        let mut degraded_cycles = 0;
        for shard in 0..cfg.shards() {
            let out = ShardSim::new(cfg.clone(), shard).run_to_completion();
            assert!(out.summary.conserved(), "{:?}", out.summary);
            assert!(
                out.summary.peak_ingress <= u64::from(cfg.ingress_cap),
                "ingress must stay under the cap"
            );
            degraded_cycles += out.snapshot.counter("degraded_cycles");
            total.merge(&out.summary);
        }
        assert_eq!(total.generated, cfg.requests);
        assert!(total.retired > 0);
        assert!(degraded_cycles > 0, "storm must demote at least one shard");
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = small_cfg().with_faults(FaultConfig::storm(0.1, 9));
        let a = ShardSim::new(cfg.clone(), 0).run_to_completion();
        let b = ShardSim::new(cfg, 0).run_to_completion();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.end_cycle, b.end_cycle);
        assert_eq!(a.level_cycles, b.level_cycles);
    }

    #[test]
    fn overload_sheds_instead_of_growing() {
        // Tenants arriving far faster than two lanes can drain: the
        // bounded queue must shed, and peak occupancy must respect the
        // cap.
        let mut cfg = small_cfg();
        cfg.tenants = 8;
        cfg.requests = 8_000;
        for t in cfg.tenant_template.iter_mut() {
            t.arrival_period = 4;
            t.bucket_capacity = 1_000;
            t.bucket_refill_period = 1;
        }
        cfg.ingress_cap = 32;
        cfg.backpressure_high = 24;
        cfg.backpressure_low = 8;
        let out = ShardSim::new(cfg.clone(), 0).run_to_completion();
        assert!(out.summary.conserved(), "{:?}", out.summary);
        assert!(out.summary.peak_ingress <= 32);
        assert!(
            out.summary.shed_total() + out.summary.deferrals > 0,
            "overload must shed or defer: {:?}",
            out.summary
        );
    }

    #[test]
    fn ladder_sheds_noncritical_under_storm_pressure() {
        // A violent storm with a tight degrade threshold must push some
        // shard into critical-only or full shed at least once.
        let mut cfg = small_cfg().with_faults(FaultConfig::storm(0.9, 11));
        cfg.faults.degrade_threshold = 2;
        cfg.requests = 6_000;
        for t in cfg.tenant_template.iter_mut() {
            t.arrival_period = 4;
            t.bucket_capacity = 1_000;
            t.bucket_refill_period = 1;
        }
        cfg.ingress_cap = 16;
        cfg.backpressure_high = 8;
        cfg.backpressure_low = 2;
        let mut shed_degraded = 0;
        let mut constrained_cycles = 0;
        for shard in 0..cfg.shards() {
            let out = ShardSim::new(cfg.clone(), shard).run_to_completion();
            assert!(out.summary.conserved());
            shed_degraded += out.summary.shed_degraded;
            constrained_cycles += out.level_cycles[2] + out.level_cycles[3];
        }
        assert!(shed_degraded > 0, "ladder never shed anything");
        assert!(constrained_cycles > 0, "ladder never left full service");
    }
}
