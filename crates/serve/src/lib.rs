//! `pcmap-serve` — overload-safe ingestion tier for the PCMap fleet
//! (DESIGN.md §16).
//!
//! The ROADMAP's production direction puts a service tier in front of
//! the memory system: thousands of tenants streaming requests into a
//! sharded fleet of channels × DIMMs, each shard serving through its
//! ranks. This crate models that tier end to end, with the robustness
//! properties a real ingestion front-end must have:
//!
//! - **Admission control** — one token bucket per tenant
//!   ([`bucket::TokenBucket`]): bursts up to the bucket capacity, then
//!   throttled sheds, never unbounded queueing.
//! - **Bounded ingress** — each shard's queue has a hard entry cap;
//!   overload sheds visibly (`shed_overflow`) instead of growing.
//!   Backpressure (hysteresis watermarks over a write-weighted backlog)
//!   defers fresh arrivals with exponential backoff before the cap is
//!   ever hit.
//! - **Deadlines, retry, backoff** — every request carries a deadline;
//!   timeouts and fault-failed services re-enter admission with
//!   exponentially backed-off delays, bounded by a retry budget, after
//!   which the request fails *visibly* (`shed_deadline` / `failed`).
//! - **Graceful degradation** — a four-rung ladder
//!   ([`shard::ServiceLevel`]) driven by the PR 4 fault machinery:
//!   full → read-priority → admit-critical-only → shed, demoting as
//!   fault storms and backlog mount and re-promoting on clean windows.
//! - **Conservation** — every generated request ends in exactly one
//!   terminal bucket; [`ServeReport::check`] refuses to export a ledger
//!   that leaks.
//!
//! Shards are independent sub-simulations farmed to `pcmap_par::Pool`
//! and merged in shard order, so reports are byte-identical at any
//! `--jobs` (DESIGN.md §9). [`gate::TokenGate`] additionally attaches
//! the same admission policy to the real `pcmap_sim::System` for
//! small-scale cross-checking.

pub mod bucket;
pub mod fleet;
pub mod gate;
pub mod shard;

pub use bucket::TokenBucket;
pub use fleet::{run_fleet, ServeReport};
pub use gate::TokenGate;
pub use shard::{ServiceLevel, ShardOutcome, ShardSim};
