//! Integer token-bucket admission control (DESIGN.md §16).
//!
//! One bucket per tenant. All arithmetic is u64 cycles and whole
//! tokens — no float accumulation, so refill across shards and job
//! counts is exactly reproducible. Refill is lazy: tokens materialize
//! when the bucket is next consulted, one per `refill_period` elapsed
//! cycles, with the remainder carried so cadence never drifts.

/// A lazily-refilled token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    refill_period: u64,
    tokens: u64,
    /// Cycle at which the last refill was accounted; the un-credited
    /// remainder `(now - refilled_at) % refill_period` stays implicit.
    refilled_at: u64,
}

impl TokenBucket {
    /// A bucket that starts full.
    #[must_use]
    pub fn new(capacity: u64, refill_period: u64) -> Self {
        debug_assert!(capacity > 0 && refill_period > 0);
        Self {
            capacity,
            refill_period,
            tokens: capacity,
            refilled_at: 0,
        }
    }

    fn refill(&mut self, at: u64) {
        let elapsed = at.saturating_sub(self.refilled_at);
        let earned = elapsed / self.refill_period;
        if earned == 0 {
            return;
        }
        if self.tokens.saturating_add(earned) >= self.capacity {
            self.tokens = self.capacity;
            // A full bucket restarts its cadence from the observation
            // point; carrying the remainder would credit pre-overflow
            // time.
            self.refilled_at = at;
        } else {
            self.tokens += earned;
            self.refilled_at += earned * self.refill_period;
        }
    }

    /// Takes one token at cycle `at`; `false` means the tenant is
    /// throttled.
    pub fn try_take(&mut self, at: u64) -> bool {
        self.refill(at);
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }

    /// Tokens available at cycle `at` (refills first).
    pub fn available(&mut self, at: u64) -> u64 {
        self.refill(at);
        self.tokens
    }

    /// Returns a token whose admission was unwound downstream (e.g. the
    /// controller queue rejected the request after the gate admitted
    /// it). Capped at capacity.
    pub fn refund(&mut self) {
        self.tokens = (self.tokens + 1).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_throttles_at_zero() {
        let mut b = TokenBucket::new(2, 10);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst capacity exhausted");
        assert!(!b.try_take(9), "not yet refilled");
        assert!(b.try_take(10), "one token after one period");
        assert!(!b.try_take(10));
    }

    #[test]
    fn refill_carries_remainder_without_drift() {
        let mut b = TokenBucket::new(4, 10);
        for _ in 0..4 {
            assert!(b.try_take(0));
        }
        // 25 cycles = 2 tokens + 5 remainder; the next token lands at
        // 30, not 35.
        assert_eq!(b.available(25), 2);
        b.try_take(25);
        b.try_take(25);
        assert!(!b.try_take(29));
        assert!(b.try_take(30));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = TokenBucket::new(3, 5);
        assert!(b.try_take(0));
        assert_eq!(b.available(1_000_000), 3);
    }

    #[test]
    fn refund_returns_a_token_capped() {
        let mut b = TokenBucket::new(2, 10);
        assert!(b.try_take(0));
        b.refund();
        assert_eq!(b.available(0), 2);
        b.refund();
        assert_eq!(b.available(0), 2, "refund never exceeds capacity");
    }
}
