//! Cross-checks the serve tier's admission policy against the real
//! simulator (DESIGN.md §16).
//!
//! [`TokenGate`] attaches the fleet's token-bucket admission to
//! `pcmap_sim::System`; these tests pin the integration contract:
//! a gateless run is byte-identical to the pre-serve simulator (no
//! `serve` key in the JSON), a gated run stays byte-identical across
//! engines and worker counts, and the gate's ledger conserves every
//! request it ever sees.

use pcmap_core::SystemKind;
use pcmap_par::Pool;
use pcmap_serve::TokenGate;
use pcmap_sim::{SimConfig, System};
use pcmap_types::{ServeSummary, SloSpec};
use pcmap_workloads::catalog;

fn cfg(requests: u64) -> SimConfig {
    SimConfig::paper_default(SystemKind::RwowRde).with_requests(requests)
}

fn generous_gate(cores: usize) -> TokenGate {
    // A bucket so deep it never throttles: the gate observes without
    // perturbing.
    TokenGate::new(cores, 1 << 20, 1, 16, SloSpec::paper_default())
}

fn tight_gate(cores: usize) -> TokenGate {
    TokenGate::new(
        cores,
        4,
        512,
        16,
        SloSpec {
            target: 400,
            goal_bp: 9_000,
        },
    )
}

fn run_gated(
    c: &SimConfig,
    gate: Option<TokenGate>,
    jobs: usize,
) -> (String, Option<ServeSummary>) {
    let wl = catalog::by_name("canneal").expect("catalog workload");
    let mut sys = System::new(c.clone(), wl);
    if let Some(gate) = gate {
        sys.set_ingress_gate(Box::new(gate));
    }
    let report = if jobs == 0 {
        sys.run()
    } else {
        sys.run_parallel(&mut Pool::new(jobs))
    };
    (report.to_json().to_json_string(), report.serve)
}

#[test]
fn gateless_report_has_no_serve_block() {
    let (json, serve) = run_gated(&cfg(400), None, 0);
    assert!(serve.is_none());
    assert!(
        !json.contains("\"serve\""),
        "gateless runs must serialize exactly as before the serve tier existed"
    );
}

#[test]
fn gated_run_is_byte_identical_across_engines_and_jobs() {
    let c = cfg(800);
    let cores = usize::from(c.cpu.cores);
    let (serial, serve) = run_gated(&c, Some(tight_gate(cores)), 0);
    let serve = serve.expect("gate attached");
    assert!(serve.conserved(), "{serve:?}");
    assert!(serial.contains("\"serve\""));
    for jobs in [1usize, 4] {
        let (par, par_serve) = run_gated(&c, Some(tight_gate(cores)), jobs);
        assert_eq!(serial, par, "gated run diverged at jobs = {jobs}");
        assert_eq!(Some(serve), par_serve);
    }
}

#[test]
fn generous_gate_retires_everything_it_admits() {
    let c = cfg(600);
    let (_, serve) = run_gated(&c, Some(generous_gate(usize::from(c.cpu.cores))), 0);
    let s = serve.expect("gate attached");
    assert!(s.conserved(), "{s:?}");
    assert_eq!(s.generated, s.admitted, "a generous bucket never defers");
    assert_eq!(s.deferrals, 0);
    assert_eq!(
        s.retired, s.admitted,
        "every admitted request must complete by drain"
    );
    assert!(
        s.retired >= 600,
        "reads and writes both retire via the gate"
    );
}

#[test]
fn tight_gate_defers_but_still_conserves() {
    let c = cfg(600);
    let (_, serve) = run_gated(&c, Some(tight_gate(usize::from(c.cpu.cores))), 0);
    let s = serve.expect("gate attached");
    assert!(s.conserved(), "{s:?}");
    assert!(s.deferrals > 0, "a 4-token bucket must throttle: {s:?}");
    assert_eq!(s.retired, s.admitted);
    assert!(s.slo_ok <= s.retired);
    assert!(s.peak_ingress > 0);
}
