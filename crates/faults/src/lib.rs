//! pcmap-faults — deterministic, seed-driven fault injection for the
//! PCMap memory stack (DESIGN.md §11).
//!
//! A [`FaultPlan`] owns a dedicated [`Xoshiro256`] stream (mixed from
//! [`FaultConfig::seed`] and the channel index, never OS entropy) and
//! decides, event by event, which operations misbehave:
//!
//! - **transient flips** on line reads ([`FaultPlan::on_line_read`]):
//!   single-bit (SECDED-correctable) or double-bit in one word
//!   (uncorrectable, exercising PCC reconstruction and the retry path);
//! - **wear-induced stuck-at cells** on word writes
//!   ([`FaultPlan::on_word_write`]), applied by `device::storage`;
//! - **slow / stuck-busy chip operations**
//!   ([`FaultPlan::on_chip_op`]), applied by `device::timing` and
//!   cleared by the controller's per-rank watchdog;
//! - **Status-register poll corruption**
//!   ([`FaultPlan::on_status_poll`]) on overlapped issues (§IV-D1),
//!   doubling the poll's bus cost.
//!
//! The plan also carries the per-rank [`DegradeState`] machine: once the
//! observed fault count inside a sliding window crosses the configured
//! threshold, the rank is demoted from RoW/WoW speculation to coarse
//! baseline scheduling, and re-promoted after a clean window — so a
//! noisy rank loses throughput, never correctness.
//!
//! Because each channel's controller owns its own plan and issues the
//! same call sequence under `--jobs 1` and `--jobs N`, fault decisions
//! are byte-reproducible across thread counts.

#![warn(missing_docs)]
#![deny(unused_must_use)]

use pcmap_types::{CacheLine, Cycle, FaultConfig, Xoshiro256, WORDS_PER_LINE};

/// Outcome of the transient-flip draw for one line read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The read is clean.
    None,
    /// One bit of one word flips — SECDED corrects it in place.
    SingleBit {
        /// Word index within the line.
        word: usize,
        /// Bit index within the word.
        bit: u32,
    },
    /// Two distinct bits of the *same* word flip — SECDED detects but
    /// cannot correct, forcing PCC reconstruction or a retry.
    DoubleBit {
        /// Word index within the line.
        word: usize,
        /// First flipped bit.
        bit_a: u32,
        /// Second flipped bit (always distinct from `bit_a`).
        bit_b: u32,
    },
}

impl ReadFault {
    /// Applies the flip(s) to the freshly read line.
    pub fn apply(&self, line: &mut CacheLine) {
        match *self {
            ReadFault::None => {}
            ReadFault::SingleBit { word, bit } => {
                line.set_word(word, line.word(word) ^ (1u64 << bit));
            }
            ReadFault::DoubleBit { word, bit_a, bit_b } => {
                line.set_word(word, line.word(word) ^ (1u64 << bit_a) ^ (1u64 << bit_b));
            }
        }
    }

    /// Whether any bit flips.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        !matches!(self, ReadFault::None)
    }
}

/// One rung of the read-recovery ladder (DESIGN.md §11), used by the
/// controller to attribute recovery-extension cycles in request
/// lifecycle timelines (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryStage {
    /// SECDED corrected the error in place (no extra latency).
    SecdedCorrect,
    /// PCC erasure reconstruction of one uncorrectable word
    /// (costs an extra array read).
    PccReconstruct,
    /// A bounded retry with exponential backoff.
    Retry,
    /// The retry budget is exhausted; the read fails upward.
    Failed,
}

impl RecoveryStage {
    /// Stable label for reports and traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStage::SecdedCorrect => "secded_correct",
            RecoveryStage::PccReconstruct => "pcc_reconstruct",
            RecoveryStage::Retry => "retry",
            RecoveryStage::Failed => "failed",
        }
    }
}

/// Outcome of the chip-occupancy draw for one array operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipFault {
    /// The operation completes on time.
    None,
    /// The operation takes the given extra memory cycles.
    Slow(u64),
    /// The chip hangs busy; only the rank watchdog frees it, at
    /// `expected_end + watchdog_deadline`.
    StuckBusy,
}

/// Per-rank graceful-degradation state machine.
///
/// `Healthy --(faults ≥ threshold within degrade_window)--> Degraded`
/// `Degraded --(no fault for clean_window)--> Healthy`
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradeState {
    degraded: bool,
    window_start: Cycle,
    faults_in_window: u32,
    last_fault: Cycle,
    entered_at: Cycle,
    enters: u64,
    exits: u64,
    degraded_cycles: u64,
}

impl DegradeState {
    /// Times a rank has entered degraded mode.
    #[must_use]
    pub fn enters(&self) -> u64 {
        self.enters
    }

    /// Times a rank has been re-promoted.
    #[must_use]
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// Memory cycles spent degraded, including a still-open stretch up
    /// to `now`.
    #[must_use]
    pub fn degraded_cycles(&self, now: Cycle) -> u64 {
        let open = if self.degraded {
            now.0.saturating_sub(self.entered_at.0)
        } else {
            0
        };
        self.degraded_cycles + open
    }
}

/// Point-in-time degradation signal exported to upstream tiers
/// (DESIGN.md §16). A pure, copyable snapshot of the state machine —
/// consumers (the serve ladder, dashboards) read it without taking the
/// mutable borrow [`FaultPlan::is_degraded`] needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradeSignal {
    /// Whether the rank is demoted right now (clean-window re-promotion
    /// anticipated).
    pub degraded: bool,
    /// Faults observed in the current degradation window.
    pub faults_in_window: u32,
    /// Window fill toward demotion, in basis points of the threshold
    /// (10_000 = at the demotion boundary), clamped.
    pub pressure_bp: u32,
    /// Times the rank has entered degraded mode.
    pub enters: u64,
    /// Times the rank has been re-promoted.
    pub exits: u64,
}

/// The deterministic fault injector for one channel's rank.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Xoshiro256,
    degrade: DegradeState,
}

impl FaultPlan {
    /// Builds the plan for `channel`, or `None` when the configuration
    /// disables every fault class (so callers keep a cheap
    /// `Option<FaultPlan>` that leaves the fault-free path untouched).
    pub fn new(cfg: FaultConfig, channel: u64) -> Option<Self> {
        if !cfg.enabled() {
            return None;
        }
        Some(Self {
            cfg,
            rng: Xoshiro256::new(cfg.seed ^ 0xfa17_5eed ^ (channel << 23)),
            degrade: DegradeState::default(),
        })
    }

    /// The configuration the plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Draws the transient-flip outcome for one line read.
    pub fn on_line_read(&mut self) -> ReadFault {
        pcmap_prof::bump(pcmap_prof::Counter::FaultDraws);
        if !self.rng.chance(self.cfg.rate) {
            return ReadFault::None;
        }
        let word = self.rng.next_below(WORDS_PER_LINE as u64) as usize;
        let bit_a = (self.rng.next_below(64)) as u32;
        if self.rng.chance(self.cfg.double_bit_fraction) {
            // Second bit in the same word, distinct so the flips never
            // cancel back to a correctable pattern.
            let bit_b = (bit_a + 1 + (self.rng.next_below(63)) as u32) % 64;
            ReadFault::DoubleBit { word, bit_a, bit_b }
        } else {
            ReadFault::SingleBit { word, bit: bit_a }
        }
    }

    /// Draws the wear outcome for one word write: `Some(bit)` sticks
    /// that cell of the word at its current value.
    pub fn on_word_write(&mut self) -> Option<u32> {
        pcmap_prof::bump(pcmap_prof::Counter::FaultDraws);
        if self.rng.chance(self.cfg.stuck_cell_rate) {
            Some((self.rng.next_below(64)) as u32)
        } else {
            None
        }
    }

    /// Draws the occupancy outcome for one chip array operation.
    pub fn on_chip_op(&mut self) -> ChipFault {
        pcmap_prof::bump(pcmap_prof::Counter::FaultDraws);
        if self.rng.chance(self.cfg.chip_stuck_rate) {
            ChipFault::StuckBusy
        } else if self.rng.chance(self.cfg.chip_slow_rate) {
            ChipFault::Slow(self.cfg.chip_slow_extra)
        } else {
            ChipFault::None
        }
    }

    /// Draws whether an overlapped-issue Status poll is corrupted and
    /// must be repeated.
    pub fn on_status_poll(&mut self) -> bool {
        pcmap_prof::bump(pcmap_prof::Counter::FaultDraws);
        self.rng.chance(self.cfg.status_corrupt_rate)
    }

    /// Draws a uniform index below `n` — used to pick the victim chip of
    /// a slow/stuck operation from the op's chip set.
    pub fn pick(&mut self, n: u64) -> u64 {
        self.rng.next_below(n)
    }

    /// Exponential backoff before retry `attempt` (0-based) of an
    /// uncorrectable read: `retry_backoff << attempt`, shift-saturated.
    #[must_use]
    pub fn retry_delay(&self, attempt: u32) -> u64 {
        self.cfg.retry_backoff << attempt.min(16)
    }

    /// The configured retry budget for uncorrectable reads.
    #[must_use]
    pub fn retry_budget(&self) -> u32 {
        self.cfg.retry_budget
    }

    /// The watchdog deadline past a stuck chip's expected end.
    #[must_use]
    pub fn watchdog_deadline(&self) -> u64 {
        self.cfg.watchdog_deadline
    }

    /// Records an observed fault at `now` and updates the degradation
    /// window. Returns `true` when this fault demotes the rank.
    pub fn record_fault(&mut self, now: Cycle) -> bool {
        let d = &mut self.degrade;
        if self.cfg.degrade_threshold == 0 {
            d.last_fault = now;
            return false;
        }
        if now.0.saturating_sub(d.window_start.0) >= self.cfg.degrade_window {
            d.window_start = now;
            d.faults_in_window = 0;
        }
        d.faults_in_window += 1;
        d.last_fault = now;
        if !d.degraded && d.faults_in_window >= self.cfg.degrade_threshold {
            d.degraded = true;
            d.entered_at = now;
            d.enters += 1;
            true
        } else {
            false
        }
    }

    /// Advances the degradation state machine to `now` (re-promoting
    /// after a clean window) and reports whether the rank is currently
    /// demoted to coarse scheduling.
    pub fn is_degraded(&mut self, now: Cycle) -> bool {
        let d = &mut self.degrade;
        if d.degraded && now.0.saturating_sub(d.last_fault.0) >= self.cfg.clean_window {
            let exit_at = d.last_fault.0 + self.cfg.clean_window;
            d.degraded_cycles += exit_at.saturating_sub(d.entered_at.0);
            d.degraded = false;
            d.faults_in_window = 0;
            d.window_start = now;
            d.exits += 1;
        }
        d.degraded
    }

    /// Read-only view of the degradation counters.
    #[must_use]
    pub fn degrade(&self) -> &DegradeState {
        &self.degrade
    }

    /// Non-mutating degradation signal for upstream consumers
    /// (DESIGN.md §16): the serve tier's graceful-degradation ladder
    /// polls this to decide its service level without perturbing the
    /// state machine's own accounting. The `degraded` flag anticipates
    /// the clean-window re-promotion that [`Self::is_degraded`] would
    /// apply at `now`, so a pure observer and a mutating caller agree.
    #[must_use]
    pub fn signal(&self, now: Cycle) -> DegradeSignal {
        let d = &self.degrade;
        let clean_elapsed =
            d.degraded && now.0.saturating_sub(d.last_fault.0) >= self.cfg.clean_window;
        DegradeSignal {
            degraded: d.degraded && !clean_elapsed,
            faults_in_window: d.faults_in_window,
            pressure_bp: if self.cfg.degrade_threshold == 0 {
                0
            } else {
                let bp =
                    u64::from(d.faults_in_window) * 10_000 / u64::from(self.cfg.degrade_threshold);
                bp.min(10_000) as u32 // ratio clamped to <= 10_000
            },
            enters: d.enters,
            exits: d.exits,
        }
    }

    /// Event-engine hint (DESIGN.md §14): the next cycle at which the
    /// degradation machine changes state on its own — the re-promotion
    /// boundary `last_fault + clean_window` while degraded, `None` while
    /// healthy (demotion only ever happens inside a fault hook, which the
    /// scheduler already observes). Non-mutating, so hint computation
    /// cannot perturb the accounting [`Self::is_degraded`] performs.
    #[must_use]
    pub fn next_tick(&self, _now: Cycle) -> Option<Cycle> {
        self.degrade
            .degraded
            .then(|| Cycle(self.degrade.last_fault.0 + self.cfg.clean_window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_plan(rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig::storm(rate, 42), 0).expect("enabled")
    }

    #[test]
    fn disabled_config_yields_no_plan() {
        assert!(FaultPlan::new(FaultConfig::disabled(), 0).is_none());
        assert!(FaultPlan::new(FaultConfig::storm(0.0, 9), 3).is_none());
    }

    #[test]
    fn plans_are_deterministic_per_channel() {
        let cfg = FaultConfig::storm(0.2, 7);
        let mut a = FaultPlan::new(cfg, 1).unwrap();
        let mut b = FaultPlan::new(cfg, 1).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.on_line_read(), b.on_line_read());
            assert_eq!(a.on_chip_op(), b.on_chip_op());
            assert_eq!(a.on_word_write(), b.on_word_write());
            assert_eq!(a.on_status_poll(), b.on_status_poll());
        }
        // Distinct channels see distinct streams.
        let mut c = FaultPlan::new(cfg, 2).unwrap();
        let same = (0..64)
            .filter(|_| a.on_line_read() == c.on_line_read())
            .count();
        assert!(same < 64, "channel streams must diverge");
    }

    #[test]
    fn single_bit_flip_is_correctable_shape() {
        let mut plan = storm_plan(1.0);
        let mut saw_single = false;
        let mut saw_double = false;
        for _ in 0..200 {
            match plan.on_line_read() {
                ReadFault::None => panic!("rate 1.0 must always fault"),
                ReadFault::SingleBit { word, bit } => {
                    saw_single = true;
                    assert!(word < WORDS_PER_LINE && bit < 64);
                }
                ReadFault::DoubleBit { word, bit_a, bit_b } => {
                    saw_double = true;
                    assert!(word < WORDS_PER_LINE && bit_a < 64 && bit_b < 64);
                    assert_ne!(bit_a, bit_b, "double flip must not cancel");
                }
            }
        }
        assert!(saw_single && saw_double);
    }

    #[test]
    fn apply_flips_exactly_the_drawn_bits() {
        let mut line = CacheLine::from_seed(5);
        let orig = line;
        ReadFault::SingleBit { word: 3, bit: 17 }.apply(&mut line);
        assert_eq!(line.word(3), orig.word(3) ^ (1 << 17));
        let mut line2 = orig;
        ReadFault::DoubleBit {
            word: 0,
            bit_a: 0,
            bit_b: 63,
        }
        .apply(&mut line2);
        assert_eq!(line2.word(0), orig.word(0) ^ 1 ^ (1 << 63));
        assert_eq!(line2.word(1), orig.word(1));
    }

    #[test]
    fn retry_delay_is_exponential_and_saturating() {
        let plan = storm_plan(0.1);
        let base = plan.config().retry_backoff;
        assert_eq!(plan.retry_delay(0), base);
        assert_eq!(plan.retry_delay(1), base * 2);
        assert_eq!(plan.retry_delay(3), base * 8);
        // Saturates instead of overflowing the shift.
        assert_eq!(plan.retry_delay(60), base << 16);
    }

    #[test]
    fn degrade_enters_on_threshold_and_exits_after_clean_window() {
        let mut cfg = FaultConfig::storm(0.5, 3);
        cfg.degrade_threshold = 3;
        cfg.degrade_window = 100;
        cfg.clean_window = 50;
        let mut plan = FaultPlan::new(cfg, 0).unwrap();

        assert!(!plan.is_degraded(Cycle(0)));
        assert!(!plan.record_fault(Cycle(10)));
        assert!(!plan.record_fault(Cycle(20)));
        // Third fault inside the window trips the threshold.
        assert!(plan.record_fault(Cycle(30)));
        assert!(plan.is_degraded(Cycle(31)));
        assert_eq!(plan.degrade().enters(), 1);

        // Still degraded until a full clean window elapses.
        assert!(plan.is_degraded(Cycle(79)));
        assert!(!plan.is_degraded(Cycle(80)));
        assert_eq!(plan.degrade().exits(), 1);
        // Entered at 30, exited at last_fault(30) + clean(50) = 80.
        assert_eq!(plan.degrade().degraded_cycles(Cycle(200)), 50);
    }

    #[test]
    fn signal_matches_mutating_view_without_mutating() {
        let mut cfg = FaultConfig::storm(0.5, 3);
        cfg.degrade_threshold = 3;
        cfg.degrade_window = 100;
        cfg.clean_window = 50;
        let mut plan = FaultPlan::new(cfg, 0).unwrap();

        assert!(!plan.signal(Cycle(0)).degraded);
        plan.record_fault(Cycle(10));
        plan.record_fault(Cycle(20));
        let s = plan.signal(Cycle(21));
        assert!(!s.degraded);
        assert_eq!(s.faults_in_window, 2);
        assert_eq!(s.pressure_bp, 2 * 10_000 / 3);

        plan.record_fault(Cycle(30));
        assert!(plan.signal(Cycle(31)).degraded);
        assert_eq!(plan.signal(Cycle(31)).pressure_bp, 10_000);
        assert_eq!(plan.signal(Cycle(31)).enters, 1);

        // The pure view anticipates the clean-window re-promotion the
        // mutating call would apply — and agrees with it at every cycle —
        // without advancing the state machine itself.
        assert!(plan.signal(Cycle(79)).degraded);
        assert!(!plan.signal(Cycle(80)).degraded);
        assert_eq!(plan.degrade().exits(), 0, "signal must not mutate");
        assert!(!plan.is_degraded(Cycle(80)));
        assert_eq!(plan.degrade().exits(), 1);
        assert!(!plan.signal(Cycle(81)).degraded);
    }

    #[test]
    fn faults_spread_over_windows_do_not_degrade() {
        let mut cfg = FaultConfig::storm(0.5, 3);
        cfg.degrade_threshold = 3;
        cfg.degrade_window = 100;
        cfg.clean_window = 50;
        let mut plan = FaultPlan::new(cfg, 0).unwrap();
        // Two faults per window, windows reset between them.
        for base in [0u64, 200, 400, 600] {
            assert!(!plan.record_fault(Cycle(base + 1)));
            assert!(!plan.record_fault(Cycle(base + 2)));
        }
        assert!(!plan.is_degraded(Cycle(700)));
        assert_eq!(plan.degrade().enters(), 0);
    }

    #[test]
    fn open_degraded_stretch_counts_toward_cycles() {
        let mut cfg = FaultConfig::storm(0.5, 3);
        cfg.degrade_threshold = 1;
        cfg.degrade_window = 100;
        cfg.clean_window = 1000;
        let mut plan = FaultPlan::new(cfg, 0).unwrap();
        assert!(plan.record_fault(Cycle(40)));
        assert!(plan.is_degraded(Cycle(100)));
        assert_eq!(plan.degrade().degraded_cycles(Cycle(140)), 100);
    }
}
