//! Schema round-trip guard over the committed performance trajectory.
//!
//! `BENCH_<n>.json` files are long-lived artifacts (`git log -p` is the
//! history), so the schema must keep parsing them: this test pins the
//! real `BENCH_6.json` at the repo root through parse → typed report →
//! re-serialize → re-parse and requires a fixed point.

use pcmap_obs::Value;
use pcmap_prof::bench::{history_value, BenchReport, SCHEMA_VERSION};

const BENCH_6: &str = include_str!("../../../BENCH_6.json");

#[test]
fn committed_bench_file_round_trips_through_the_schema() {
    let parsed = pcmap_obs::json::parse(BENCH_6).expect("BENCH_6.json parses");
    assert_eq!(
        parsed.get("schema_version").and_then(Value::as_u64),
        Some(SCHEMA_VERSION)
    );
    let report = BenchReport::from_value(&parsed).expect("schema accepts BENCH_6.json");
    assert_eq!(report.bench_index, 6);
    assert_eq!(report.mode, "full");
    assert_eq!(report.scenarios.len(), 6);

    // Typed → JSON → typed must be a fixed point.
    let text = report.to_value().to_json_pretty();
    let reparsed = pcmap_obs::json::parse(&text).expect("re-serialized BENCH parses");
    let back = BenchReport::from_value(&reparsed).expect("schema accepts its own output");
    assert_eq!(back, report);
}

#[test]
fn history_rows_match_the_committed_trajectory_point() {
    let parsed = pcmap_obs::json::parse(BENCH_6).expect("BENCH_6.json parses");
    let report = BenchReport::from_value(&parsed).expect("schema accepts BENCH_6.json");
    let h = history_value(std::slice::from_ref(&report));
    let Value::Arr(rows) = &h else {
        panic!("history must be an array");
    };
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert_eq!(row.get("bench_index"), Some(&Value::U64(6)));
    assert_eq!(row.get("mode"), Some(&Value::Str("full".to_owned())));
    let rates = row.get("sim_cycles_per_sec").expect("rates present");
    for s in &report.scenarios {
        assert_eq!(
            rates.get(&s.name).and_then(Value::as_f64),
            Some(s.sim_cycles_per_sec)
        );
    }
}
