//! Index selection for `BENCH_<n>.json` artifacts.
//!
//! `cargo xtask perf` writes one trajectory point per PR; the index
//! picker must tolerate gaps in the sequence and must never pick an
//! index whose file already exists (overwriting a committed trajectory
//! point rewrites perf history).

use pcmap_prof::bench::next_bench_index;

/// `taken` closure over a fixed occupied set.
fn occupied(set: &[u64]) -> impl Fn(u64) -> bool + '_ {
    move |n| set.contains(&n)
}

#[test]
fn empty_history_starts_at_six() {
    assert_eq!(next_bench_index(&[], occupied(&[])), 6);
}

#[test]
fn advances_past_the_highest_existing_index() {
    assert_eq!(next_bench_index(&[6, 7], occupied(&[6, 7])), 8);
}

#[test]
fn tolerates_gaps_in_the_sequence() {
    // BENCH_7 was never written (or was deleted); the next point still
    // goes after the highest, not into the hole — history stays ordered.
    assert_eq!(next_bench_index(&[6, 8], occupied(&[6, 8])), 9);
}

#[test]
fn low_indices_never_pull_the_trajectory_below_its_start() {
    assert_eq!(next_bench_index(&[2, 3], occupied(&[2, 3])), 6);
}

#[test]
fn never_overwrites_a_pre_existing_target_file() {
    // The scan missed BENCH_8.json (say, an unreadable dir entry or an
    // odd filename casing the prefix parse skipped) but the file exists:
    // the picker must step over it instead of overwriting.
    assert_eq!(next_bench_index(&[6, 7], occupied(&[6, 7, 8])), 9);
    // Even a run of occupied candidates is skipped.
    assert_eq!(next_bench_index(&[6], occupied(&[6, 7, 8, 9])), 10);
}

#[test]
fn unsorted_input_is_fine() {
    assert_eq!(next_bench_index(&[9, 6, 7], occupied(&[6, 7, 9])), 10);
}

#[test]
fn saturates_instead_of_overflowing() {
    assert_eq!(next_bench_index(&[u64::MAX], occupied(&[])), u64::MAX);
}
