//! Repository automation ("cargo xtask" pattern — no extra tooling, just a
//! workspace binary that shells out to cargo).
//!
//! ```text
//! cargo xtask ci       # fmt --check, clippy -D warnings, test
//! cargo xtask fmt      # rustfmt the whole tree
//! cargo xtask lint     # clippy -D warnings only
//! ```

use std::env;
use std::process::{Command, ExitCode};

fn cargo() -> Command {
    Command::new(env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned()))
}

/// Runs one gate step, returning `Err(step name)` on failure.
fn step(name: &str, args: &[&str]) -> Result<(), String> {
    println!("xtask: cargo {}", args.join(" "));
    let status = cargo()
        .args(args)
        .status()
        .map_err(|e| format!("{name}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(name.to_owned())
    }
}

fn fmt_check() -> Result<(), String> {
    step("fmt", &["fmt", "--all", "--check"])
}

fn lint() -> Result<(), String> {
    step(
        "clippy",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )
}

fn test() -> Result<(), String> {
    step("test", &["test", "--workspace", "-q"])
}

fn main() -> ExitCode {
    let task = env::args().nth(1).unwrap_or_default();
    let result = match task.as_str() {
        "ci" => fmt_check().and_then(|()| lint()).and_then(|()| test()),
        "fmt" => step("fmt", &["fmt", "--all"]),
        "lint" => lint(),
        "test" => test(),
        _ => {
            eprintln!("usage: cargo xtask <ci|fmt|lint|test>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failed) => {
            eprintln!("xtask: {failed} failed");
            ExitCode::FAILURE
        }
    }
}
