//! Repository automation ("cargo xtask" pattern — no extra tooling, just a
//! workspace binary that shells out to cargo).
//!
//! ```text
//! cargo xtask ci       # fmt --check, lint, analyze, clippy -D warnings, test, check, pardiff, soak, explain, perf --smoke
//! cargo xtask fmt      # rustfmt the whole tree
//! cargo xtask lint     # pcmap-lint determinism/hygiene pass -> results/lint.json
//! cargo xtask analyze  # pcmap-analyze semantic passes -> results/analyze.json
//! cargo xtask clippy   # clippy -D warnings only
//! cargo xtask check    # PCMAP_CHECK=1 release experiment runs (protocol invariants)
//! cargo xtask pardiff  # serial vs parallel JSON byte-diff gate
//! cargo xtask soak     # seeded fault-storm recovery gate -> results/soak.json
//! cargo xtask serve-soak # overload-safe ingestion gate -> results/serve_soak.json
//! cargo xtask explain  # lifecycle conservation gate -> results/explain.json
//! cargo xtask perf     # performance trajectory -> BENCH_<n>.json (--smoke, --alloc)
//! ```

mod perf;

use std::env;
use std::fs;
use std::process::{Command, ExitCode};

fn cargo() -> Command {
    Command::new(env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned()))
}

/// Runs one gate step, returning `Err(step name)` on failure.
fn step(name: &str, args: &[&str]) -> Result<(), String> {
    step_env(name, args, &[])
}

/// Like [`step`], with extra environment variables set for the child.
fn step_env(name: &str, args: &[&str], envs: &[(&str, &str)]) -> Result<(), String> {
    let rendered: Vec<String> = envs.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    println!("xtask: {}cargo {}", rendered.join(""), args.join(" "));
    let status = cargo()
        .args(args)
        .envs(envs.iter().map(|&(k, v)| (k, v)))
        .status()
        .map_err(|e| format!("{name}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(name.to_owned())
    }
}

fn fmt_check() -> Result<(), String> {
    step("fmt", &["fmt", "--all", "--check"])
}

/// The pcmap-lint determinism/hygiene pass (DESIGN.md §10): bans
/// `HashMap`/`HashSet`, wall-clock and OS-entropy sources in sim-facing
/// crates, unchecked `as` narrowing on cycle/address values, and float
/// accumulation in per-cycle stats. Writes `results/lint.json`.
fn lint() -> Result<(), String> {
    step(
        "lint",
        &[
            "run",
            "-q",
            "-p",
            "pcmap-lint",
            "--",
            "--json",
            "results/lint.json",
        ],
    )
}

/// The pcmap-analyze semantic pass (DESIGN.md §15): token rules plus
/// missed-wake horizon soundness, snapshot merge/export completeness,
/// interprocedural nondeterminism taint, `// SAFETY:` coverage, and
/// dead-waiver detection. Writes `results/analyze.json`.
fn analyze() -> Result<(), String> {
    step(
        "analyze",
        &[
            "run",
            "-q",
            "-p",
            "pcmap-lint",
            "--bin",
            "pcmap-analyze",
            "--",
            "--json",
            "results/analyze.json",
        ],
    )
}

fn clippy() -> Result<(), String> {
    step(
        "clippy",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    )
}

fn test() -> Result<(), String> {
    step("test", &["test", "--workspace", "-q"])
}

/// Runs the headline experiments in release mode with the protocol
/// invariant checker forced on (`PCMAP_CHECK=1`, strict): Figures 8–11
/// via `figs_all` plus Tables III and IV at quick scale. Any schedule
/// that breaks a paper invariant (busy-chip command, RoW without a PCC
/// plan, step-2 PCC gap, retire before deferred SECDED, spurious
/// rollback, wrong Status cost) aborts the run.
fn check() -> Result<(), String> {
    for bin in ["figs_all", "tab03_latency_ratio", "tab04_rollback"] {
        step_env(
            &format!("check-{bin}"),
            &[
                "run",
                "--release",
                "-q",
                "-p",
                "pcmap-bench",
                "--bin",
                bin,
                "--",
                "quick",
            ],
            &[("PCMAP_CHECK", "1")],
        )?;
    }
    Ok(())
}

/// Runs the simulator serially and in parallel and byte-compares the
/// exported JSON — the end-to-end determinism gate behind `--jobs N`
/// (DESIGN.md §9). Exercises both parallel modes: the sweep pool
/// (`--all` farms six system runs to workers) and the channel mode (a
/// single run steps its four controllers concurrently). Ends with the
/// execution-engine differential ([`engine_diff`], DESIGN.md §14).
fn pardiff() -> Result<(), String> {
    step(
        "pardiff-build",
        &[
            "build",
            "--release",
            "-p",
            "pcmap-bench",
            "--bin",
            "pcmap_run",
        ],
    )?;
    let dir = env::temp_dir().join("pcmap-pardiff");
    fs::create_dir_all(&dir).map_err(|e| format!("pardiff: mkdir: {e}"))?;
    let pairs: &[(&str, &[&str])] = &[
        ("sweep", &["--all", "--requests", "1500"]),
        (
            "channel",
            &[
                "--workload",
                "canneal",
                "--system",
                "rwow-rde",
                "--requests",
                "1500",
            ],
        ),
    ];
    for (label, base) in pairs {
        let mut outputs = Vec::new();
        for jobs in ["1", "4"] {
            let path = dir.join(format!("{label}-jobs{jobs}.json"));
            let path_str = path.to_string_lossy().into_owned();
            let mut args: Vec<&str> = vec![
                "run",
                "--release",
                "-q",
                "-p",
                "pcmap-bench",
                "--bin",
                "pcmap_run",
                "--",
            ];
            args.extend_from_slice(base);
            args.extend_from_slice(&["--jobs", jobs, "--json", &path_str]);
            step(&format!("pardiff-{label}-jobs{jobs}"), &args)?;
            outputs.push(fs::read(&path).map_err(|e| format!("pardiff: read {path_str}: {e}"))?);
        }
        if outputs[0] != outputs[1] {
            return Err(format!(
                "pardiff: {label}: --jobs 4 JSON differs from --jobs 1 \
                 (artifacts in {})",
                dir.display()
            ));
        }
        println!(
            "xtask: pardiff {label}: --jobs 1 == --jobs 4 ({} bytes)",
            outputs[0].len()
        );
    }
    engine_diff(&dir)
}

/// The engine differential gate (DESIGN.md §14): runs the smoke scenario
/// under the cycle-stepped and discrete-event schedulers and
/// byte-compares the exported JSON. The verdict (plus scenario and byte
/// size) lands in `results/engine_diff.json` for the CI artifact upload.
fn engine_diff(dir: &std::path::Path) -> Result<(), String> {
    use pcmap_obs::Value;
    let scenario: &[&str] = &[
        "--workload",
        "canneal",
        "--system",
        "rwow-rde",
        "--requests",
        "1500",
        "--jobs",
        "4",
    ];
    let mut outputs = Vec::new();
    for engine in ["cycle", "event"] {
        let path = dir.join(format!("engine-{engine}.json"));
        let path_str = path.to_string_lossy().into_owned();
        let mut args: Vec<&str> = vec![
            "run",
            "--release",
            "-q",
            "-p",
            "pcmap-bench",
            "--bin",
            "pcmap_run",
            "--",
        ];
        args.extend_from_slice(scenario);
        args.extend_from_slice(&["--engine", engine, "--json", &path_str]);
        step(&format!("pardiff-engine-{engine}"), &args)?;
        outputs.push(fs::read(&path).map_err(|e| format!("engine-diff: read {path_str}: {e}"))?);
    }
    let identical = outputs[0] == outputs[1];
    let mut report = Value::obj();
    report.set("tool", Value::Str("pcmap-engine-diff".to_owned()));
    report.set(
        "scenario",
        Value::Str("canneal/rwow-rde/1500 requests/jobs 4".to_owned()),
    );
    report.set(
        "engines",
        Value::Arr(vec![
            Value::Str("cycle".to_owned()),
            Value::Str("event".to_owned()),
        ]),
    );
    report.set("bytes", Value::U64(outputs[0].len() as u64));
    report.set("identical", Value::Bool(identical));
    let out = "results/engine_diff.json";
    pcmap_obs::export::write_json(out, &report)
        .map_err(|e| format!("engine-diff: write {out}: {e}"))?;
    if !identical {
        return Err(format!(
            "engine-diff: event JSON differs from cycle JSON (artifacts in {})",
            dir.display()
        ));
    }
    println!(
        "xtask: pardiff engine: cycle == event ({} bytes), wrote {out}",
        outputs[0].len()
    );
    Ok(())
}

/// The fault-storm soak gate (DESIGN.md §11): a seeded storm sweep with
/// the protocol checker strict, asserting zero silent corruptions, zero
/// invariant violations, every injected fault visibly accounted for, and
/// at least one sweep point entering *and* exiting degraded mode. The
/// verdict lands in `results/soak.json`.
fn soak() -> Result<(), String> {
    step_env(
        "soak",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "pcmap-bench",
            "--bin",
            "fault_sweep",
            "--",
            "--requests",
            "3000",
            "--soak",
        ],
        &[("PCMAP_CHECK", "1")],
    )
}

/// The serve-tier soak gate (DESIGN.md §16): ≥1M requests from ≥1k
/// tenants over hundreds of ranks under a seeded fault storm, run at
/// `--jobs 1` and `--jobs 4` and byte-compared, with conservation (every
/// request retired, shed, or failed visibly), the bounded-ingress cap,
/// and a demonstrated degradation ladder all asserted. The verdict lands
/// in `results/serve_soak.json`.
fn serve_soak() -> Result<(), String> {
    step(
        "serve-soak",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "pcmap-bench",
            "--bin",
            "pcmap_serve",
            "--",
            "--soak",
        ],
    )
}

/// The request-lifecycle conservation gate (DESIGN.md §13): traces a
/// small scenario end to end with `pcmap_explain --smoke`, which asserts
/// that every traced request's interval timeline partitions
/// `[arrival, retire)` exactly and that the tracer's totals reconcile
/// with the run's own counters. The explain report (RunReport + causal
/// timelines) lands in `results/explain.json`.
fn explain() -> Result<(), String> {
    step(
        "explain",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "pcmap-bench",
            "--bin",
            "pcmap_explain",
            "--",
            "--smoke",
            "--workload",
            "canneal",
            "--requests",
            "1200",
            "--top",
            "3",
        ],
    )
}

fn main() -> ExitCode {
    let task = env::args().nth(1).unwrap_or_default();
    let rest: Vec<String> = env::args().skip(2).collect();
    let result = match task.as_str() {
        "ci" => fmt_check()
            .and_then(|()| lint())
            .and_then(|()| analyze())
            .and_then(|()| clippy())
            .and_then(|()| test())
            .and_then(|()| check())
            .and_then(|()| pardiff())
            .and_then(|()| soak())
            .and_then(|()| serve_soak())
            .and_then(|()| explain())
            .and_then(|()| perf::perf(true, false)),
        "fmt" => step("fmt", &["fmt", "--all"]),
        "lint" => lint(),
        "analyze" => analyze(),
        "clippy" => clippy(),
        "test" => test(),
        "check" => check(),
        "pardiff" => pardiff(),
        "soak" => soak(),
        "serve-soak" => serve_soak(),
        "explain" => explain(),
        "perf" => perf::perf(
            rest.iter().any(|a| a == "--smoke"),
            rest.iter().any(|a| a == "--alloc"),
        ),
        _ => {
            eprintln!(
                "usage: cargo xtask <ci|fmt|lint|analyze|clippy|test|check|pardiff|soak|serve-soak|explain|perf [--smoke] [--alloc]>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failed) => {
            eprintln!("xtask: {failed} failed");
            ExitCode::FAILURE
        }
    }
}
