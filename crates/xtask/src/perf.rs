//! `cargo xtask perf` — the performance-trajectory harness.
//!
//! Runs the canonical workloads in release mode with `pcmap-prof`
//! enabled (each child writes a JSON profile sidecar), measures wall
//! time, and records sim-cycles/sec, peak RSS, span breakdowns, and
//! occupancy into a schema-versioned `BENCH_<n>.json` at the repo root —
//! one file per PR, so `git log -p 'BENCH_*.json'` is the simulator's
//! performance history. The fresh report is compared against the
//! highest-numbered prior BENCH file of the same mode; regressions over
//! 10% *warn*, they never fail the gate (machine noise must not block a
//! merge).
//!
//! Modes: `--smoke` shrinks every scenario for CI; `--alloc` rebuilds
//! the bench binaries with the counting global allocator
//! (`pcmap-prof/alloc-profile`) so allocation totals land in the JSON.
//! One scenario always runs with `PCMAP_TRACE=1` and leaves a Chrome
//! trace at `results/trace.json`.

use pcmap_obs::Value;
use pcmap_prof::bench::{BenchReport, BenchScenario, REGRESSION_THRESHOLD};
use std::env;
use std::fs;
use std::time::Instant;

/// One canonical workload to measure.
struct Scenario {
    name: &'static str,
    bin: &'static str,
    args: Vec<String>,
    /// Also record a Chrome trace (`results/trace.json`).
    trace: bool,
}

fn owned(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| (*s).to_owned()).collect()
}

/// The canonical scenario set. Smoke mode keeps every scenario (so the
/// trajectory stays comparable across CI runs) but parallelizes the
/// figure sweeps and shortens the request budgets.
fn scenarios(smoke: bool) -> Vec<Scenario> {
    let fig_args = if smoke {
        owned(&["quick", "--jobs", "4"])
    } else {
        owned(&["quick"])
    };
    let sweep_requests = if smoke { "1500" } else { "4000" };
    let soak_requests = if smoke { "800" } else { "3000" };
    vec![
        Scenario {
            name: "fig08-irlp",
            bin: "fig08_irlp",
            args: fig_args.clone(),
            trace: false,
        },
        Scenario {
            name: "fig10-read-latency",
            bin: "fig10_read_latency",
            args: fig_args,
            trace: false,
        },
        Scenario {
            name: "sweep-jobs1",
            bin: "pcmap_run",
            args: owned(&["--all", "--requests", sweep_requests, "--jobs", "1"]),
            trace: false,
        },
        Scenario {
            name: "sweep-jobs4",
            bin: "pcmap_run",
            args: owned(&["--all", "--requests", sweep_requests, "--jobs", "4"]),
            trace: false,
        },
        Scenario {
            name: "fault-soak",
            bin: "fault_sweep",
            args: owned(&["--requests", soak_requests]),
            trace: false,
        },
        Scenario {
            name: "traced-run",
            bin: "pcmap_run",
            args: owned(&[
                "--workload",
                "canneal",
                "--system",
                "rwow-rde",
                "--requests",
                "1500",
                "--jobs",
                "4",
            ]),
            trace: true,
        },
    ]
}

/// `BENCH_<n>.json` files already at the repo root, as (index, path).
fn existing_bench_files() -> Vec<(u64, String)> {
    let mut out = Vec::new();
    if let Ok(rd) = fs::read_dir(".") {
        for entry in rd.flatten() {
            let file = entry.file_name().to_string_lossy().into_owned();
            if let Some(idx) = file
                .strip_prefix("BENCH_")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                out.push((idx, file));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Runs one scenario and turns its sidecar profile into a
/// [`BenchScenario`]. A missing or unreadable sidecar degrades to a
/// `Null` profile rather than failing the run.
fn run_scenario(s: &Scenario, sidecar: &str) -> Result<BenchScenario, String> {
    let mut args: Vec<&str> = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "pcmap-bench",
        "--bin",
        s.bin,
        "--",
    ];
    args.extend(s.args.iter().map(String::as_str));
    let mut envs: Vec<(&str, &str)> = vec![("PCMAP_PROF_JSON", sidecar)];
    if s.trace {
        envs.push(("PCMAP_TRACE", "1"));
        envs.push(("PCMAP_TRACE_OUT", "results/trace.json"));
    }
    let begun = Instant::now();
    crate::step_env(&format!("perf-{}", s.name), &args, &envs)?;
    let wall_ms = u64::try_from(begun.elapsed().as_millis()).unwrap_or(u64::MAX);

    let profile = fs::read_to_string(sidecar)
        .ok()
        .and_then(|text| pcmap_obs::json::parse(&text).ok())
        .unwrap_or(Value::Null);
    if profile == Value::Null {
        println!("xtask: perf WARNING: {}: no profile sidecar", s.name);
    }
    let sim_cycles = profile
        .get("sim")
        .and_then(|v| v.get("sim_cycles"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let peak_rss_kb = profile.get("peak_rss_kb").and_then(Value::as_u64);
    let wall_s = (wall_ms.max(1) as f64) / 1000.0;
    Ok(BenchScenario {
        name: s.name.to_owned(),
        wall_ms,
        sim_cycles,
        sim_cycles_per_sec: (sim_cycles as f64) / wall_s,
        peak_rss_kb,
        profile,
    })
}

/// Prints the scenario's hottest spans (by total time) as a one-glance
/// breakdown under the scenario line.
fn print_span_breakdown(sc: &BenchScenario) {
    let Some(Value::Arr(spans)) = sc.profile.get("spans") else {
        return;
    };
    let mut rows: Vec<(u64, u64, String)> = spans
        .iter()
        .filter_map(|sp| {
            let total = sp.get("total_ns").and_then(Value::as_u64)?;
            let calls = sp.get("calls").and_then(Value::as_u64)?;
            let span_name = match sp.get("name")? {
                Value::Str(n) => n.clone(),
                _ => return None,
            };
            (total > 0).then_some((total, calls, span_name))
        })
        .collect();
    rows.sort_unstable_by(|a, b| b.cmp(a));
    for (total, calls, span_name) in rows.iter().take(5) {
        println!(
            "xtask:     {span_name:<18} {:>9.1} ms  {calls:>10} calls",
            (*total as f64) / 1e6
        );
    }
}

/// The `cargo xtask perf` entry point.
pub fn perf(smoke: bool, alloc: bool) -> Result<(), String> {
    // 1. Build every scenario binary up front so wall-clock measurements
    // below do not pay compile time.
    let mut build: Vec<&str> = vec![
        "build",
        "--release",
        "-p",
        "pcmap-bench",
        "--bin",
        "pcmap_run",
        "--bin",
        "fig08_irlp",
        "--bin",
        "fig10_read_latency",
        "--bin",
        "fault_sweep",
    ];
    if alloc {
        build.extend_from_slice(&["--features", "alloc-profile"]);
    }
    crate::step("perf-build", &build)?;

    // 2. Run the scenarios, each with a private profile sidecar.
    let dir = env::temp_dir().join("pcmap-perf");
    fs::create_dir_all(&dir).map_err(|e| format!("perf: mkdir: {e}"))?;
    let mode = if smoke { "smoke" } else { "full" };
    let mut measured = Vec::new();
    for s in scenarios(smoke) {
        let sidecar = dir.join(format!("{}.json", s.name));
        let sc = run_scenario(&s, &sidecar.to_string_lossy())?;
        println!(
            "xtask: perf {}: {} ms wall, {} sim cycles, {:.0} cycles/sec{}",
            sc.name,
            sc.wall_ms,
            sc.sim_cycles,
            sc.sim_cycles_per_sec,
            sc.peak_rss_kb
                .map(|kb| format!(", {kb} kB peak RSS"))
                .unwrap_or_default(),
        );
        print_span_breakdown(&sc);
        measured.push(sc);
    }

    // 3. Write BENCH_<n>.json and compare against the prior trajectory
    // point. Regressions warn — they never fail the gate.
    let prior_files = existing_bench_files();
    let prior_indices: Vec<u64> = prior_files.iter().map(|&(idx, _)| idx).collect();
    // Gap-tolerant and overwrite-proof: beyond every scanned index AND
    // skipping any index whose file exists anyway (partial scans, files
    // the prefix parse missed).
    let bench_index = pcmap_prof::bench::next_bench_index(&prior_indices, |n| {
        std::path::Path::new(&format!("BENCH_{n}.json")).exists()
    });
    let report = BenchReport {
        bench_index,
        mode: mode.to_owned(),
        scenarios: measured,
    };
    for (_, file) in prior_files.iter().rev() {
        let Some(prior) = fs::read_to_string(file)
            .ok()
            .and_then(|text| pcmap_obs::json::parse(&text).ok())
            .as_ref()
            .and_then(BenchReport::from_value)
        else {
            println!("xtask: perf WARNING: cannot parse {file}, skipping comparison");
            continue;
        };
        if prior.mode != report.mode {
            continue;
        }
        let regs = report.regressions_vs(&prior);
        if regs.is_empty() {
            println!(
                "xtask: perf: no regression over {:.0}% vs {file}",
                REGRESSION_THRESHOLD * 100.0
            );
        }
        for (scenario, old_rate, new_rate) in regs {
            println!(
                "xtask: perf WARNING: {scenario} regressed vs {file}: \
                 {old_rate:.0} -> {new_rate:.0} sim cycles/sec"
            );
        }
        break;
    }
    let out = format!("BENCH_{bench_index}.json");
    pcmap_obs::export::write_json(&out, &report.to_value())
        .map_err(|e| format!("perf: write {out}: {e}"))?;
    println!("xtask: perf: wrote {out} ({mode} mode)");

    // 4. Compact trajectory: one row per BENCH_*.json (including the one
    // just written) with only schema version, mode, and per-scenario
    // throughput — the plottable history without the full profiles.
    let history: Vec<BenchReport> = existing_bench_files()
        .into_iter()
        .filter_map(|(_, file)| {
            let parsed = fs::read_to_string(&file)
                .ok()
                .and_then(|text| pcmap_obs::json::parse(&text).ok())?;
            BenchReport::from_value(&parsed)
        })
        .collect();
    let hist_path = "results/bench_history.json";
    pcmap_obs::export::write_json(hist_path, &pcmap_prof::bench::history_value(&history))
        .map_err(|e| format!("perf: write {hist_path}: {e}"))?;
    println!(
        "xtask: perf: wrote {hist_path} ({} trajectory rows)",
        history.len()
    );
    Ok(())
}
