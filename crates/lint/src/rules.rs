//! Rule catalog and the per-file rule engine.
//!
//! Rules operate on the comment-stripped, literal-blanked line views
//! produced by [`crate::lexer::strip`], so neither doc comments nor
//! string literals can trigger (or suppress) anything by accident.

use crate::lexer::{self, LineView};

/// Every lint rule pcmap-lint knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::collections::HashMap`/`HashSet`: iteration order is
    /// randomized per process, which breaks the byte-identical
    /// serial-vs-parallel contract (DESIGN.md §9).
    HashCollections,
    /// `Instant::now` / `SystemTime` / `thread_rng` in sim-facing
    /// crates: wall-clock or ambient randomness makes runs
    /// irreproducible.
    WallClock,
    /// Unchecked `as` narrowing on cycle/address-typed expressions:
    /// silently truncates once a simulation runs long enough.
    AsNarrowing,
    /// `f32`/`f64` accumulation in per-cycle stats paths: float sums
    /// are order-sensitive, so parallel merge order would leak into
    /// results.
    FloatAccumulation,
    /// `now += 1` / `now = Cycle(now.0 + 1)` style manual advancement of
    /// a simulated clock. Time must move via the scheduler's horizon
    /// jumps (`next_tick`); ad-hoc increments outside the two engine
    /// loops silently desynchronize the event heap (DESIGN.md §14).
    ManualTimeAdvance,
    /// A `pcmap-lint:` directive that is malformed, names an unknown
    /// rule, or lacks a non-empty `reason = "..."`.
    BadSuppression,
    /// Semantic pass (pcmap-analyze): a field mutated *and* read on the
    /// `step()`/`schedule()`/`resolve()` paths of a type exposing a
    /// `next_tick()` horizon, yet absent from the horizon computation —
    /// a readiness change through it can miss its wake and silently
    /// diverge `Engine::Event` from `Engine::Cycle` (DESIGN.md §14).
    MissedWake,
    /// Semantic pass (pcmap-analyze): a field of a mergeable snapshot
    /// struct that `merge()` or `to_json()` drops — data silently lost
    /// at `--jobs > 1`, breaking the DESIGN.md §9 determinism contract.
    MergeCompleteness,
    /// Semantic pass (pcmap-analyze): a sim-facing function that reads a
    /// wall-clock/env/OS-entropy source, or launders one through a
    /// same-crate helper the token-level `wall-clock` ban cannot see.
    NondetTaint,
    /// Semantic pass (pcmap-analyze): an `unsafe` block, fn, or impl
    /// without a `// SAFETY:` comment documenting the invariant that
    /// makes it sound.
    UndocumentedUnsafe,
    /// Semantic pass (pcmap-analyze): an `allow(...)` directive that no
    /// longer suppresses any diagnostic — stale waivers mask future
    /// regressions.
    DeadAllow,
}

impl Rule {
    pub const ALL: [Rule; 11] = [
        Rule::HashCollections,
        Rule::WallClock,
        Rule::AsNarrowing,
        Rule::FloatAccumulation,
        Rule::ManualTimeAdvance,
        Rule::BadSuppression,
        Rule::MissedWake,
        Rule::MergeCompleteness,
        Rule::NondetTaint,
        Rule::UndocumentedUnsafe,
        Rule::DeadAllow,
    ];

    /// Kebab-case name used in diagnostics and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AsNarrowing => "as-narrowing",
            Rule::FloatAccumulation => "float-accumulation",
            Rule::ManualTimeAdvance => "manual-time-advance",
            Rule::BadSuppression => "bad-suppression",
            Rule::MissedWake => "missed-wake",
            Rule::MergeCompleteness => "merge-completeness",
            Rule::NondetTaint => "nondet-taint",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::DeadAllow => "dead-allow",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// How aggressively a crate is linted, decided from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateScope {
    /// Simulation-facing code: all rules. Determinism here is
    /// load-bearing for `par_equiv` and the golden anchors.
    SimFacing,
    /// The profiling layer (`prof`) and the perf harness (`xtask`):
    /// everything except the wall-clock ban. These are the only crates
    /// that may time the host — that is their whole job — but they must
    /// still keep deterministic ordering and numeric hygiene, because
    /// their output lands in committed JSON artifacts.
    Profiling,
    /// Repo tooling (bench driver, the linter itself): only the
    /// ordering and suppression rules — tooling may not feed unordered
    /// maps into reports. Wall-clock reads are banned here too: host
    /// timing belongs in the [`CrateScope::Profiling`] crates.
    Tooling,
    /// Vendored dependency shims (`criterion`, `proptest`): exempt.
    /// criterion *must* read the wall clock to bench; proptest routes
    /// its RNG through an explicit per-test seed already.
    Vendored,
}

impl CrateScope {
    pub fn rules(self) -> &'static [Rule] {
        match self {
            CrateScope::SimFacing => &[
                Rule::HashCollections,
                Rule::WallClock,
                Rule::AsNarrowing,
                Rule::FloatAccumulation,
                Rule::ManualTimeAdvance,
                Rule::BadSuppression,
            ],
            CrateScope::Profiling => &[
                Rule::HashCollections,
                Rule::AsNarrowing,
                Rule::FloatAccumulation,
                Rule::BadSuppression,
            ],
            CrateScope::Tooling => &[Rule::HashCollections, Rule::WallClock, Rule::BadSuppression],
            CrateScope::Vendored => &[],
        }
    }

    /// The pcmap-analyze semantic passes that apply to this scope.
    ///
    /// The horizon, merge, and taint passes guard simulation semantics,
    /// so they run only on sim-facing crates; the `// SAFETY:` and
    /// dead-waiver hygiene passes run everywhere except the vendored
    /// shims. [`Rule::DeadAllow`] is evaluated workspace-side (it needs
    /// every other rule's suppression usage), but listing it here keeps
    /// the scope table honest.
    pub fn passes(self) -> &'static [Rule] {
        match self {
            CrateScope::SimFacing => &[
                Rule::MissedWake,
                Rule::MergeCompleteness,
                Rule::NondetTaint,
                Rule::UndocumentedUnsafe,
                Rule::DeadAllow,
            ],
            CrateScope::Profiling | CrateScope::Tooling => {
                &[Rule::UndocumentedUnsafe, Rule::DeadAllow]
            }
            CrateScope::Vendored => &[],
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CrateScope::SimFacing => "sim-facing",
            CrateScope::Profiling => "profiling",
            CrateScope::Tooling => "tooling",
            CrateScope::Vendored => "vendored",
        }
    }
}

/// One finding, pointing at a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub message: String,
    /// The offending source line, trimmed, for human output.
    pub snippet: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    | {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message,
            self.snippet
        )
    }
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "thread_rng"];
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
/// Simulated-clock identifiers guarded by the manual-advance rule. Only
/// the *last* segment of the assigned chain is matched, so duration
/// accumulators (`stats.busy_cycles += dt`) stay clean.
const CLOCK_NAMES: [&str; 4] = ["now", "cpu_now", "current_cycle", "clock"];
/// Identifier fragments that mark a value as cycle- or address-typed.
const TIME_ADDR_MARKERS: [&str; 16] = [
    "cycle", "now", "done", "arrival", "wake", "deadline", "latency", "duration", "addr", "row",
    "col", "line", "bank", "start", "end", "tick",
];

/// Runs the token-level content rules over one already-stripped file,
/// *without* applying suppressions — the caller filters the result
/// through [`crate::suppress::DirectiveSet::apply`] so directive usage
/// can be tracked for dead-waiver detection.
pub fn content_diags(
    path: &str,
    raw: &str,
    lines: &[LineView],
    scope: CrateScope,
) -> Vec<Diagnostic> {
    let rules = scope.rules();
    if rules.is_empty() {
        return Vec::new();
    }
    let raw_lines: Vec<&str> = raw.lines().collect();
    let raw_at = |i: usize| raw_lines.get(i).copied().unwrap_or("");
    let mut diags: Vec<Diagnostic> = Vec::new();

    for (i, lv) in lines.iter().enumerate() {
        let code = lv.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        if rules.contains(&Rule::HashCollections) {
            for ty in HASH_TYPES {
                if lexer::find_ident(code, ty).is_some() {
                    let ordered = if ty == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    };
                    diags.push(Diagnostic {
                        rule: Rule::HashCollections,
                        path: path.to_owned(),
                        line: i + 1,
                        message: format!(
                            "`{ty}` has randomized iteration order; use `{ordered}` or an \
                             indexed structure from pcmap-par (DESIGN.md §9 determinism \
                             contract)"
                        ),
                        snippet: raw_at(i).trim().to_owned(),
                    });
                }
            }
        }
        if rules.contains(&Rule::WallClock) {
            for ident in CLOCK_IDENTS {
                if lexer::find_ident(code, ident).is_some() {
                    diags.push(Diagnostic {
                        rule: Rule::WallClock,
                        path: path.to_owned(),
                        line: i + 1,
                        message: format!(
                            "`{ident}` in a sim-facing crate: simulated time must come from \
                             `types::Cycle`, randomness from an explicit seed"
                        ),
                        snippet: raw_at(i).trim().to_owned(),
                    });
                }
            }
        }
        if rules.contains(&Rule::AsNarrowing) {
            if let Some(chain) = narrowing_cast_source(code) {
                diags.push(Diagnostic {
                    rule: Rule::AsNarrowing,
                    path: path.to_owned(),
                    line: i + 1,
                    message: format!(
                        "`{chain} as <narrow int>` on a cycle/address-typed value truncates \
                         silently; use `try_into()` or widen the target type"
                    ),
                    snippet: raw_at(i).trim().to_owned(),
                });
            }
        }
        if rules.contains(&Rule::ManualTimeAdvance) {
            if let Some(chain) = manual_time_advance(code) {
                diags.push(Diagnostic {
                    rule: Rule::ManualTimeAdvance,
                    path: path.to_owned(),
                    line: i + 1,
                    message: format!(
                        "`{chain}` is advanced by hand; simulated time must move via the \
                         scheduler's horizon jumps (`next_tick` / `next_wake`), not ad-hoc \
                         increments (DESIGN.md §14 event-engine contract)"
                    ),
                    snippet: raw_at(i).trim().to_owned(),
                });
            }
        }
        if rules.contains(&Rule::FloatAccumulation) && float_accumulation(code) {
            diags.push(Diagnostic {
                rule: Rule::FloatAccumulation,
                path: path.to_owned(),
                line: i + 1,
                message: "floating-point `+=` accumulation is order-sensitive; keep \
                          per-cycle stats in integer counters and divide at report time"
                    .to_owned(),
                snippet: raw_at(i).trim().to_owned(),
            });
        }
    }
    diags
}

/// If `code` contains `<ident-chain> as <narrow-int>` where the chain
/// names a cycle/address-flavoured value, returns the chain.
///
/// Parenthesised expressions (`(a + b) as u8`) are skipped: the cast
/// source is no longer a single typed value, and the existing codebase
/// uses that form for already-range-checked field packing.
fn narrowing_cast_source(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(" as ") {
        let at = from + pos;
        from = at + 4;
        // Target type directly after ` as `.
        let after = &code[at + 4..];
        let ty: String = after
            .chars()
            .take_while(|&c| lexer::is_ident_char(c))
            .collect();
        if !NARROW_TARGETS.contains(&ty.as_str()) {
            continue;
        }
        // Walk the identifier chain (idents joined by `.` / `::`)
        // backwards from the cast.
        let mut j = at;
        while j > 0 {
            let c = bytes[j - 1] as char;
            if lexer::is_ident_char(c) || c == '.' || c == ':' {
                j -= 1;
            } else {
                break;
            }
        }
        let chain = &code[j..at];
        if chain.is_empty() || (j > 0 && bytes[j - 1] as char == ')') {
            continue;
        }
        let lower = chain.to_ascii_lowercase();
        if TIME_ADDR_MARKERS.iter().any(|m| lower.contains(m)) {
            return Some(chain.to_owned());
        }
    }
    None
}

/// Walks an identifier chain (idents joined by `.` / `::`) backwards
/// from byte offset `at` (skipping trailing whitespace first). Returns
/// the chain and the offset where it starts.
fn chain_before(code: &str, at: usize) -> (&str, usize) {
    let bytes = code.as_bytes();
    let mut j = at;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 {
        let c = bytes[j - 1] as char;
        if lexer::is_ident_char(c) || c == '.' || c == ':' {
            j -= 1;
        } else {
            break;
        }
    }
    (&code[j..end], j)
}

/// If `code` advances a simulated clock by hand, returns the clock's
/// identifier chain. Two forms are recognized:
///
/// 1. `<clock-chain> += ...` — compound increment of a clock variable.
/// 2. `<clock> = Cycle(<clock>.0 + ...)` — re-binding a clock from its
///    own counter plus an offset.
///
/// Jumping a clock to a *computed horizon* (`now = wake`, `now = next`,
/// `self.now = self.now.max(t)`) is the sanctioned form and stays clean.
fn manual_time_advance(code: &str) -> Option<String> {
    let is_clock =
        |chain: &str| CLOCK_NAMES.contains(&chain.rsplit(['.', ':']).next().unwrap_or_default());
    // Form 1: `<clock-chain> += ...`.
    let mut from = 0usize;
    while let Some(pos) = code[from..].find("+=") {
        let at = from + pos;
        from = at + 2;
        let (chain, _) = chain_before(code, at);
        if !chain.is_empty() && is_clock(chain) {
            return Some(chain.to_owned());
        }
    }
    // Form 2: `<clock> = Cycle(<clock>.0 + ...)`.
    let mut from = 0usize;
    while let Some(pos) = code[from..].find("= Cycle(") {
        let at = from + pos;
        from = at + "= Cycle(".len();
        // Reject compound/comparison operators (`+=`, `==`, `<=`, ...):
        // only a plain assignment re-binds the clock.
        if at > 0 && !(code.as_bytes()[at - 1] as char).is_whitespace() {
            continue;
        }
        let (chain, _) = chain_before(code, at);
        if chain.is_empty() || !is_clock(chain) {
            continue;
        }
        let last = chain.rsplit(['.', ':']).next().unwrap_or_default();
        let rhs = &code[at + "= Cycle(".len()..];
        if rhs.contains(&format!("{last}.0")) && rhs.contains('+') {
            return Some(chain.to_owned());
        }
    }
    None
}

/// `+=` whose right-hand side shows float evidence: an `f32`/`f64`
/// token, a float literal (`1.0`), or a cast to float. Only the RHS is
/// scanned so `counts[w(&[1.0])] += 1` (integer bump, float index
/// math) stays clean.
fn float_accumulation(code: &str) -> bool {
    let Some(pos) = code.find("+=") else {
        return false;
    };
    let rhs = &code[pos + 2..];
    if lexer::find_ident(rhs, "f32").is_some() || lexer::find_ident(rhs, "f64").is_some() {
        return true;
    }
    // Digit '.' digit — a float literal (range patterns use `..`).
    let b = rhs.as_bytes();
    b.windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_sim(src: &str) -> Vec<Diagnostic> {
        crate::lint_source("test.rs", src, CrateScope::SimFacing)
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn narrowing_requires_marker_and_narrow_target() {
        assert!(narrowing_cast_source("let x = done_cycle as u32;").is_some());
        assert!(narrowing_cast_source("let x = addr as u16;").is_some());
        // Wide target is fine.
        assert!(narrowing_cast_source("let x = done_cycle as u64;").is_none());
        // No time/addr marker in the chain.
        assert!(narrowing_cast_source("let x = flags as u8;").is_none());
        // Parenthesised sources are skipped.
        assert!(narrowing_cast_source("let x = (row + 1) as u16;").is_none());
    }

    #[test]
    fn float_accumulation_needs_both_signals() {
        assert!(float_accumulation("self.mean += x as f64;"));
        assert!(float_accumulation("total += 0.5;"));
        assert!(!float_accumulation("self.count += 1;"));
        assert!(!float_accumulation("let y: f64 = 1.0;"));
    }

    #[test]
    fn manual_time_advance_catches_both_forms() {
        // Compound increment of a clock, bare or through a field chain.
        assert_eq!(manual_time_advance("now += 1;").as_deref(), Some("now"));
        assert_eq!(
            manual_time_advance("self.now += step;").as_deref(),
            Some("self.now")
        );
        assert_eq!(
            manual_time_advance("current_cycle += 1;").as_deref(),
            Some("current_cycle")
        );
        // Re-binding a clock from its own counter plus an offset.
        assert_eq!(
            manual_time_advance("now = Cycle(now.0 + 1);").as_deref(),
            Some("now")
        );
        assert_eq!(
            manual_time_advance("self.now = Cycle(self.now.0 + step);").as_deref(),
            Some("self.now")
        );
    }

    #[test]
    fn manual_time_advance_leaves_sanctioned_forms_clean() {
        // Horizon jumps are the sanctioned way for time to move.
        assert!(manual_time_advance("now = wake;").is_none());
        assert!(manual_time_advance("now = next;").is_none());
        assert!(manual_time_advance("self.now = self.now.max(cpu_now);").is_none());
        // Initialization, and rebinding from a *different* value.
        assert!(manual_time_advance("let mut now = Cycle(0);").is_none());
        assert!(manual_time_advance("now = Cycle(next.0 + 1);").is_none());
        // Duration accumulators are stats, not clocks.
        assert!(manual_time_advance("stats.busy_cycles += dt;").is_none());
        assert!(manual_time_advance("self.stats.retired += step;").is_none());
        // Comparison, not assignment.
        assert!(manual_time_advance("if t == Cycle(now.0 + 1) {").is_none());
        // Deadlines derived from the clock are values, not the clock.
        assert!(manual_time_advance("let deadline = Cycle(now.0 + budget);").is_none());
    }

    #[test]
    fn suppression_with_reason_silences_one_line() {
        let src = "// pcmap-lint: allow(hash-collections, reason = \"scratch map in test\")\n\
                   let m = HashMap::new();\n\
                   let n = HashMap::new();\n";
        let d = lint_sim(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn suppression_without_reason_is_flagged() {
        let src = "let m = HashMap::new(); // pcmap-lint: allow(hash-collections)\n";
        let d = lint_sim(src);
        assert!(d.iter().any(|x| x.rule == Rule::BadSuppression), "{d:?}");
    }

    #[test]
    fn allow_file_covers_whole_file() {
        let src = "// pcmap-lint: allow-file(wall-clock, reason = \"host-side shim\")\n\
                   use std::time::Instant;\n\
                   let t = Instant::now();\n";
        assert!(lint_sim(src).is_empty());
    }
}
