//! A shallow Rust AST: just deep enough for the pcmap-analyze semantic
//! passes, nothing more.
//!
//! The tokenizer runs over the comment-stripped, literal-blanked line
//! views from [`crate::lexer::strip`], so neither comments nor string
//! contents can produce tokens. The parser then recognizes the item
//! shapes the passes need — `struct` definitions with named fields,
//! `impl` blocks (inherent and trait), and `fn` bodies — and reduces
//! every body to a flat stream of *facts*: field-access chains
//! (`self.core.wake`, read or write) and call sites (method calls with
//! their receiver chain, free calls with their `::` path).
//!
//! Everything it does not understand (expressions, generics, traits,
//! macros-by-example definitions) is skipped structurally via brace
//! matching; macro *invocations* in bodies are scanned linearly so the
//! accesses inside `assert_eq!(self.width, other.width)` still count.
//! Items under `#[cfg(test)]` / `#[test]` are parsed but marked
//! test-only, and the semantic passes skip them.

use crate::lexer::LineView;

/// One lexical token, tagged with its 0-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Num(String),
    Op(&'static str),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// Two-character operators recognized by the tokenizer. `<<`/`>>` are
/// deliberately absent: splitting shifts into two tokens keeps nested
/// generics (`Vec<Vec<u8>>`) parseable, and no pass needs shift ops.
const OPS2: [&str; 18] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "&&",
    "||", "..",
];

/// Assignment operators: a chain followed by one of these is a write.
const ASSIGN_OPS: [&str; 9] = ["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|="];

/// Tokenizes stripped line views. String/char contents are already
/// blanked, so stray `"` / `'` delimiters tokenize as punctuation and
/// are ignored by the parser.
pub fn tokenize(lines: &[LineView]) -> Vec<Token> {
    let mut out = Vec::new();
    for (ln, lv) in lines.iter().enumerate() {
        let s: Vec<char> = lv.code.chars().collect();
        let mut i = 0usize;
        while i < s.len() {
            let c = s[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < s.len() && (s[i].is_alphanumeric() || s[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(s[start..i].iter().collect()),
                    line: ln,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < s.len() && (s[i].is_alphanumeric() || s[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Num(s[start..i].iter().collect()),
                    line: ln,
                });
                continue;
            }
            // `..=` is the only three-char operator we keep.
            if i + 2 < s.len() && c == '.' && s[i + 1] == '.' && s[i + 2] == '=' {
                out.push(Token {
                    tok: Tok::Op("..="),
                    line: ln,
                });
                i += 3;
                continue;
            }
            if i + 1 < s.len() {
                let pair: String = [c, s[i + 1]].iter().collect();
                if let Some(op) = OPS2.iter().find(|o| **o == pair) {
                    out.push(Token {
                        tok: Tok::Op(op),
                        line: ln,
                    });
                    i += 2;
                    continue;
                }
            }
            const SINGLES: &str = "(){}[]<>,;:.#&|!?*+-/%=@'\"^$~";
            if let Some(pos) = SINGLES.find(c) {
                // Map to 'static str slices of SINGLES.
                out.push(Token {
                    tok: Tok::Op(&SINGLES[pos..pos + c.len_utf8()]),
                    line: ln,
                });
            }
            i += 1;
        }
    }
    out
}

/// A named struct field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    /// Every identifier appearing in the field's type, in order
    /// (`Option<FaultPlan>` → `["Option", "FaultPlan"]`). Type
    /// resolution tries each against the struct table.
    pub ty_idents: Vec<String>,
    /// 0-based declaration line.
    pub line: usize,
}

/// A `struct` with named fields (tuple and unit structs parse to an
/// empty field list).
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
    pub line: usize,
    pub test_only: bool,
}

/// One field-access chain in a body: `base.seg1.seg2` with a read/write
/// classification. Tuple-index segments are kept as their digits.
#[derive(Debug, Clone)]
pub struct Access {
    pub base: String,
    pub path: Vec<String>,
    pub line: usize,
    pub write: bool,
}

/// One call site in a body.
#[derive(Debug, Clone)]
pub struct Call {
    /// `Some((base, path))` for method calls (`base.path.name(..)`),
    /// `None` for free/path calls.
    pub recv: Option<(String, Vec<String>)>,
    /// `::`-separated path for free calls (`["std","env","var"]`,
    /// `["Engine","from_env"]`); single-element for bare calls. For
    /// method calls, just the method name.
    pub path: Vec<String>,
    pub line: usize,
}

impl Call {
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or_default()
    }
}

/// The reduced body of one function.
#[derive(Debug, Clone, Default)]
pub struct FnBody {
    pub accesses: Vec<Access>,
    pub calls: Vec<Call>,
    /// 0-based inclusive line range the body spans (for text-level
    /// source-pattern scans).
    pub lines: (usize, usize),
}

/// A function: free, or associated via [`ImplDef`].
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: usize,
    pub is_unsafe: bool,
    pub takes_self: bool,
    pub takes_mut_self: bool,
    /// Non-self parameters as `(name, type idents)`.
    pub params: Vec<(String, Vec<String>)>,
    pub body: Option<FnBody>,
    pub test_only: bool,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Head identifier of the implementing type (generics stripped).
    pub ty: String,
    /// Head identifier of the trait, for trait impls.
    pub trait_name: Option<String>,
    pub fns: Vec<FnDef>,
    pub line: usize,
    pub is_unsafe: bool,
    pub test_only: bool,
}

/// A top-level (or inline-module) item the analyzer cares about.
#[derive(Debug, Clone)]
pub enum Item {
    Struct(StructDef),
    Impl(ImplDef),
    Fn(FnDef),
}

/// Parses one stripped file into items. Never fails: unrecognized
/// constructs are skipped.
pub fn parse(lines: &[LineView]) -> Vec<Item> {
    let tokens = tokenize(lines);
    let mut p = Parser {
        t: &tokens,
        i: 0,
        items: Vec::new(),
    };
    p.items(usize::MAX, false);
    p.items
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
    items: Vec<Item>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.t.get(self.i).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.t.get(self.i).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn is_op(&self, op: &str) -> bool {
        matches!(self.peek(), Some(Tok::Op(o)) if *o == op)
    }

    fn is_ident(&self, id: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == id)
    }

    fn take_ident(&mut self) -> Option<String> {
        if let Some(Tok::Ident(s)) = self.peek() {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    /// Skips a balanced `open`…`close` group, assuming the cursor sits
    /// on `open`. Returns the token range skipped (exclusive of the
    /// delimiters).
    fn skip_group(&mut self, open: &str, close: &str) -> (usize, usize) {
        debug_assert!(self.is_op(open));
        self.bump();
        let start = self.i;
        let mut depth = 1usize;
        while self.i < self.t.len() && depth > 0 {
            if self.is_op(open) {
                depth += 1;
            } else if self.is_op(close) {
                depth -= 1;
            }
            self.bump();
        }
        (start, self.i.saturating_sub(1))
    }

    /// Skips `<...>` generics with angle-depth counting (shifts are
    /// split into single `<`/`>` tokens by the tokenizer).
    fn skip_generics(&mut self) {
        if !self.is_op("<") {
            return;
        }
        let mut depth = 0usize;
        while self.i < self.t.len() {
            if self.is_op("<") {
                depth += 1;
            } else if self.is_op(">") {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if self.is_op("(") {
                self.skip_group("(", ")");
                continue;
            } else if self.is_op(";") || self.is_op("{") {
                return; // malformed; bail without consuming
            }
            self.bump();
        }
    }

    /// Consumes leading attributes; returns `true` if any marks the item
    /// test-only (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`).
    fn consume_attrs(&mut self) -> bool {
        let mut test_only = false;
        while self.is_op("#") {
            self.bump();
            if self.is_op("!") {
                self.bump();
            }
            if self.is_op("[") {
                let (start, end) = self.skip_group("[", "]");
                let toks = &self.t[start..end];
                let has = |w: &str| {
                    toks.iter()
                        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == w))
                };
                if has("test") && (has("cfg") || toks.len() == 1) {
                    test_only = true;
                }
            } else {
                break;
            }
        }
        test_only
    }

    /// Consumes visibility/qualifier idents before an item keyword.
    /// Returns whether `unsafe` was among them.
    fn consume_qualifiers(&mut self) -> bool {
        let mut is_unsafe = false;
        loop {
            if self.is_ident("pub") {
                self.bump();
                if self.is_op("(") {
                    self.skip_group("(", ")");
                }
            } else if self.is_ident("const") || self.is_ident("async") || self.is_ident("default") {
                // `const` here is only consumed when followed by `fn` —
                // a `const NAME: ...` item is handled by the caller.
                if self.is_ident("const")
                    && !matches!(self.t.get(self.i + 1).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "fn")
                {
                    return is_unsafe;
                }
                self.bump();
            } else if self.is_ident("unsafe") {
                is_unsafe = true;
                self.bump();
            } else if self.is_ident("extern") {
                self.bump();
                if self.is_op("\"") {
                    // blanked ABI string: `"` blank `"`
                    self.bump();
                    if self.is_op("\"") {
                        self.bump();
                    }
                }
            } else {
                return is_unsafe;
            }
        }
    }

    /// Skips to the end of a `;`-terminated item, honouring nested
    /// groups (a `{` body also terminates, brace-matched).
    fn skip_semi_item(&mut self) {
        while self.i < self.t.len() {
            if self.is_op(";") {
                self.bump();
                return;
            }
            if self.is_op("{") {
                self.skip_group("{", "}");
                return;
            }
            if self.is_op("(") {
                self.skip_group("(", ")");
                continue;
            }
            if self.is_op("[") {
                self.skip_group("[", "]");
                continue;
            }
            self.bump();
        }
    }

    /// Parses items until `end` (token index) or a closing `}` at this
    /// nesting level. `test_ctx` marks everything test-only.
    fn items(&mut self, end: usize, test_ctx: bool) {
        while self.i < self.t.len() && self.i < end {
            if self.is_op("}") {
                self.bump();
                return;
            }
            let test_only = self.consume_attrs() || test_ctx;
            let is_unsafe = self.consume_qualifiers();
            match self.peek() {
                Some(Tok::Ident(kw)) => match kw.as_str() {
                    "struct" => self.parse_struct(test_only),
                    "impl" => self.parse_impl(is_unsafe, test_only),
                    "fn" => {
                        if let Some(f) = self.parse_fn(is_unsafe, test_only) {
                            self.items.push(Item::Fn(f));
                        }
                    }
                    "mod" => {
                        self.bump();
                        self.take_ident();
                        if self.is_op("{") {
                            // Inline module: recurse (flattened), keeping
                            // the test-only marking for `mod tests`.
                            self.bump();
                            self.items(usize::MAX, test_only);
                        } else {
                            self.skip_semi_item();
                        }
                    }
                    "enum" | "union" | "trait" => {
                        self.bump();
                        self.skip_semi_item();
                    }
                    "use" | "static" | "const" | "type" => {
                        self.bump();
                        self.skip_semi_item();
                    }
                    "macro_rules" => {
                        self.bump();
                        self.skip_semi_item();
                    }
                    _ => self.bump(),
                },
                Some(Tok::Op("{")) => {
                    self.skip_group("{", "}");
                }
                Some(_) => self.bump(),
                None => return,
            }
        }
    }

    fn parse_struct(&mut self, test_only: bool) {
        let line = self.line();
        self.bump(); // struct
        let Some(name) = self.take_ident() else {
            return;
        };
        self.skip_generics();
        // `where` clauses before the body.
        while self.i < self.t.len() && !self.is_op("{") && !self.is_op(";") && !self.is_op("(") {
            if self.is_op("<") {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        let mut fields = Vec::new();
        if self.is_op("(") {
            // Tuple struct: no named fields.
            self.skip_group("(", ")");
            if self.is_op(";") {
                self.bump();
            }
        } else if self.is_op("{") {
            let (start, end) = self.skip_group("{", "}");
            fields = parse_fields(&self.t[start..end]);
        } else if self.is_op(";") {
            self.bump();
        }
        self.items.push(Item::Struct(StructDef {
            name,
            fields,
            line,
            test_only,
        }));
    }

    fn parse_impl(&mut self, is_unsafe: bool, test_only: bool) {
        let line = self.line();
        self.bump(); // impl
        self.skip_generics();
        let first = self.parse_type_path();
        let (ty, trait_name) = if self.is_ident("for") {
            self.bump();
            (self.parse_type_path(), first)
        } else {
            (first, None)
        };
        // Skip `where` clause up to the body.
        while self.i < self.t.len() && !self.is_op("{") {
            if self.is_op("<") {
                self.skip_generics();
            } else if self.is_op("(") {
                self.skip_group("(", ")");
            } else {
                self.bump();
            }
        }
        let Some(ty) = ty else {
            self.skip_semi_item();
            return;
        };
        if !self.is_op("{") {
            return;
        }
        let (start, end) = self.skip_group("{", "}");
        let mut sub = Parser {
            t: &self.t[..end],
            i: start,
            items: Vec::new(),
        };
        let mut fns = Vec::new();
        while sub.i < sub.t.len() {
            let fn_test = sub.consume_attrs() || test_only;
            let fn_unsafe = sub.consume_qualifiers();
            if sub.is_ident("fn") {
                if let Some(f) = sub.parse_fn(fn_unsafe, fn_test) {
                    fns.push(f);
                }
            } else if sub.is_ident("type") || sub.is_ident("const") {
                sub.bump();
                sub.skip_semi_item();
            } else if sub.peek().is_none() {
                break;
            } else {
                sub.bump();
            }
        }
        self.items.push(Item::Impl(ImplDef {
            ty,
            trait_name,
            fns,
            line,
            is_unsafe,
            test_only,
        }));
    }

    /// Parses a type path in an impl header, returning the head
    /// identifier of its last segment (`pcmap_obs::LifecycleTracer` →
    /// `LifecycleTracer`, `Scope<'_, '_>` → `Scope`).
    fn parse_type_path(&mut self) -> Option<String> {
        let mut last = None;
        loop {
            if self.is_op("&") || self.is_op("'") {
                self.bump();
                continue;
            }
            match self.peek() {
                Some(Tok::Ident(s)) if s != "for" && s != "where" => {
                    last = Some(s.clone());
                    self.bump();
                    if self.is_op("<") {
                        self.skip_generics();
                    }
                    if self.is_op("::") {
                        self.bump();
                        continue;
                    }
                    return last;
                }
                _ => return last,
            }
        }
    }

    fn parse_fn(&mut self, is_unsafe: bool, test_only: bool) -> Option<FnDef> {
        let line = self.line();
        self.bump(); // fn
        let name = self.take_ident()?;
        self.skip_generics();
        if !self.is_op("(") {
            return None;
        }
        let (pstart, pend) = self.skip_group("(", ")");
        let (takes_self, takes_mut_self, params) = parse_params(&self.t[pstart..pend]);
        // Return type / where clause up to `{` or `;`.
        while self.i < self.t.len() && !self.is_op("{") && !self.is_op(";") {
            if self.is_op("<") {
                self.skip_generics();
            } else if self.is_op("(") {
                self.skip_group("(", ")");
            } else {
                self.bump();
            }
        }
        let body = if self.is_op("{") {
            let open_line = self.line();
            let (bstart, bend) = self.skip_group("{", "}");
            let toks = &self.t[bstart..bend];
            let close_line = self.t.get(bend).map(|t| t.line).unwrap_or(open_line);
            let mut facts = extract_facts(toks);
            facts.lines = (open_line, close_line);
            Some(facts)
        } else {
            if self.is_op(";") {
                self.bump();
            }
            None
        };
        Some(FnDef {
            name,
            line,
            is_unsafe,
            takes_self,
            takes_mut_self,
            params,
            body,
            test_only,
        })
    }
}

/// Parses the token slice inside a struct body into named fields.
fn parse_fields(toks: &[Token]) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Skip attributes.
        while matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Op("#"))) {
            i += 1;
            if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Op("["))) {
                i = skip_balanced(toks, i, "[", "]");
            }
        }
        if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "pub") {
            i += 1;
            if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Op("("))) {
                i = skip_balanced(toks, i, "(", ")");
            }
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line,
        }) = toks.get(i)
        else {
            i += 1;
            continue;
        };
        let name = name.clone();
        let line = *line;
        i += 1;
        if !matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Op(":"))) {
            continue;
        }
        i += 1;
        // Type tokens until a top-level comma.
        let mut ty_idents = Vec::new();
        let mut depth = 0isize;
        while i < toks.len() {
            match &toks[i].tok {
                Tok::Op("<") | Tok::Op("(") | Tok::Op("[") => depth += 1,
                Tok::Op(">") | Tok::Op(")") | Tok::Op("]") => depth -= 1,
                Tok::Op(",") if depth <= 0 => {
                    i += 1;
                    break;
                }
                Tok::Ident(s) => ty_idents.push(s.clone()),
                _ => {}
            }
            i += 1;
        }
        fields.push(FieldDef {
            name,
            ty_idents,
            line,
        });
    }
    fields
}

/// Parses a parameter-list token slice.
fn parse_params(toks: &[Token]) -> (bool, bool, Vec<(String, Vec<String>)>) {
    let mut takes_self = false;
    let mut takes_mut_self = false;
    let mut params = Vec::new();
    for part in split_top_level(toks, ",") {
        let idents: Vec<&str> = part
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        if idents.first() == Some(&"self")
            || (idents.first() == Some(&"mut") && idents.get(1) == Some(&"self"))
        {
            takes_self = true;
            takes_mut_self = part.iter().any(|t| matches!(&t.tok, Tok::Op("&")))
                && idents.contains(&"mut")
                || (idents.first() == Some(&"mut") && idents.get(1) == Some(&"self"));
            continue;
        }
        // `name: Type` — name is the first ident before `:` (skipping a
        // leading `mut`); type idents follow the colon.
        let colon = part
            .iter()
            .position(|t| matches!(&t.tok, Tok::Op(":")))
            .unwrap_or(part.len());
        let name = part[..colon]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) if s != "mut" => Some(s.clone()),
                _ => None,
            })
            .next_back();
        let ty_idents: Vec<String> = part
            .get(colon..)
            .unwrap_or_default()
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        if let Some(name) = name {
            params.push((name, ty_idents));
        }
    }
    (takes_self, takes_mut_self, params)
}

/// Splits a token slice at top-level occurrences of `sep`.
fn split_top_level<'a>(toks: &'a [Token], sep: &str) -> Vec<&'a [Token]> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Op("<") | Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(">") | Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
            Tok::Op(o) if *o == sep && depth <= 0 => {
                out.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

fn skip_balanced(toks: &[Token], open_at: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Op(o) if *o == open => depth += 1,
            Tok::Op(o) if *o == close => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Method-name fragments that mutate their receiver even when the
/// callee cannot be resolved in the workspace (std collections etc.).
const MUT_METHODS: [&str; 22] = [
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "clear",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "entry",
    "take",
    "replace",
    "drain",
    "extend",
    "append",
    "truncate",
    "get_or_insert_with",
];

/// Whether a method name mutates its receiver per the heuristic: a
/// known mutating std method, or the workspace `_mut` suffix idiom.
pub fn is_mut_method(name: &str) -> bool {
    name.ends_with("_mut") || MUT_METHODS.contains(&name)
}

/// Reduces a body token slice to its access/call facts via one linear
/// scan. Nested expressions need no recursion: every identifier chain
/// is classified in place and arguments are scanned as they stream by.
fn extract_facts(toks: &[Token]) -> FnBody {
    let mut body = FnBody::default();
    let mut i = 0usize;
    while i < toks.len() {
        let Tok::Ident(first) = &toks[i].tok else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        // `&mut chain` marks the chain written (mutable borrow handed out).
        let mut_borrow = i >= 2
            && matches!(&toks[i - 1].tok, Tok::Ident(s) if s == "mut")
            && matches!(&toks[i - 2].tok, Tok::Op("&"));
        // `::`-path (free call / associated item)?
        if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op("::"))) {
            let mut path = vec![first.clone()];
            let mut j = i + 1;
            while matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Op("::"))) {
                match toks.get(j + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(s)) => {
                        path.push(s.clone());
                        j += 2;
                    }
                    Some(Tok::Op("<")) => {
                        // Turbofish: skip the generic args.
                        let mut depth = 0isize;
                        let mut k = j + 1;
                        while k < toks.len() {
                            match &toks[k].tok {
                                Tok::Op("<") => depth += 1,
                                Tok::Op(">") => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        j = k + 1;
                    }
                    _ => break,
                }
            }
            if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Op("("))) {
                body.calls.push(Call {
                    recv: None,
                    path,
                    line,
                });
            }
            i = j;
            continue;
        }
        // Dot chain.
        let mut segs: Vec<String> = Vec::new();
        let mut j = i + 1;
        while matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Op("."))) {
            match toks.get(j + 1).map(|t| &t.tok) {
                Some(Tok::Ident(s)) => {
                    segs.push(s.clone());
                    j += 2;
                }
                Some(Tok::Num(n)) => {
                    segs.push(n.clone());
                    j += 2;
                }
                _ => break,
            }
        }
        let next = toks.get(j).map(|t| &t.tok);
        match next {
            Some(Tok::Op("(")) if !segs.is_empty() => {
                // Method call: receiver = chain minus the method name.
                // Calling *any* method observes the receiver (a read);
                // mutating methods additionally count as a write.
                let method = segs.pop().expect("non-empty");
                body.accesses.push(Access {
                    base: first.clone(),
                    path: segs.clone(),
                    line,
                    write: false,
                });
                if mut_borrow || is_mut_method(&method) {
                    body.accesses.push(Access {
                        base: first.clone(),
                        path: segs.clone(),
                        line,
                        write: true,
                    });
                }
                body.calls.push(Call {
                    recv: Some((first.clone(), segs)),
                    path: vec![method],
                    line,
                });
            }
            Some(Tok::Op("(")) => {
                // Bare call `name(...)`.
                body.calls.push(Call {
                    recv: None,
                    path: vec![first.clone()],
                    line,
                });
            }
            Some(Tok::Op("!")) => {
                // Macro invocation: contents stream through the scanner.
            }
            Some(Tok::Op(op)) if ASSIGN_OPS.contains(op) => {
                body.accesses.push(Access {
                    base: first.clone(),
                    path: segs,
                    line,
                    write: true,
                });
                j += 1; // consume the operator so `=`'s RHS scans fresh
            }
            _ => {
                body.accesses.push(Access {
                    base: first.clone(),
                    path: segs,
                    line,
                    write: mut_borrow,
                });
            }
        }
        i = j.max(i + 1);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse_src(src: &str) -> Vec<Item> {
        parse(&lexer::strip(src))
    }

    fn the_struct(items: &[Item], name: &str) -> StructDef {
        items
            .iter()
            .find_map(|i| match i {
                Item::Struct(s) if s.name == name => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no struct {name}"))
    }

    fn the_impl(items: &[Item], ty: &str) -> ImplDef {
        items
            .iter()
            .find_map(|i| match i {
                Item::Impl(im) if im.ty == ty => Some(im.clone()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no impl {ty}"))
    }

    #[test]
    fn struct_fields_and_types_parse() {
        let items = parse_src(
            "pub struct Core {\n\
                 /// doc\n\
                 pub wake: Option<Cycle>,\n\
                 qs: Vec<RequestQueue>,\n\
                 #[allow(dead_code)]\n\
                 n: u64,\n\
             }\n",
        );
        let s = the_struct(&items, "Core");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["wake", "qs", "n"]);
        assert_eq!(s.fields[0].ty_idents, ["Option", "Cycle"]);
        assert_eq!(s.fields[1].ty_idents, ["Vec", "RequestQueue"]);
        assert_eq!(s.fields[0].line, 2);
    }

    #[test]
    fn impl_blocks_carry_trait_and_fns() {
        let items = parse_src(
            "impl Controller for Baseline {\n\
                 fn next_tick(&self) -> Option<Cycle> { self.core.wake }\n\
             }\n\
             impl Baseline {\n\
                 pub fn new() -> Self { Self { core: Core::new() } }\n\
             }\n",
        );
        let tr = the_impl(&items, "Baseline");
        assert_eq!(tr.trait_name.as_deref(), Some("Controller"));
        assert_eq!(tr.fns[0].name, "next_tick");
        assert!(tr.fns[0].takes_self);
        assert!(!tr.fns[0].takes_mut_self);
    }

    #[test]
    fn body_facts_classify_reads_writes_and_calls() {
        let items = parse_src(
            "impl C {\n\
                 fn step(&mut self, now: Cycle) {\n\
                     self.core.wake = Some(now);\n\
                     self.stats.count += 1;\n\
                     if self.read_q.is_empty() { self.drains.push(1); }\n\
                     helper(&mut self.inflight);\n\
                     let x = self.last_read;\n\
                 }\n\
             }\n",
        );
        let im = the_impl(&items, "C");
        let b = im.fns[0].body.as_ref().expect("body");
        let writes = |path: &[&str]| {
            b.accesses
                .iter()
                .filter(|a| a.base == "self" && a.path == path)
                .map(|a| a.write)
                .collect::<Vec<_>>()
        };
        assert!(writes(&["core", "wake"]).contains(&true));
        assert!(writes(&["stats", "count"]).contains(&true));
        assert_eq!(writes(&["read_q"]), [false], "is_empty only reads");
        assert!(
            writes(&["drains"]).contains(&true),
            "push marks the receiver written"
        );
        assert!(
            writes(&["drains"]).contains(&false),
            "...but calling it still observes it"
        );
        assert!(
            writes(&["inflight"]).contains(&true),
            "&mut borrow marks written"
        );
        assert_eq!(writes(&["last_read"]), [false]);
        assert!(b.calls.iter().any(|c| {
            matches!(&c.recv, Some((base, segs)) if base == "self" && segs == &["read_q"])
                && c.name() == "is_empty"
        }));
    }

    #[test]
    fn path_calls_and_macros_are_seen() {
        let items = parse_src(
            "fn f(other: &S) {\n\
                 let v = std::env::var(\"X\");\n\
                 let e = Engine::from_env();\n\
                 assert_eq!(self_like.width, other.width);\n\
             }\n",
        );
        let Item::Fn(f) = &items[0] else {
            panic!("expected fn")
        };
        let b = f.body.as_ref().expect("body");
        assert!(b.calls.iter().any(|c| c.path == ["std", "env", "var"]));
        assert!(b.calls.iter().any(|c| c.path == ["Engine", "from_env"]));
        assert!(b
            .accesses
            .iter()
            .any(|a| a.base == "other" && a.path == ["width"] && !a.write));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let items = parse_src(
            "#[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { std::env::var(\"X\"); }\n\
             }\n\
             fn live() {}\n",
        );
        let test_fns: Vec<(&str, bool)> = items
            .iter()
            .filter_map(|i| match i {
                Item::Fn(f) => Some((f.name.as_str(), f.test_only)),
                _ => None,
            })
            .collect();
        assert!(test_fns.contains(&("helper", true)));
        assert!(test_fns.contains(&("live", false)));
    }

    #[test]
    fn tuple_and_unit_structs_parse_empty() {
        let items = parse_src("struct A(u32, u64);\nstruct B;\nstruct C<T: Ord>(T);\n");
        assert!(the_struct(&items, "A").fields.is_empty());
        assert!(the_struct(&items, "B").fields.is_empty());
        assert!(the_struct(&items, "C").fields.is_empty());
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail() {
        let items = parse_src(
            "impl<'a, T: Clone> Holder<'a, T> where T: Send {\n\
                 fn get(&self) -> &T { &self.value }\n\
             }\n",
        );
        let im = the_impl(&items, "Holder");
        assert_eq!(im.fns[0].name, "get");
    }
}
