//! CLI for pcmap-analyze. Usage:
//!
//! ```text
//! pcmap-analyze [--root <dir>] [--json <path>]
//! ```
//!
//! Runs the token rules *plus* the semantic passes (missed-wake,
//! merge-completeness, nondet-taint, undocumented-unsafe, dead-allow)
//! over the workspace. Prints human diagnostics to stderr, optionally
//! writes the JSON report, and exits 1 if any diagnostic was produced.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = match pcmap_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pcmap-analyze: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = fs::create_dir_all(dir) {
                    eprintln!("pcmap-analyze: create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = fs::write(path, report.to_json()) {
            eprintln!("pcmap-analyze: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for d in &report.diagnostics {
        eprintln!("{}", d.render());
    }
    if report.is_clean() {
        println!(
            "pcmap-analyze: {} files scanned, no diagnostics",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "pcmap-analyze: {} diagnostic(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: pcmap-analyze [--root <dir>] [--json <path>]");
    ExitCode::from(2)
}
