//! A minimal line-oriented Rust lexer: just enough to separate *code*
//! from comments, string literals and char literals, so the rule engine
//! never fires on a `HashMap` mentioned in a doc comment or inside a
//! string.
//!
//! The output keeps line structure intact: for every source line we
//! produce the line's code with comment text removed and string/char
//! *contents* blanked to spaces (delimiters kept, so token adjacency
//! does not change), plus the text of every comment that starts or
//! continues on that line (where suppression directives live).

/// One source line, split into lintable code and comment text.
#[derive(Debug, Clone, Default)]
pub struct LineView {
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Comment text (without `//` / `/*` markers) seen on this line.
    pub comments: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested block-comment depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: terminated by `"` followed by `n` `#`s.
    RawStr(u32),
    CharLit,
}

/// Splits `src` into per-line [`LineView`]s.
///
/// Handles line and (nested) block comments, plain and raw string
/// literals (including byte strings), char literals, and distinguishes
/// lifetimes (`'a`) from char literals.
pub fn strip(src: &str) -> Vec<LineView> {
    let b: Vec<char> = src.chars().collect();
    let mut lines: Vec<LineView> = vec![LineView::default()];
    let mut comment_buf = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    // Appends to the current line's code.
    fn code_push(lines: &mut [LineView], c: char) {
        lines.last_mut().expect("non-empty").code.push(c);
    }
    fn flush_comment(lines: &mut [LineView], buf: &mut String) {
        if !buf.is_empty() {
            lines
                .last_mut()
                .expect("non-empty")
                .comments
                .push(std::mem::take(buf));
        }
    }

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            flush_comment(&mut lines, &mut comment_buf);
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(LineView::default());
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    // Raw string? Look back over `r` / `br` and hashes.
                    let mut hashes = 0usize;
                    let mut j = i;
                    while j > 0 && b[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let raw = j > 0 && (b[j - 1] == 'r') && {
                        // `r` must itself start the literal (possibly after `b`),
                        // not terminate an identifier like `var`.
                        let k = if j >= 2 && b[j - 2] == 'b' {
                            j - 2
                        } else {
                            j - 1
                        };
                        k == 0 || !is_ident_char(b[k - 1])
                    };
                    code_push(&mut lines, '"');
                    state = if raw {
                        State::RawStr(hashes as u32)
                    } else {
                        State::Str
                    };
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: a char literal is `'x'` or
                    // `'\…'`; a lifetime is `'ident` with no closing quote.
                    let next = b.get(i + 1).copied();
                    let after = b.get(i + 2).copied();
                    let is_char = matches!(next, Some('\\')) || after == Some('\'');
                    code_push(&mut lines, '\'');
                    if is_char {
                        state = State::CharLit;
                    }
                    i += 1;
                } else {
                    code_push(&mut lines, c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_buf.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        flush_comment(&mut lines, &mut comment_buf);
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment_buf.push_str("/*");
                    i += 2;
                } else {
                    comment_buf.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_push(&mut lines, ' ');
                    if b.get(i + 1).is_some() && b[i + 1] != '\n' {
                        code_push(&mut lines, ' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    code_push(&mut lines, '"');
                    state = State::Code;
                    i += 1;
                } else {
                    code_push(&mut lines, ' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let n = hashes as usize;
                    let closed = (1..=n).all(|k| b.get(i + k) == Some(&'#'));
                    if closed {
                        code_push(&mut lines, '"');
                        for _ in 0..n {
                            code_push(&mut lines, '#');
                        }
                        state = State::Code;
                        i += 1 + n;
                    } else {
                        code_push(&mut lines, ' ');
                        i += 1;
                    }
                } else {
                    code_push(&mut lines, ' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    code_push(&mut lines, ' ');
                    if b.get(i + 1).is_some() {
                        code_push(&mut lines, ' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    code_push(&mut lines, '\'');
                    state = State::Code;
                    i += 1;
                } else {
                    code_push(&mut lines, ' ');
                    i += 1;
                }
            }
        }
    }
    flush_comment(&mut lines, &mut comment_buf);
    lines
}

/// `true` for characters that may appear inside a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` in `code` as a whole identifier (not a substring of a
/// longer identifier). Returns the byte offset of the first match.
pub fn find_ident(code: &str, needle: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || !is_ident_char(bytes[start - 1] as char);
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        strip(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comment_is_removed_from_code() {
        let v = strip("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!v[0].code.contains("HashMap"));
        assert_eq!(v[0].comments.len(), 1);
        assert!(v[0].comments[0].contains("HashMap"));
        assert_eq!(v[1].code, "let y = 2;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let v = strip("a /* one /* two */ still */ b\nc");
        assert_eq!(v[0].code.trim_end(), "a  b");
        assert!(v[0].comments[0].contains("two"));
        assert_eq!(v[1].code, "c");
    }

    #[test]
    fn string_contents_are_blanked() {
        let v = code_of("let s = \"HashMap::new()\";");
        assert!(!v[0].contains("HashMap"));
        assert!(v[0].contains('"'));
        assert!(v[0].ends_with(';'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let v = code_of(r#"let s = "say \"HashMap\""; let t = HashMap;"#);
        assert!(find_ident(&v[0], "HashMap").is_some());
        assert_eq!(v[0].matches("HashMap").count(), 1);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let v = code_of("let s = r#\"Instant::now()\"#; Instant");
        assert_eq!(v[0].matches("Instant").count(), 1);
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let v = code_of("let var = \"SystemTime\"; SystemTime");
        assert_eq!(v[0].matches("SystemTime").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let v = code_of("fn f<'a>(x: &'a str) -> &'a str { x } // thread_rng");
        assert!(v[0].contains("fn f<'a>"));
        assert!(!v[0].contains("thread_rng"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let v = code_of("let c = 'H'; let d = '\\n'; HashSet");
        assert!(find_ident(&v[0], "HashSet").is_some());
        assert!(!v[0].contains("'H'"));
    }

    #[test]
    fn find_ident_requires_word_boundaries() {
        assert!(find_ident("MyHashMapLike", "HashMap").is_none());
        assert!(find_ident("HashMap::new()", "HashMap").is_some());
        assert!(find_ident("a.HashMap", "HashMap").is_some());
        assert!(find_ident("", "HashMap").is_none());
    }

    #[test]
    fn multi_hash_raw_strings_are_blanked() {
        // A `"#` inside must not end an `r##"..."##` string.
        let v = code_of("let s = r##\"quote \"# Instant::now() \"# here\"##; Instant");
        assert_eq!(v[0].matches("Instant").count(), 1);
        assert!(find_ident(&v[0], "Instant").is_some());
    }

    #[test]
    fn multi_hash_raw_strings_span_lines() {
        let v = code_of("let s = r##\"line one HashMap\nline two \"# HashMap\n\"##; HashMap");
        assert!(!v[0].contains("HashMap"));
        assert!(!v[1].contains("HashMap"));
        assert!(find_ident(&v[2], "HashMap").is_some());
    }

    #[test]
    fn byte_string_literals_are_blanked() {
        let v = code_of("let b = b\"SystemTime\"; SystemTime");
        assert_eq!(v[0].matches("SystemTime").count(), 1);
        let v = code_of("let b = br#\"thread_rng\"#; thread_rng");
        assert_eq!(v[0].matches("thread_rng").count(), 1);
    }

    #[test]
    fn byte_char_literals_are_blanked() {
        let v = code_of("let c = b'H'; HashSet");
        assert!(find_ident(&v[0], "HashSet").is_some());
        assert!(!v[0].contains("b'H'"));
    }

    #[test]
    fn nested_block_comments_with_quote_chars() {
        // The `"` inside the nested comment must not open a string that
        // would swallow the rest of the file.
        let v = strip("a /* outer \" /* inner ' */ \" still */ HashMap\nInstant");
        assert!(find_ident(&v[0].code, "HashMap").is_some());
        assert!(find_ident(&v[1].code, "Instant").is_some());
        assert!(v[0].comments[0].contains("inner"));
    }

    #[test]
    fn block_comment_quote_then_code_string() {
        // A string *after* a quote-bearing comment still blanks.
        let v = code_of("/* has \" quote */ let s = \"HashMap\"; HashMap");
        assert_eq!(v[0].matches("HashMap").count(), 1);
    }
}
