//! pcmap-analyze: semantic passes over the shallow AST (DESIGN.md §15).
//!
//! Where `pcmap-lint` bans *tokens*, this module checks *contracts*:
//!
//! 1. **missed-wake** — every type exposing a `next_tick()` horizon must
//!    read (directly, or through the cache-refresh methods that write
//!    what `next_tick()` reads) every field its mutator roots
//!    (`step`/`schedule`/`resolve`) both write *and* consult. Readiness
//!    state outside the horizon can change without rescheduling a wake,
//!    silently diverging `Engine::Event` from `Engine::Cycle`
//!    (DESIGN.md §14).
//! 2. **merge-completeness** — every snapshot struct with a
//!    `merge(&mut self, other)` must touch every declared field in both
//!    `merge()` and its `to_json()` export; a dropped field loses data
//!    exactly and only at `--jobs > 1` (DESIGN.md §9).
//! 3. **nondet-taint** — within-crate interprocedural propagation from
//!    wall-clock / env / OS-entropy sources, catching values laundered
//!    through helper fns that the token-level `wall-clock` ban cannot
//!    see.
//! 4. **undocumented-unsafe** — every `unsafe` occurrence needs a
//!    `// SAFETY:` comment on the same line or directly above.
//!
//! All passes are *shallow by design*: no type inference, no trait
//! resolution, no control flow. They over-approximate (any textual read
//! counts) and rely on reasoned `pcmap-lint: allow(...)` waivers for
//! the residue — which the dead-allow pass then keeps honest.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::ast::{self, FnDef, Item, StructDef};
use crate::lexer::{self, LineView};
use crate::rules::{self, CrateScope, Diagnostic, Rule};
use crate::suppress::DirectiveSet;
use crate::Report;

/// Method names treated as mutator roots for the missed-wake pass: the
/// entry points through which the engines drive a component.
const MUTATOR_ROOTS: [&str; 3] = ["step", "schedule", "resolve"];

/// One loaded source file plus everything the passes need from it.
struct SrcFile {
    path: String,
    raw: String,
    lines: Vec<LineView>,
    items: Vec<Item>,
    crate_name: String,
    scope: CrateScope,
    /// Integration-test code (`tests/` dirs): token rules still apply,
    /// but the wake/merge/taint passes skip it.
    is_test: bool,
}

fn crate_of(rel: &str) -> String {
    let mut comps = rel.split('/');
    if comps.next() == Some("crates") {
        if let Some(k) = comps.next() {
            return k.to_owned();
        }
    }
    "pcmap".to_owned()
}

fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

fn load(path: String, raw: String, crate_name: String, scope: CrateScope) -> SrcFile {
    let lines = lexer::strip(&raw);
    let items = ast::parse(&lines);
    let is_test = is_test_path(&path);
    SrcFile {
        path,
        raw,
        lines,
        items,
        crate_name,
        scope,
        is_test,
    }
}

/// Runs the full analysis (token rules + semantic passes + dead-waiver
/// detection) over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            crate::collect_rs(&dir, &mut paths)?;
        }
    }
    let mut files = Vec::new();
    let files_scanned = paths.len();
    for path in &paths {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let scope = crate::scope_for(rel);
        if scope.rules().is_empty() && scope.passes().is_empty() {
            continue;
        }
        let raw = fs::read_to_string(path)?;
        let crate_name = crate_of(&rel_str);
        files.push(load(rel_str, raw, crate_name, scope));
    }
    let diagnostics = analyze_files(files);
    Ok(Report {
        tool: "pcmap-analyze",
        version: 2,
        files_scanned,
        diagnostics,
    })
}

/// Analyzes a set of in-memory sources as one crate (fixture-test entry
/// point). `files` is `(path, source)`; all files get `scope`.
pub fn analyze_sources(
    crate_name: &str,
    files: &[(&str, &str)],
    scope: CrateScope,
) -> Vec<Diagnostic> {
    let loaded = files
        .iter()
        .map(|(p, s)| {
            load(
                (*p).to_owned(),
                (*s).to_owned(),
                crate_name.to_owned(),
                scope,
            )
        })
        .collect();
    analyze_files(loaded)
}

/// The shared pipeline: token rules, the four passes, suppression
/// application, and dead-waiver detection, in that order.
fn analyze_files(files: Vec<SrcFile>) -> Vec<Diagnostic> {
    let mut sets: Vec<DirectiveSet> = files
        .iter()
        .map(|f| DirectiveSet::parse(&f.path, &f.raw, &f.lines))
        .collect();

    let ws = Workspace::build(&files);
    let mut raw_diags: Vec<Diagnostic> = Vec::new();

    for f in &files {
        raw_diags.extend(rules::content_diags(&f.path, &f.raw, &f.lines, f.scope));
        if f.scope.passes().contains(&Rule::UndocumentedUnsafe) {
            raw_diags.extend(undocumented_unsafe(f));
        }
    }
    raw_diags.extend(ws.missed_wake());
    raw_diags.extend(ws.merge_completeness());
    raw_diags.extend(ws.nondet_taint(&mut sets));

    // Per-file: filter through the directives (marking them used), then
    // surface malformed and dead ones. Cross-file passes anchor their
    // diagnostics at declaration sites, so grouping is by the
    // diagnostic's own path, not the pass's entry file.
    let mut by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in raw_diags {
        by_file.entry(d.path.clone()).or_default().push(d);
    }

    let mut out: Vec<Diagnostic> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let mine = by_file.remove(&f.path).unwrap_or_default();
        let mut kept = sets[i].apply(mine);
        if f.scope.rules().contains(&Rule::BadSuppression) {
            kept.append(&mut sets[i].bad);
        }
        if f.scope.passes().contains(&Rule::DeadAllow) {
            kept.extend(sets[i].dead(&f.path, &f.raw));
        }
        out.extend(kept);
    }
    for (_, mut rest) in by_file {
        out.append(&mut rest);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message) == (&b.path, b.line, b.rule, &b.message)
    });
    out
}

/// A field path relative to some `self` type, e.g. `["core", "wake"]`.
type FieldPath = Vec<String>;

/// Interprocedural read/write summary of one method, as `self`-relative
/// field paths.
#[derive(Debug, Default, Clone)]
struct Summary {
    reads: BTreeSet<FieldPath>,
    writes: BTreeSet<FieldPath>,
}

impl Summary {
    fn merge(&mut self, other: &Summary) {
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
    }
}

fn prefixed(prefix: &[String], rest: &[String]) -> FieldPath {
    prefix.iter().chain(rest.iter()).cloned().collect()
}

/// Whether one path is a prefix of the other (either direction): the
/// two touch overlapping state.
fn intersects(a: &[String], b: &[String]) -> bool {
    let n = a.len().min(b.len());
    a[..n] == b[..n]
}

/// Cross-file symbol table plus the summary engine.
struct Workspace<'a> {
    files: &'a [SrcFile],
    /// struct name → occurrences (file idx, item idx), workspace-wide.
    structs: BTreeMap<&'a str, Vec<(usize, usize)>>,
    /// (type, method) → occurrences (file idx, fn ref).
    methods: BTreeMap<(&'a str, &'a str), Vec<(usize, &'a FnDef)>>,
    /// type → its method names (for the cache-writer expansion).
    type_methods: BTreeMap<&'a str, BTreeSet<&'a str>>,
    /// (crate, free fn name) → occurrences.
    free_fns: BTreeMap<(&'a str, &'a str), Vec<(usize, &'a FnDef)>>,
}

impl<'a> Workspace<'a> {
    fn build(files: &'a [SrcFile]) -> Self {
        let mut ws = Workspace {
            files,
            structs: BTreeMap::new(),
            methods: BTreeMap::new(),
            type_methods: BTreeMap::new(),
            free_fns: BTreeMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            for (ii, item) in f.items.iter().enumerate() {
                match item {
                    Item::Struct(s) if !s.test_only => {
                        ws.structs.entry(&s.name).or_default().push((fi, ii));
                    }
                    Item::Impl(im) if !im.test_only => {
                        for func in &im.fns {
                            if func.test_only {
                                continue;
                            }
                            ws.methods
                                .entry((&im.ty, &func.name))
                                .or_default()
                                .push((fi, func));
                            ws.type_methods
                                .entry(&im.ty)
                                .or_default()
                                .insert(&func.name);
                        }
                    }
                    Item::Fn(func) if !func.test_only => {
                        ws.free_fns
                            .entry((&f.crate_name, &func.name))
                            .or_default()
                            .push((fi, func));
                    }
                    _ => {}
                }
            }
        }
        ws
    }

    fn struct_def(&self, name: &str) -> Option<(usize, &'a StructDef)> {
        let occ = self.structs.get(name)?.first()?;
        match &self.files[occ.0].items[occ.1] {
            Item::Struct(s) => Some((occ.0, s)),
            _ => None,
        }
    }

    /// Resolves the type of `ty.path[0].path[1]...` through declared
    /// field types; `None` when any hop leaves the workspace (std
    /// types, tuple indices, generics we cannot see through).
    fn field_type(&self, ty: &str, path: &[String]) -> Option<String> {
        let mut cur = ty.to_owned();
        for seg in path {
            let (_, s) = self.struct_def(&cur)?;
            let field = s.fields.iter().find(|f| &f.name == seg)?;
            cur = field
                .ty_idents
                .iter()
                .find(|id| self.structs.contains_key(id.as_str()))?
                .clone();
        }
        Some(cur)
    }

    /// Deepest resolvable field declaration along `ty.path...`:
    /// `(file idx, 1-based line, dotted name)`.
    fn field_decl(&self, ty: &str, path: &[String]) -> Option<(usize, usize, String)> {
        let mut cur = ty.to_owned();
        let mut best = None;
        let mut shown = Vec::new();
        for seg in path {
            let (fi, s) = self.struct_def(&cur)?;
            let field = s.fields.iter().find(|f| &f.name == seg)?;
            shown.push(seg.clone());
            best = Some((fi, field.line + 1, shown.join(".")));
            match field
                .ty_idents
                .iter()
                .find(|id| self.structs.contains_key(id.as_str()))
            {
                Some(next) => cur = next.clone(),
                None => break,
            }
        }
        best
    }

    /// Memoized, recursion-guarded read/write summary of `ty::method`,
    /// following `self.field.helper()` calls through declared field
    /// types across the whole workspace.
    fn summarize(
        &self,
        ty: &str,
        method: &str,
        memo: &mut BTreeMap<(String, String), Summary>,
        stack: &mut Vec<(String, String)>,
    ) -> Summary {
        let key = (ty.to_owned(), method.to_owned());
        if let Some(s) = memo.get(&key) {
            return s.clone();
        }
        if stack.contains(&key) {
            return Summary::default();
        }
        stack.push(key.clone());
        let mut sum = Summary::default();
        for (_, func) in self.methods.get(&(ty, method)).into_iter().flatten() {
            let Some(body) = &func.body else { continue };
            for a in &body.accesses {
                if a.base != "self" || a.path.is_empty() {
                    continue;
                }
                if a.write {
                    sum.writes.insert(a.path.clone());
                } else {
                    sum.reads.insert(a.path.clone());
                }
            }
            for c in &body.calls {
                let Some((base, segs)) = &c.recv else {
                    continue;
                };
                if base != "self" {
                    continue;
                }
                if let Some(callee_ty) = self.field_type(ty, segs) {
                    if self.methods.contains_key(&(callee_ty.as_str(), c.name())) {
                        let inner = self.summarize(&callee_ty, c.name(), memo, stack);
                        for r in &inner.reads {
                            sum.reads.insert(prefixed(segs, r));
                        }
                        for w in &inner.writes {
                            sum.writes.insert(prefixed(segs, w));
                        }
                    }
                }
            }
        }
        stack.pop();
        memo.insert(key, sum.clone());
        sum
    }

    fn summary(
        &self,
        ty: &str,
        method: &str,
        memo: &mut BTreeMap<(String, String), Summary>,
    ) -> Summary {
        self.summarize(ty, method, memo, &mut Vec::new())
    }

    /// Pass 1: missed-wake (see module docs).
    fn missed_wake(&self) -> Vec<Diagnostic> {
        let mut memo = BTreeMap::new();
        let mut out = Vec::new();
        // Types with a non-test `next_tick(&self)` in sim-facing,
        // non-test files.
        let mut horizon_types: BTreeSet<&str> = BTreeSet::new();
        for ((ty, method), occs) in &self.methods {
            if *method != "next_tick" {
                continue;
            }
            for (fi, func) in occs {
                let f = &self.files[*fi];
                if f.scope == CrateScope::SimFacing && !f.is_test && func.takes_self {
                    horizon_types.insert(ty);
                }
            }
        }
        for ty in horizon_types {
            let r0 = self.summary(ty, "next_tick", &mut memo).reads;
            if r0.is_empty() {
                continue;
            }
            // Horizon = next_tick's reads plus one generation of
            // cache-refresh expansion: any non-root method (of the type
            // itself or of a direct field's type) that *writes* into R0
            // contributes its reads — this is how `compute_wake`'s
            // inputs count as part of the horizon.
            let mut horizon = r0.clone();
            let mut expansion_sites: Vec<(String, FieldPath)> = vec![(ty.to_owned(), Vec::new())];
            if let Some((_, sdef)) = self.struct_def(ty) {
                for field in &sdef.fields {
                    if let Some(fty) = self.field_type(ty, std::slice::from_ref(&field.name)) {
                        expansion_sites.push((fty, vec![field.name.clone()]));
                    }
                }
            }
            for (site_ty, prefix) in &expansion_sites {
                let Some(names) = self.type_methods.get(site_ty.as_str()) else {
                    continue;
                };
                for m in names.clone() {
                    if MUTATOR_ROOTS.contains(&m) || m == "next_tick" {
                        continue;
                    }
                    let s = self.summary(site_ty, m, &mut memo);
                    let writes_into_r0 = s
                        .writes
                        .iter()
                        .any(|w| r0.iter().any(|r| intersects(&prefixed(prefix, w), r)));
                    if writes_into_r0 {
                        for r in &s.reads {
                            horizon.insert(prefixed(prefix, r));
                        }
                    }
                }
            }
            // Mutator closure over the roots.
            let mut mutated = Summary::default();
            for root in MUTATOR_ROOTS {
                if self.methods.contains_key(&(ty, root)) {
                    mutated.merge(&self.summary(ty, root, &mut memo));
                }
            }
            if mutated.writes.is_empty() {
                continue;
            }
            // Candidates: state both written and read on the mutator
            // paths (write-only telemetry is horizon-irrelevant),
            // truncated to depth 2 so sub-field noise collapses.
            let mut cands: BTreeSet<FieldPath> = BTreeSet::new();
            for w in &mutated.writes {
                if mutated.reads.iter().any(|r| intersects(r, w)) {
                    cands.insert(w[..w.len().min(2)].to_vec());
                }
            }
            for cand in cands {
                let covered = horizon.iter().any(|r| cand.starts_with(r));
                if covered {
                    continue;
                }
                let Some((fi, line, shown)) = self.field_decl(ty, &cand) else {
                    continue;
                };
                out.push(Diagnostic {
                    rule: Rule::MissedWake,
                    path: self.files[fi].path.clone(),
                    line,
                    message: format!(
                        "`{ty}` mutates and consults `{shown}` on its \
                         step/schedule/resolve paths, but `next_tick()` never reads it \
                         (directly or via a cache-refresh method) — a readiness change \
                         through this field cannot reschedule a wake (DESIGN.md §14)"
                    ),
                    snippet: snippet_at(&self.files[fi], line),
                });
            }
        }
        out
    }

    /// Pass 2: merge completeness (see module docs).
    fn merge_completeness(&self) -> Vec<Diagnostic> {
        let mut memo = BTreeMap::new();
        let mut out = Vec::new();
        for ((ty, method), occs) in &self.methods {
            if *method != "merge" {
                continue;
            }
            for (fi, func) in occs {
                let f = &self.files[*fi];
                if f.scope != CrateScope::SimFacing || f.is_test || !func.takes_mut_self {
                    continue;
                }
                // `merge(&mut self, other: &Self)` — the other side must
                // be (a reference to) the same type.
                let Some((other_name, other_ty)) = func.params.first() else {
                    continue;
                };
                if !other_ty.iter().any(|t| t == ty || t == "Self") {
                    continue;
                }
                let Some((sfi, sdef)) = self.struct_def(ty) else {
                    continue;
                };
                let Some(body) = &func.body else { continue };
                let mut merged: BTreeSet<&str> = BTreeSet::new();
                for a in &body.accesses {
                    if &a.base == other_name && !a.path.is_empty() {
                        merged.insert(a.path[0].as_str());
                    }
                }
                let exporter = self
                    .methods
                    .contains_key(&(ty, "to_json"))
                    .then(|| self.summary(ty, "to_json", &mut memo).reads);
                for field in &sdef.fields {
                    let mut missing = Vec::new();
                    if !merged.contains(field.name.as_str()) {
                        missing.push("merge()");
                    }
                    if let Some(exported) = &exporter {
                        if !exported.iter().any(|r| r[0] == field.name) {
                            missing.push("to_json()");
                        }
                    }
                    if missing.is_empty() {
                        continue;
                    }
                    out.push(Diagnostic {
                        rule: Rule::MergeCompleteness,
                        path: self.files[sfi].path.clone(),
                        line: field.line + 1,
                        message: format!(
                            "snapshot field `{}.{}` never appears in {} — its shard \
                             contribution is silently dropped at --jobs > 1 \
                             (DESIGN.md §9 determinism contract)",
                            ty,
                            field.name,
                            missing.join(" or ")
                        ),
                        snippet: snippet_at(&self.files[sfi], field.line + 1),
                    });
                }
            }
        }
        out
    }

    /// Pass 3: nondeterminism taint (see module docs). Consumes
    /// `allow(nondet-taint)` directives found at *source* lines: a
    /// waived source does not taint its callers.
    fn nondet_taint(&self, sets: &mut [DirectiveSet]) -> Vec<Diagnostic> {
        // Node = (crate, type-or-"", fn name). Owned keys: receiver
        // resolution produces type names on the fly.
        type Node = (String, String, String);
        struct FnInfo<'x> {
            file: usize,
            func: &'x FnDef,
            ty: &'x str,
        }
        let mut fns: BTreeMap<Node, Vec<FnInfo<'a>>> = BTreeMap::new();
        for (fi, f) in self.files.iter().enumerate() {
            if f.scope != CrateScope::SimFacing || f.is_test {
                continue;
            }
            for item in &f.items {
                match item {
                    Item::Fn(func) if !func.test_only => {
                        fns.entry((f.crate_name.clone(), String::new(), func.name.clone()))
                            .or_default()
                            .push(FnInfo {
                                file: fi,
                                func,
                                ty: "",
                            });
                    }
                    Item::Impl(im) if !im.test_only => {
                        for func in &im.fns {
                            if !func.test_only {
                                fns.entry((f.crate_name.clone(), im.ty.clone(), func.name.clone()))
                                    .or_default()
                                    .push(FnInfo {
                                        file: fi,
                                        func,
                                        ty: &im.ty,
                                    });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Direct sources per node (unwaived), and the same-crate call
        // graph. A waived source (`allow(nondet-taint)` at its line) is
        // consumed here and taints nothing.
        let mut tainted: BTreeMap<Node, (String, String, usize)> = BTreeMap::new();
        let mut edges: BTreeMap<Node, Vec<(Node, usize)>> = BTreeMap::new();
        for (node, infos) in &fns {
            for info in infos {
                let Some(body) = &info.func.body else {
                    continue;
                };
                let f = &self.files[info.file];
                for c in &body.calls {
                    let callee: Option<Node> = match &c.recv {
                        None => {
                            if let Some(kind) = source_kind(&c.path) {
                                if sets[info.file].allow(Rule::NondetTaint, c.line) {
                                    continue; // waived at the source
                                }
                                tainted.entry(node.clone()).or_insert((
                                    kind.to_owned(),
                                    f.path.clone(),
                                    c.line + 1,
                                ));
                                continue;
                            }
                            match c.path.len() {
                                1 => Some((node.0.clone(), String::new(), c.path[0].clone())),
                                2 => Some((node.0.clone(), c.path[0].clone(), c.path[1].clone())),
                                _ => None,
                            }
                        }
                        Some((base, segs)) if base == "self" && !info.ty.is_empty() => self
                            .field_type(info.ty, segs)
                            .map(|ty| (node.0.clone(), ty, c.name().to_owned())),
                        _ => None,
                    };
                    // Within-crate only: a callee in another crate is
                    // that crate's responsibility (and its own pass).
                    if let Some(callee) = callee {
                        if fns.contains_key(&callee) {
                            edges
                                .entry(node.clone())
                                .or_default()
                                .push((callee, c.line));
                        }
                    }
                }
            }
        }

        // Fixpoint propagation along call edges.
        loop {
            let mut newly: Vec<(Node, (String, String, usize))> = Vec::new();
            for (caller, outs) in &edges {
                if tainted.contains_key(caller) {
                    continue;
                }
                if let Some((callee, _)) = outs.iter().find(|(c, _)| tainted.contains_key(c)) {
                    newly.push((caller.clone(), tainted[callee].clone()));
                }
            }
            if newly.is_empty() {
                break;
            }
            tainted.extend(newly);
        }

        // Diagnostics: every unwaived direct source, and every call site
        // whose callee is tainted (the laundering edge).
        let mut out = Vec::new();
        for (node, infos) in &fns {
            for info in infos {
                let Some(body) = &info.func.body else {
                    continue;
                };
                let f = &self.files[info.file];
                for c in &body.calls {
                    if c.recv.is_none() {
                        if let Some(kind) = source_kind(&c.path) {
                            if sets[info.file].would_allow(Rule::NondetTaint, c.line) {
                                continue;
                            }
                            out.push(Diagnostic {
                                rule: Rule::NondetTaint,
                                path: f.path.clone(),
                                line: c.line + 1,
                                message: format!(
                                    "`{}` reads {kind}; sim-facing values must be \
                                     deterministic — plumb an explicit seed/config instead",
                                    c.path.join("::")
                                ),
                                snippet: snippet_at(f, c.line + 1),
                            });
                        }
                    }
                }
                for (callee, line) in edges.get(node).into_iter().flatten() {
                    if let Some((kind, src_path, src_line)) = tainted.get(callee) {
                        let shown = if callee.1.is_empty() {
                            callee.2.clone()
                        } else {
                            format!("{}::{}", callee.1, callee.2)
                        };
                        out.push(Diagnostic {
                            rule: Rule::NondetTaint,
                            path: f.path.clone(),
                            line: line + 1,
                            message: format!(
                                "`{shown}` launders {kind} (source at {src_path}:{src_line}) \
                                 into sim-facing code; plumb an explicit seed/config instead"
                            ),
                            snippet: snippet_at(f, line + 1),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Maps a call path onto a nondeterminism source kind.
fn source_kind(path: &[String]) -> Option<&'static str> {
    let last = path.last()?.as_str();
    let has = |s: &str| path.iter().any(|p| p == s);
    match last {
        "now" | "elapsed" if has("Instant") || has("SystemTime") => Some("the wall clock"),
        "duration_since" if has("UNIX_EPOCH") => Some("the wall clock"),
        "thread_rng" | "getrandom" => Some("OS entropy"),
        "new" | "default" if has("RandomState") || has("DefaultHasher") => {
            Some("a randomized hasher")
        }
        "var" | "var_os" | "vars" if has("env") => Some("the process environment"),
        "available_parallelism" => Some("host parallelism"),
        "temp_dir" => Some("the host temp dir"),
        "id" if has("process") => Some("the process id"),
        _ => None,
    }
}

/// Pass 4: undocumented-unsafe. Lexer-level (runs on test code too):
/// every line containing an `unsafe` token must carry a `SAFETY:`
/// comment on the same line or directly above (walking up through
/// comment-only, blank, and attribute lines).
fn undocumented_unsafe(f: &SrcFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, lv) in f.lines.iter().enumerate() {
        if lexer::find_ident(&lv.code, "unsafe").is_none() {
            continue;
        }
        let documented = |lv: &LineView| lv.comments.iter().any(|c| c.contains("SAFETY:"));
        let mut ok = documented(lv);
        let mut j = i;
        while !ok && j > 0 {
            j -= 1;
            let above = &f.lines[j];
            if documented(above) {
                ok = true;
                break;
            }
            let code = above.code.trim();
            // Keep walking through lines that carry no code of their
            // own: blanks, pure comments, attributes.
            if code.is_empty() || code.starts_with("#[") || code.starts_with("#!") {
                continue;
            }
            break;
        }
        if !ok {
            out.push(Diagnostic {
                rule: Rule::UndocumentedUnsafe,
                path: f.path.clone(),
                line: i + 1,
                message: "`unsafe` without a `// SAFETY:` comment — document the \
                          invariant that makes this sound, directly above or on the \
                          same line"
                    .to_owned(),
                snippet: snippet_at(f, i + 1),
            });
        }
    }
    out
}

fn snippet_at(f: &SrcFile, line1: usize) -> String {
    f.raw
        .lines()
        .nth(line1.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_owned()
}
