//! Suppression directives: parsing, application, and dead-waiver
//! detection.
//!
//! A directive is a comment of the form
//! `pcmap-lint: allow(<rule>, reason = "...")` (covers its own line and
//! the next) or `pcmap-lint: allow-file(<rule>, reason = "...")`
//! (covers the whole file). Directives must *start* their comment, so
//! prose that merely mentions `pcmap-lint:` never parses as one.
//!
//! [`DirectiveSet::apply`] filters a diagnostic batch and marks every
//! directive that absorbed at least one finding as *used*; the analyzer
//! reports the rest as [`Rule::DeadAllow`] so stale waivers cannot mask
//! future regressions.

use crate::lexer::LineView;
use crate::rules::{Diagnostic, Rule};

/// One parsed `allow(...)` / `allow-file(...)` directive.
#[derive(Debug)]
pub struct Directive {
    pub rule: Rule,
    /// 0-based line the directive sits on.
    pub at: usize,
    /// `false` for `allow-file`, which covers every line.
    pub line_scoped: bool,
    /// Set once the directive has absorbed at least one diagnostic.
    pub used: bool,
}

impl Directive {
    /// Whether this directive covers `(rule, line0)`: the directive's
    /// own line and the next for line-scoped allows, anywhere for
    /// `allow-file`.
    fn covers(&self, rule: Rule, line0: usize) -> bool {
        self.rule == rule && (!self.line_scoped || line0 == self.at || line0 == self.at + 1)
    }
}

/// All directives of one source file, plus the malformed ones
/// ([`Rule::BadSuppression`] findings).
#[derive(Debug, Default)]
pub struct DirectiveSet {
    pub directives: Vec<Directive>,
    pub bad: Vec<Diagnostic>,
}

impl DirectiveSet {
    /// Parses every directive in the file's comments.
    pub fn parse(path: &str, raw: &str, lines: &[LineView]) -> Self {
        let raw_lines: Vec<&str> = raw.lines().collect();
        let raw_at = |i: usize| raw_lines.get(i).copied().unwrap_or("");
        let mut set = DirectiveSet::default();
        for (i, lv) in lines.iter().enumerate() {
            for comment in &lv.comments {
                parse_comment(comment, i, path, raw_at(i), &mut set);
            }
        }
        set
    }

    /// Marks the first directive covering `(rule, line0)` used and
    /// returns whether one exists.
    pub fn allow(&mut self, rule: Rule, line0: usize) -> bool {
        let mut hit = false;
        for d in &mut self.directives {
            if d.covers(rule, line0) {
                d.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Whether a directive covers `(rule, line0)`, without marking it.
    pub fn would_allow(&self, rule: Rule, line0: usize) -> bool {
        self.directives.iter().any(|d| d.covers(rule, line0))
    }

    /// Filters `diags`, dropping every suppressed finding and marking
    /// the absorbing directives used.
    pub fn apply(&mut self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| !self.allow(d.rule, d.line.saturating_sub(1)))
            .collect()
    }

    /// [`Rule::DeadAllow`] findings for every directive that absorbed
    /// nothing. Call after every pass has run and been
    /// [`apply`](Self::apply)-filtered.
    pub fn dead(&self, path: &str, raw: &str) -> Vec<Diagnostic> {
        let raw_lines: Vec<&str> = raw.lines().collect();
        self.directives
            .iter()
            .filter(|d| !d.used && d.rule != Rule::DeadAllow)
            .map(|d| Diagnostic {
                rule: Rule::DeadAllow,
                path: path.to_owned(),
                line: d.at + 1,
                message: format!(
                    "allow({}) suppresses nothing here — remove the stale waiver \
                     (or re-point it at the diagnostic it was written for)",
                    d.rule.name()
                ),
                snippet: raw_lines.get(d.at).copied().unwrap_or("").trim().to_owned(),
            })
            .collect()
    }
}

/// Parses the directives in one comment into `set`.
fn parse_comment(comment: &str, line0: usize, path: &str, raw_line: &str, set: &mut DirectiveSet) {
    // A directive must *start* the comment (after doc markers).
    let lead = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
    if !lead.starts_with("pcmap-lint:") {
        return;
    }
    let mut rest = lead;
    while let Some(pos) = rest.find("pcmap-lint:") {
        let after = &rest[pos + "pcmap-lint:".len()..];
        let body = after.trim_start();
        let (file_wide, args) = if let Some(a) = body.strip_prefix("allow-file(") {
            (true, a)
        } else if let Some(a) = body.strip_prefix("allow(") {
            (false, a)
        } else {
            set.bad.push(Diagnostic {
                rule: Rule::BadSuppression,
                path: path.to_owned(),
                line: line0 + 1,
                message: "pcmap-lint directive must be `allow(<rule>, reason = \"...\")` \
                          or `allow-file(<rule>, reason = \"...\")`"
                    .to_owned(),
                snippet: raw_line.trim().to_owned(),
            });
            rest = after;
            continue;
        };
        match parse_allow_args(args) {
            Ok(rule) => set.directives.push(Directive {
                rule,
                at: line0,
                line_scoped: !file_wide,
                used: false,
            }),
            Err(why) => set.bad.push(Diagnostic {
                rule: Rule::BadSuppression,
                path: path.to_owned(),
                line: line0 + 1,
                message: why,
                snippet: raw_line.trim().to_owned(),
            }),
        }
        rest = after;
    }
}

/// Parses `<rule>, reason = "<non-empty>")…` after the opening paren.
/// The closing paren is found outside quotes, so a reason may itself
/// contain parentheses.
fn parse_allow_args(args: &str) -> Result<Rule, String> {
    let mut in_quotes = false;
    let close = args
        .char_indices()
        .find_map(|(i, c)| match c {
            '"' => {
                in_quotes = !in_quotes;
                None
            }
            ')' if !in_quotes => Some(i),
            _ => None,
        })
        .ok_or_else(|| "unterminated allow(...) directive".to_owned())?;
    let inner = &args[..close];
    let mut parts = inner.splitn(2, ',');
    let rule_name = parts.next().unwrap_or("").trim();
    let rule = Rule::from_name(rule_name)
        .ok_or_else(|| format!("unknown lint rule `{rule_name}` in allow(...)"))?;
    let reason_part = parts
        .next()
        .map(str::trim)
        .ok_or_else(|| format!("allow({rule_name}) is missing `reason = \"...\"`",))?;
    let value = reason_part
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('='))
        .map(str::trim_start)
        .ok_or_else(|| format!("allow({rule_name}) is missing `reason = \"...\"`",))?;
    let quoted = value
        .strip_prefix('"')
        .and_then(|s| s.rfind('"').map(|e| &s[..e]))
        .ok_or_else(|| format!("allow({rule_name}) reason must be a quoted string"))?;
    if quoted.trim().is_empty() {
        return Err(format!("allow({rule_name}) reason must not be empty"));
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> DirectiveSet {
        DirectiveSet::parse("t.rs", src, &lexer::strip(src))
    }

    #[test]
    fn line_directive_covers_own_and_next_line() {
        let src = "// pcmap-lint: allow(wall-clock, reason = \"x\")\nlet a = 1;\nlet b = 2;\n";
        let set = parse(src);
        assert!(set.would_allow(Rule::WallClock, 0));
        assert!(set.would_allow(Rule::WallClock, 1));
        assert!(!set.would_allow(Rule::WallClock, 2));
        assert!(!set.would_allow(Rule::HashCollections, 1));
    }

    #[test]
    fn file_directive_covers_everything() {
        let src = "// pcmap-lint: allow-file(wall-clock, reason = \"x\")\n\n\nlet a = 1;\n";
        let set = parse(src);
        assert!(set.would_allow(Rule::WallClock, 3));
    }

    #[test]
    fn apply_marks_used_and_dead_reports_the_rest() {
        let src = "// pcmap-lint: allow(wall-clock, reason = \"x\")\n\
                   // pcmap-lint: allow(hash-collections, reason = \"y\")\n";
        let mut set = parse(src);
        let kept = set.apply(vec![Diagnostic {
            rule: Rule::WallClock,
            path: "t.rs".into(),
            line: 1,
            message: "m".into(),
            snippet: "s".into(),
        }]);
        assert!(kept.is_empty());
        let dead = set.dead("t.rs", src);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].rule, Rule::DeadAllow);
        assert_eq!(dead[0].line, 2);
        assert!(dead[0].message.contains("hash-collections"));
    }

    #[test]
    fn malformed_directives_are_bad_suppressions() {
        let set = parse("// pcmap-lint: allow(no-such-rule, reason = \"x\")\n");
        assert_eq!(set.bad.len(), 1);
        assert!(set.directives.is_empty());
    }

    #[test]
    fn reason_may_contain_parentheses() {
        let set =
            parse("// pcmap-lint: allow(wall-clock, reason = \"sized (not timed) by the host\")\n");
        assert!(set.bad.is_empty(), "{:?}", set.bad);
        assert_eq!(set.directives.len(), 1);
        assert!(set.would_allow(Rule::WallClock, 1));
    }
}
