//! The pcmap-lint tool: a dependency-free, source-level static-analysis pass
//! enforcing the PCMap workspace's determinism and simulation-hygiene
//! rules (DESIGN.md §10).
//!
//! It is deliberately *not* a compiler plugin: a few hundred lines of
//! lexing plus line-oriented rules keep the gate fast, std-only (the
//! container has no network for crates.io), and easy to audit. Rules:
//!
//! | rule                 | what it bans                                         |
//! |----------------------|------------------------------------------------------|
//! | `hash-collections`   | `HashMap`/`HashSet` (randomized iteration order)     |
//! | `wall-clock`         | `Instant`/`SystemTime`/`thread_rng` outside the      |
//! |                      | profiling crates (`crates/prof`, `crates/xtask`)     |
//! | `as-narrowing`       | `as u8/u16/u32/...` on cycle/address-typed values    |
//! | `float-accumulation` | `+=` on floats in per-cycle stats paths              |
//! | `manual-time-advance`| `now += 1` / `now = Cycle(now.0 + 1)` clock bumps    |
//! |                      | outside the engine loops (DESIGN.md §14)             |
//! | `bad-suppression`    | malformed / reason-less `pcmap-lint:` directives     |
//!
//! The `pcmap-analyze` binary layers the semantic passes of
//! [`analyze`] (DESIGN.md §15) on top: `missed-wake`,
//! `merge-completeness`, `nondet-taint`, `undocumented-unsafe`, and
//! `dead-allow`.
//!
//! Suppress one finding with
//! `// pcmap-lint: allow(<rule>, reason = "...")` on the same line or
//! the line above, or a whole file with
//! `// pcmap-lint: allow-file(<rule>, reason = "...")`.

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use analyze::{analyze_sources, analyze_workspace};
pub use rules::{CrateScope, Diagnostic, Rule};
pub use suppress::DirectiveSet;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The only crates allowed to read the host wall clock
/// ([`CrateScope::Profiling`]): the profiler itself and the perf
/// harness that times child processes.
const PROFILING_CRATES: [&str; 2] = ["prof", "xtask"];
/// Crates linted at reduced ([`CrateScope::Tooling`]) strength.
const TOOLING_CRATES: [&str; 2] = ["bench", "lint"];
/// Vendored dependency shims, exempt from linting.
const VENDORED_CRATES: [&str; 2] = ["criterion", "proptest"];

/// Result of linting (or analyzing) the whole workspace.
#[derive(Debug)]
pub struct Report {
    /// `"pcmap-lint"` (token rules) or `"pcmap-analyze"` (token rules +
    /// semantic passes + dead-waiver detection).
    pub tool: &'static str,
    /// Report schema version.
    pub version: u32,
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Serializes the report as stable, hand-rolled JSON (no serde in
    /// this crate by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"tool\": {},\n", json_str(self.tool)));
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"diagnostic_count\": {},\n",
            self.diagnostics.len()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(d.rule.name())));
            out.push_str(&format!("\"path\": {}, ", json_str(&d.path)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
            out.push_str(&format!("\"snippet\": {}", json_str(&d.snippet)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decides the lint scope for a repo-relative path.
pub fn scope_for(rel: &Path) -> CrateScope {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if comps.next().as_deref() == Some("crates") {
        if let Some(krate) = comps.next() {
            if VENDORED_CRATES.iter().any(|v| *v == krate) {
                return CrateScope::Vendored;
            }
            if PROFILING_CRATES.iter().any(|p| *p == krate) {
                return CrateScope::Profiling;
            }
            if TOOLING_CRATES.iter().any(|t| *t == krate) {
                return CrateScope::Tooling;
            }
        }
    }
    CrateScope::SimFacing
}

/// Lints one source string under the given scope (fixture-test entry
/// point; `path` is only used to label diagnostics). Token rules only —
/// the semantic passes live in [`analyze`].
pub fn lint_source(path: &str, src: &str, scope: CrateScope) -> Vec<Diagnostic> {
    let lines = lexer::strip(src);
    let mut directives = suppress::DirectiveSet::parse(path, src, &lines);
    let mut diags = directives.apply(rules::content_diags(path, src, &lines, scope));
    if scope.rules().contains(&Rule::BadSuppression) {
        diags.append(&mut directives.bad);
    }
    diags.sort_by_key(|a| (a.line, a.rule));
    diags
}

/// Recursively collects `.rs` files under `dir`, sorted by path so the
/// walk (and therefore the report) is deterministic.
pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks the workspace rooted at `root` and lints every `.rs` file.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut diagnostics = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let scope = scope_for(rel);
        if scope.rules().is_empty() {
            continue;
        }
        let src = fs::read_to_string(path)?;
        diagnostics.extend(lint_source(&rel.to_string_lossy(), &src, scope));
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Report {
        tool: "pcmap-lint",
        version: 1,
        files_scanned: files.len(),
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        assert_eq!(
            scope_for(Path::new("crates/core/src/lib.rs")),
            CrateScope::SimFacing
        );
        // The serve tier is a sim-facing crate: its shard clocks and
        // outcome ledgers live under the full determinism ruleset.
        assert_eq!(
            scope_for(Path::new("crates/serve/src/lib.rs")),
            CrateScope::SimFacing
        );
        assert_eq!(
            scope_for(Path::new("crates/xtask/src/main.rs")),
            CrateScope::Profiling
        );
        assert_eq!(
            scope_for(Path::new("crates/prof/src/span.rs")),
            CrateScope::Profiling
        );
        assert_eq!(
            scope_for(Path::new("crates/bench/src/lib.rs")),
            CrateScope::Tooling
        );
        assert_eq!(
            scope_for(Path::new("crates/criterion/src/lib.rs")),
            CrateScope::Vendored
        );
        assert_eq!(
            scope_for(Path::new("tests/golden.rs")),
            CrateScope::SimFacing
        );
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_shape() {
        let report = Report {
            tool: "pcmap-lint",
            version: 1,
            files_scanned: 2,
            diagnostics: vec![Diagnostic {
                rule: Rule::HashCollections,
                path: "x.rs".into(),
                line: 3,
                message: "m".into(),
                snippet: "s".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"diagnostic_count\": 1"));
        assert!(json.contains("\"rule\": \"hash-collections\""));
    }
}
