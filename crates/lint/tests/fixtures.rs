//! Fixture-driven self-tests: every lint rule has a fixture that
//! triggers it, plus clean fixtures proving suppressions and the
//! lexer's comment/string handling do not over-fire.

use pcmap_lint::{lint_source, CrateScope, Rule};

fn lint_fixture(name: &str, src: &str) -> Vec<pcmap_lint::Diagnostic> {
    lint_source(name, src, CrateScope::SimFacing)
}

fn lines_for(diags: &[pcmap_lint::Diagnostic], rule: Rule) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn hash_collections_fixture_triggers() {
    let src = include_str!("fixtures/hash_collections.rs.fixture");
    let diags = lint_fixture("hash_collections.rs", src);
    assert_eq!(lines_for(&diags, Rule::HashCollections), vec![3, 4, 7, 8]);
    assert_eq!(
        diags.len(),
        4,
        "only hash-collections should fire: {diags:?}"
    );
}

#[test]
fn wall_clock_fixture_triggers() {
    let src = include_str!("fixtures/wall_clock.rs.fixture");
    let diags = lint_fixture("wall_clock.rs", src);
    assert_eq!(lines_for(&diags, Rule::WallClock), vec![2, 3, 6, 7, 8]);
    assert!(diags
        .iter()
        .any(|d| d.message.contains("thread_rng") || d.snippet.contains("thread_rng")));
}

#[test]
fn as_narrowing_fixture_triggers() {
    let src = include_str!("fixtures/as_narrowing.rs.fixture");
    let diags = lint_fixture("as_narrowing.rs", src);
    assert_eq!(lines_for(&diags, Rule::AsNarrowing), vec![4, 5, 6]);
    assert_eq!(
        diags.len(),
        3,
        "wide/marker-free/paren casts must not fire: {diags:?}"
    );
}

#[test]
fn float_accumulation_fixture_triggers() {
    let src = include_str!("fixtures/float_accumulation.rs.fixture");
    let diags = lint_fixture("float_accumulation.rs", src);
    assert_eq!(lines_for(&diags, Rule::FloatAccumulation), vec![4, 5]);
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn manual_time_advance_fixture_triggers() {
    let src = include_str!("fixtures/manual_time_advance.rs.fixture");
    let diags = lint_fixture("manual_time_advance.rs", src);
    assert_eq!(lines_for(&diags, Rule::ManualTimeAdvance), vec![3, 4, 5, 6]);
    assert_eq!(
        diags.len(),
        4,
        "jumps, inits, deadlines, accumulators and the suppressed line \
         must not fire: {diags:?}"
    );
}

#[test]
fn manual_time_advance_is_sim_facing_only() {
    // The bench drivers and profiling harness keep their own little run
    // loops; the clock-advance ban guards the simulation crates where
    // the event heap's horizon contract is load-bearing.
    let src = include_str!("fixtures/manual_time_advance.rs.fixture");
    assert!(lint_source("tool.rs", src, CrateScope::Tooling).is_empty());
    assert!(lint_source("prof.rs", src, CrateScope::Profiling).is_empty());
}

#[test]
fn fault_injection_fixture_triggers_every_determinism_rule() {
    // `crates/faults` auto-scopes SimFacing, so a fault injector drawing
    // on OS entropy, the wall clock, or unordered maps is caught by the
    // same rules that guard the schedulers.
    let src = include_str!("fixtures/fault_injection.rs.fixture");
    let diags = lint_fixture("fault_injection.rs", src);
    assert_eq!(lines_for(&diags, Rule::HashCollections), vec![4, 7]);
    assert_eq!(lines_for(&diags, Rule::WallClock), vec![8, 9]);
    assert_eq!(lines_for(&diags, Rule::AsNarrowing), vec![10]);
    assert_eq!(diags.len(), 5, "{diags:?}");
}

#[test]
fn faults_crate_is_sim_facing() {
    use std::path::Path;
    assert_eq!(
        pcmap_lint::scope_for(Path::new("crates/faults/src/lib.rs")),
        CrateScope::SimFacing
    );
}

#[test]
fn lifecycle_tracer_fixture_triggers_every_determinism_rule() {
    // `crates/obs` auto-scopes SimFacing, so a tracer keeping unordered
    // per-request maps, stamping wall-clock time, or narrowing cycle
    // values in attribution keys is caught by the same rules that guard
    // the schedulers it observes.
    let src = include_str!("fixtures/lifecycle_tracer.rs.fixture");
    let diags = lint_fixture("lifecycle_tracer.rs", src);
    assert_eq!(lines_for(&diags, Rule::HashCollections), vec![5, 8]);
    assert_eq!(lines_for(&diags, Rule::WallClock), vec![9]);
    assert_eq!(lines_for(&diags, Rule::AsNarrowing), vec![10]);
    assert_eq!(diags.len(), 4, "{diags:?}");
}

#[test]
fn obs_tracer_module_is_sim_facing() {
    use std::path::Path;
    assert_eq!(
        pcmap_lint::scope_for(Path::new("crates/obs/src/lifecycle.rs")),
        CrateScope::SimFacing
    );
}

#[test]
fn bad_suppression_fixture_triggers() {
    let src = include_str!("fixtures/bad_suppression.rs.fixture");
    let diags = lint_fixture("bad_suppression.rs", src);
    let bad = lines_for(&diags, Rule::BadSuppression);
    assert_eq!(bad, vec![3, 4, 5, 6, 7], "{diags:?}");
}

#[test]
fn suppressed_fixture_is_clean() {
    let src = include_str!("fixtures/suppressed_clean.rs.fixture");
    let diags = lint_fixture("suppressed_clean.rs", src);
    assert!(
        diags.is_empty(),
        "reasoned suppressions must silence: {diags:?}"
    );
}

#[test]
fn lexer_tricky_fixture_is_clean() {
    let src = include_str!("fixtures/lexer_tricky.rs.fixture");
    let diags = lint_fixture("lexer_tricky.rs", src);
    assert!(
        diags.is_empty(),
        "comment/string mentions must not fire: {diags:?}"
    );
}

#[test]
fn vendored_scope_ignores_everything() {
    let src = include_str!("fixtures/wall_clock.rs.fixture");
    assert!(lint_source("vendored.rs", src, CrateScope::Vendored).is_empty());
}

#[test]
fn tooling_scope_bans_wall_clock_but_not_narrowing() {
    // Host timing belongs in the profiling crates; plain tooling reading
    // the clock is a smell (untimed reports drifting into artifacts).
    let clock = include_str!("fixtures/wall_clock.rs.fixture");
    let diags = lint_source("tool.rs", clock, CrateScope::Tooling);
    assert_eq!(lines_for(&diags, Rule::WallClock), vec![2, 3, 6, 7, 8]);
    let hash = include_str!("fixtures/hash_collections.rs.fixture");
    let diags = lint_source("tool.rs", hash, CrateScope::Tooling);
    assert_eq!(diags.len(), 4);
    // Narrowing hygiene is not enforced for tooling.
    let narrow = include_str!("fixtures/as_narrowing.rs.fixture");
    assert!(lint_source("tool.rs", narrow, CrateScope::Tooling).is_empty());
}

#[test]
fn profiling_scope_allows_wall_clock_and_nothing_else() {
    // `crates/prof` and `crates/xtask` time the host by design — the
    // wall-clock rule is scoped out for them and only for them.
    let clock = include_str!("fixtures/wall_clock.rs.fixture");
    assert!(
        lint_source("prof.rs", clock, CrateScope::Profiling).is_empty(),
        "profiling crates may read Instant/SystemTime"
    );
    // Every other determinism rule still fires at full strength.
    let hash = include_str!("fixtures/hash_collections.rs.fixture");
    let diags = lint_source("prof.rs", hash, CrateScope::Profiling);
    assert_eq!(lines_for(&diags, Rule::HashCollections), vec![3, 4, 7, 8]);
    let narrow = include_str!("fixtures/as_narrowing.rs.fixture");
    let diags = lint_source("prof.rs", narrow, CrateScope::Profiling);
    assert_eq!(lines_for(&diags, Rule::AsNarrowing), vec![4, 5, 6]);
    let float = include_str!("fixtures/float_accumulation.rs.fixture");
    let diags = lint_source("prof.rs", float, CrateScope::Profiling);
    assert_eq!(lines_for(&diags, Rule::FloatAccumulation), vec![4, 5]);
}

#[test]
fn sim_crates_stay_wall_clock_banned() {
    // The profiling exemption must not leak: a sim-facing file with the
    // same clock reads is still rejected.
    let clock = include_str!("fixtures/wall_clock.rs.fixture");
    let diags = lint_source("crates/sim/src/system.rs", clock, CrateScope::SimFacing);
    assert_eq!(lines_for(&diags, Rule::WallClock), vec![2, 3, 6, 7, 8]);
    use std::path::Path;
    for sim_file in [
        "crates/sim/src/system.rs",
        "crates/device/src/timing.rs",
        "crates/ctrl/src/controller.rs",
        "crates/par/src/lib.rs",
    ] {
        assert_eq!(
            pcmap_lint::scope_for(Path::new(sim_file)),
            CrateScope::SimFacing,
            "{sim_file}"
        );
    }
}
