//! Mutation fixtures for the pcmap-analyze semantic passes.
//!
//! Each pass gets a matched pair: a *clean* source that upholds the
//! contract, and a *seeded-bug* mutation that breaks it in exactly the
//! way the pass exists to catch. The clean variant proves the pass does
//! not cry wolf; the mutation proves it actually fires — an analyzer
//! that flags nothing is indistinguishable from one that checks
//! nothing.

use pcmap_lint::{analyze_sources, CrateScope, Diagnostic, Rule};

fn analyze_one(src: &str) -> Vec<Diagnostic> {
    analyze_sources(
        "fixture",
        &[("fixture/src/lib.rs", src)],
        CrateScope::SimFacing,
    )
}

fn rule_lines(diags: &[Diagnostic], rule: Rule) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

// ---------------------------------------------------------------- wake --

/// A miniature controller exercising the cached-wake idiom: `step()`
/// mutates readiness state, `compute_wake()` refreshes the cached
/// horizon from it, `next_tick()` returns the cache.
const WAKE_CLEAN: &str = r#"
pub struct MiniCtrl {
    queue: Vec<u64>,
    retry_hint: Option<u64>,
    wake: Option<u64>,
}

impl MiniCtrl {
    fn compute_wake(&mut self, now: u64) {
        let mut w = None;
        if !self.queue.is_empty() {
            w = Some(now + 1);
        }
        if let Some(h) = self.retry_hint {
            w = Some(h);
        }
        self.wake = w;
    }
}

impl Controller for MiniCtrl {
    fn step(&mut self, now: u64) {
        if let Some(&head) = self.queue.first() {
            if head <= now {
                self.queue.remove(0);
            } else {
                self.retry_hint = Some(head);
            }
        }
        self.retry_hint = self.retry_hint.take();
        self.compute_wake(now);
    }

    fn next_tick(&self) -> Option<u64> {
        self.wake
    }
}
"#;

/// Seeded bug: `compute_wake()` no longer consults `retry_hint`, so a
/// retry scheduled by `step()` can never wake the controller — the
/// exact silent Event/Cycle divergence the pass exists to catch.
const WAKE_MUTATED: &str = r#"
pub struct MiniCtrl {
    queue: Vec<u64>,
    retry_hint: Option<u64>,
    wake: Option<u64>,
}

impl MiniCtrl {
    fn compute_wake(&mut self, now: u64) {
        let mut w = None;
        if !self.queue.is_empty() {
            w = Some(now + 1);
        }
        self.wake = w;
    }
}

impl Controller for MiniCtrl {
    fn step(&mut self, now: u64) {
        if let Some(&head) = self.queue.first() {
            if head <= now {
                self.queue.remove(0);
            } else {
                self.retry_hint = Some(head);
            }
        }
        self.retry_hint = self.retry_hint.take();
        self.compute_wake(now);
    }

    fn next_tick(&self) -> Option<u64> {
        self.wake
    }
}
"#;

#[test]
fn missed_wake_clean_controller_passes() {
    let d = analyze_one(WAKE_CLEAN);
    assert!(rule_lines(&d, Rule::MissedWake).is_empty(), "{d:?}");
}

#[test]
fn missed_wake_fires_when_horizon_drops_a_readiness_field() {
    let d = analyze_one(WAKE_MUTATED);
    let lines = rule_lines(&d, Rule::MissedWake);
    // Anchored at the `retry_hint` field declaration (line 4).
    assert_eq!(lines, vec![4], "{d:?}");
    assert!(d
        .iter()
        .any(|x| x.rule == Rule::MissedWake && x.message.contains("retry_hint")));
}

// --------------------------------------------------------------- merge --

const MERGE_CLEAN: &str = r#"
pub struct Snapshot {
    hits: u64,
    misses: u64,
    peak: u64,
}

impl Snapshot {
    pub fn merge(&mut self, other: &Snapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.peak = self.peak.max(other.peak);
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"peak\": {}}}",
            self.hits, self.misses, self.peak
        )
    }
}
"#;

/// Seeded bug: `peak` dropped from `merge()` — shard peaks vanish at
/// `--jobs > 1` while single-shard runs stay correct.
const MERGE_DROPPED_FROM_MERGE: &str = r#"
pub struct Snapshot {
    hits: u64,
    misses: u64,
    peak: u64,
}

impl Snapshot {
    pub fn merge(&mut self, other: &Snapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"peak\": {}}}",
            self.hits, self.misses, self.peak
        )
    }
}
"#;

/// Seeded bug: `misses` merged but never exported.
const MERGE_DROPPED_FROM_JSON: &str = r#"
pub struct Snapshot {
    hits: u64,
    misses: u64,
}

impl Snapshot {
    pub fn merge(&mut self, other: &Snapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    pub fn to_json(&self) -> String {
        format!("{{\"hits\": {}}}", self.hits)
    }
}
"#;

/// The export side may flow through helper methods (the
/// `LatencyHistogram::percentile` idiom): reads are closed over
/// same-type calls.
const MERGE_EXPORT_VIA_HELPER: &str = r#"
pub struct Hist {
    counts: Vec<u64>,
    total: u64,
}

impl Hist {
    pub fn merge(&mut self, other: &Hist) {
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
    }

    fn percentile(&self, p: u64) -> u64 {
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen * 100 >= self.total * p {
                return i as u64;
            }
        }
        0
    }

    pub fn to_json(&self) -> String {
        format!("{{\"p50\": {}, \"n\": {}}}", self.percentile(50), self.total)
    }
}
"#;

#[test]
fn merge_clean_snapshot_passes() {
    let d = analyze_one(MERGE_CLEAN);
    assert!(rule_lines(&d, Rule::MergeCompleteness).is_empty(), "{d:?}");
}

#[test]
fn merge_fires_when_a_field_is_dropped_from_merge() {
    let d = analyze_one(MERGE_DROPPED_FROM_MERGE);
    let lines = rule_lines(&d, Rule::MergeCompleteness);
    // Anchored at the `peak` field declaration (line 5).
    assert_eq!(lines, vec![5], "{d:?}");
    assert!(d
        .iter()
        .any(|x| x.rule == Rule::MergeCompleteness && x.message.contains("merge()")));
}

#[test]
fn merge_fires_when_a_field_is_dropped_from_to_json() {
    let d = analyze_one(MERGE_DROPPED_FROM_JSON);
    let lines = rule_lines(&d, Rule::MergeCompleteness);
    assert_eq!(lines, vec![4], "{d:?}");
    assert!(d
        .iter()
        .any(|x| x.rule == Rule::MergeCompleteness && x.message.contains("to_json()")));
}

#[test]
fn merge_export_reads_close_over_helper_methods() {
    let d = analyze_one(MERGE_EXPORT_VIA_HELPER);
    assert!(rule_lines(&d, Rule::MergeCompleteness).is_empty(), "{d:?}");
}

// --------------------------------------------------------------- taint --

/// Seeded bug: wall-clock entropy laundered through two same-crate
/// helpers. The token-level `wall-clock` rule sees only line 3; the
/// taint pass must also flag the call chain that carries it into
/// `Sim::init`.
const TAINT_LAUNDERED: &str = r#"
fn entropy() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

fn derive_seed() -> u64 {
    entropy() ^ 0x9e3779b97f4a7c15
}

pub struct Sim {
    seed: u64,
}

impl Sim {
    pub fn init(&mut self) {
        self.seed = derive_seed();
    }
}
"#;

/// Same shape, but the seed is plumbed explicitly: nothing to flag.
const TAINT_CLEAN: &str = r#"
fn derive_seed(base: u64) -> u64 {
    base ^ 0x9e3779b97f4a7c15
}

pub struct Sim {
    seed: u64,
}

impl Sim {
    pub fn init(&mut self, base: u64) {
        self.seed = derive_seed(base);
    }
}
"#;

/// A waiver at the *source* stops propagation: callers of the waived
/// helper stay clean (the sanctioned `env_jobs`/`from_env` idiom).
const TAINT_WAIVED_SOURCE: &str = r#"
fn jobs() -> usize {
    // pcmap-lint: allow(nondet-taint, reason = "worker count only; results are byte-identical at any job count")
    std::env::var("JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

pub fn pool_size() -> usize {
    jobs().max(1)
}
"#;

#[test]
fn taint_fires_on_source_and_laundering_call_chain() {
    let d = analyze_one(TAINT_LAUNDERED);
    let lines = rule_lines(&d, Rule::NondetTaint);
    // Source (line 3), the `entropy()` call inside `derive_seed`
    // (line 7), and the `derive_seed()` call inside `Sim::init`
    // (line 16): the whole laundering chain is visible.
    assert_eq!(lines, vec![3, 7, 16], "{d:?}");
    assert!(d
        .iter()
        .any(|x| x.rule == Rule::NondetTaint && x.message.contains("launders")));
}

#[test]
fn taint_clean_when_seed_is_plumbed() {
    let d = analyze_one(TAINT_CLEAN);
    assert!(rule_lines(&d, Rule::NondetTaint).is_empty(), "{d:?}");
}

#[test]
fn taint_waiver_at_source_untaints_callers() {
    let d = analyze_one(TAINT_WAIVED_SOURCE);
    assert!(rule_lines(&d, Rule::NondetTaint).is_empty(), "{d:?}");
    // And the waiver is *used*, so dead-allow stays quiet too.
    assert!(rule_lines(&d, Rule::DeadAllow).is_empty(), "{d:?}");
}

// -------------------------------------------------------------- unsafe --

const UNSAFE_DOCUMENTED: &str = r#"
pub fn read_word(slab: &[u64], idx: usize) -> u64 {
    // SAFETY: idx is bounds-checked by the caller's layout contract
    // (debug-asserted above in the real code).
    unsafe { *slab.get_unchecked(idx) }
}
"#;

/// Seeded bug: the SAFETY comment stripped.
const UNSAFE_STRIPPED: &str = r#"
pub fn read_word(slab: &[u64], idx: usize) -> u64 {
    unsafe { *slab.get_unchecked(idx) }
}
"#;

/// The comment may sit above attributes and blank lines.
const UNSAFE_DOC_ABOVE_ATTR: &str = r#"
// SAFETY: the impl only forwards to the system allocator.
#[allow(clippy::inline_always)]
unsafe fn forward() {}
"#;

#[test]
fn documented_unsafe_passes() {
    assert!(analyze_one(UNSAFE_DOCUMENTED).is_empty());
    assert!(analyze_one(UNSAFE_DOC_ABOVE_ATTR).is_empty());
}

#[test]
fn stripped_safety_comment_is_flagged() {
    let d = analyze_one(UNSAFE_STRIPPED);
    assert_eq!(rule_lines(&d, Rule::UndocumentedUnsafe), vec![3], "{d:?}");
}

#[test]
fn unsafe_pass_covers_profiling_and_tooling_scopes_too() {
    for scope in [CrateScope::Profiling, CrateScope::Tooling] {
        let d = analyze_sources("fixture", &[("fixture/src/lib.rs", UNSAFE_STRIPPED)], scope);
        assert_eq!(
            rule_lines(&d, Rule::UndocumentedUnsafe),
            vec![3],
            "{scope:?}"
        );
    }
}

// ---------------------------------------------------------- dead-allow --

const DEAD_WAIVER: &str = r#"
// pcmap-lint: allow(hash-collections, reason = "was a scratch map, since removed")
pub fn nothing_here() -> u64 {
    42
}
"#;

const LIVE_WAIVER: &str = r#"
// pcmap-lint: allow-file(hash-collections, reason = "scratch maps, never iterated")
pub fn scratch() -> std::collections::HashMap<u64, u64> {
    std::collections::HashMap::new()
}
"#;

#[test]
fn stale_waiver_is_reported_dead() {
    let d = analyze_one(DEAD_WAIVER);
    assert_eq!(rule_lines(&d, Rule::DeadAllow), vec![2], "{d:?}");
}

#[test]
fn live_waiver_is_not_dead() {
    let d = analyze_one(LIVE_WAIVER);
    assert!(d.is_empty(), "{d:?}");
}

// ------------------------------------------------------- cross-file -----

/// The wake pass resolves receiver chains across files: the horizon
/// type wraps a core declared elsewhere (the PcmapController/CtrlCore
/// shape).
#[test]
fn missed_wake_sees_through_cross_file_wrappers() {
    let core = r#"
pub struct Inner {
    pending: Vec<u64>,
    wake: Option<u64>,
}

impl Inner {
    pub fn compute_wake(&mut self, now: u64) {
        self.wake = self.pending.first().map(|&t| t.max(now));
    }
}
"#;
    let wrapper = r#"
pub struct Outer {
    core: Inner,
    armed: bool,
}

impl Outer {
    fn step(&mut self, now: u64) {
        if self.armed {
            self.core.pending.push(now + 4);
            self.armed = false;
        }
        self.core.compute_wake(now);
    }

    fn next_tick(&self) -> Option<u64> {
        self.core.wake
    }
}
"#;
    let d = analyze_sources(
        "fixture",
        &[
            ("fixture/src/core.rs", core),
            ("fixture/src/wrap.rs", wrapper),
        ],
        CrateScope::SimFacing,
    );
    let wake = rule_lines(&d, Rule::MissedWake);
    // `armed` is written and read in step() but invisible to the
    // horizon: flagged at its declaration in wrap.rs (line 4). The
    // `core.pending` mutation is covered via compute_wake's reads.
    assert_eq!(wake, vec![4], "{d:?}");
    assert!(d
        .iter()
        .any(|x| x.rule == Rule::MissedWake && x.path.ends_with("wrap.rs")));
}
