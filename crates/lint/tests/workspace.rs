//! The linter's strongest self-test: the workspace it lives in must
//! lint clean. This makes `cargo test` alone a determinism gate even
//! when `cargo xtask lint` is not run.

use std::path::Path;

#[test]
fn repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = pcmap_lint::lint_workspace(&root).expect("walk workspace");
    assert!(report.files_scanned > 50, "walker found too few files");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.is_clean(),
        "workspace has lint diagnostics:\n{}",
        rendered.join("\n")
    );
}
