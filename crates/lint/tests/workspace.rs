//! The linter's strongest self-test: the workspace it lives in must
//! lint *and analyze* clean. This makes `cargo test` alone a
//! determinism gate even when `cargo xtask lint`/`analyze` are not run.

use std::path::Path;

fn assert_clean(report: &pcmap_lint::Report) {
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.is_clean(),
        "workspace has {} diagnostics:\n{}",
        report.tool,
        rendered.join("\n")
    );
}

#[test]
fn repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = pcmap_lint::lint_workspace(&root).expect("walk workspace");
    assert!(report.files_scanned > 50, "walker found too few files");
    assert_clean(&report);
}

#[test]
fn repository_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = pcmap_lint::analyze_workspace(&root).expect("walk workspace");
    assert!(report.files_scanned > 50, "walker found too few files");
    assert_eq!(report.tool, "pcmap-analyze");
    assert_clean(&report);
}
