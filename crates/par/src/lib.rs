//! Deterministic parallel execution for the PCMap simulator.
//!
//! A vendored scoped thread pool (the build environment has no crates.io
//! access; same offline pattern as the `proptest` and `criterion` shims,
//! modeled on the `scoped_threadpool` crate's API; its only workspace
//! dependency is the inert-when-disabled `pcmap-prof` observer). Two
//! properties matter more than raw throughput here:
//!
//! 1. **A fixed worker count** chosen up front ([`Pool::new`]), so a run's
//!    schedule is reproducible given the same `--jobs` value.
//! 2. **Deterministic result ordering**: [`Pool::ordered_map`] returns
//!    results in *input* order no matter which worker finished first, so
//!    sweep output (and anything hashed/serialized downstream) is
//!    byte-identical across job counts.
//!
//! A pool built with `jobs = 1` spawns no threads at all: every closure
//! runs inline on the caller's stack, compiling the parallel call sites
//! down to today's serial path.
//!
//! # Example
//!
//! ```
//! let mut pool = pcmap_par::Pool::new(4);
//! let squares = pool.ordered_map((0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work (lifetime-erased; see the safety argument in
/// [`Scope::execute`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state: the job queue and its wakeup signal.
struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
}

struct QueueState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// Per-scope completion tracking.
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }
}

/// A fixed-size scoped thread pool.
///
/// Workers are spawned once in [`Pool::new`] and live until the pool is
/// dropped, so per-epoch dispatch inside the simulator's event loop does
/// not pay thread-spawn costs. Closures handed to [`Scope::execute`] may
/// borrow from the caller's stack; [`Pool::scoped`] joins every spawned
/// closure before it returns, which is what makes those borrows sound.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    jobs: usize,
}

impl Pool {
    /// Creates a pool that runs up to `jobs` closures concurrently.
    ///
    /// `jobs = 1` (or 0, which is clamped to 1) creates a threadless pool:
    /// every closure runs inline on the calling thread, in submission
    /// order — exactly the serial engine.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = if jobs == 1 {
            Vec::new()
        } else {
            (0..jobs)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("pcmap-par-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn pool worker")
                })
                .collect()
        };
        Self {
            shared,
            workers,
            jobs,
        }
    }

    /// The configured concurrency (the `--jobs` value, clamped to ≥ 1).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// `true` when the pool runs everything inline on the caller's thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.workers.is_empty()
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing closures onto
    /// the pool, then blocks until every spawned closure has finished.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) if any spawned closure panicked.
    pub fn scoped<'pool, 'scope, F, R>(&'pool mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            shared: &self.shared,
            state: Arc::new(ScopeState::new()),
            inline: self.workers.is_empty(),
            _marker: PhantomData,
        };
        // `scope` joins in its Drop impl, so spawned closures are waited
        // for even if `f` itself panics — no borrow outlives this frame.
        let out = f(&scope);
        drop(scope);
        out
    }

    /// Applies `f` to every item, running up to `jobs` applications
    /// concurrently, and returns the results **in input order**.
    pub fn ordered_map<T, R, F>(&mut self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
        self.scoped(|scope| {
            for (slot, item) in slots.iter_mut().zip(items) {
                let f = &f;
                scope.execute(move || *slot = Some(f(item)));
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("scope joined every job"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            // A worker that panicked already flagged the owning scope;
            // nothing more to report at teardown.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_ready.wait(st).expect("pool lock");
            }
        };
        job();
    }
}

/// Spawn handle passed to the closure of [`Pool::scoped`].
///
/// `'scope` is the lifetime data borrowed by spawned closures must
/// outlive; it is invariant (the `Cell` marker) so the compiler cannot
/// shrink it behind the pool's back.
pub struct Scope<'pool, 'scope> {
    shared: &'pool Arc<Shared>,
    state: Arc<ScopeState>,
    inline: bool,
    _marker: PhantomData<std::cell::Cell<&'scope mut ()>>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Submits `f` to the pool (or runs it immediately on a serial pool).
    ///
    /// Closures submitted from the same thread start in submission order,
    /// but may run concurrently and *finish* in any order — anything
    /// order-sensitive must be indexed by the caller (as
    /// [`Pool::ordered_map`] does).
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        pcmap_prof::bump(pcmap_prof::Counter::PoolJobs);
        if self.inline {
            f();
            return;
        }
        *self.state.pending.lock().expect("scope lock") += 1;
        let state = Arc::clone(&self.state);
        let wrapped = move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::SeqCst);
            }
            let mut pending = state.pending.lock().expect("scope lock");
            *pending -= 1;
            if *pending == 0 {
                state.all_done.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapped);
        // SAFETY: the job only borrows data outliving 'scope, and
        // `Scope::drop` (which `Pool::scoped` guarantees runs inside the
        // 'scope frame, panic or not) blocks until the job has completed —
        // so the erased borrows never dangle.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.queue.push_back(job);
        }
        self.shared.work_ready.notify_one();
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        // The join below is the epoch barrier: the span measures how long
        // the scoping thread waits for its slowest worker.
        let _span = pcmap_prof::span(pcmap_prof::SpanId::ParBarrier);
        let mut pending = self.state.pending.lock().expect("scope lock");
        while *pending > 0 {
            pending = self.state.all_done.wait(pending).expect("scope lock");
        }
        drop(pending);
        if self.state.panicked.load(Ordering::SeqCst) && !std::thread::panicking() {
            panic!("a pooled job panicked");
        }
    }
}

/// Reads the job count from the `PCMAP_JOBS` environment variable, if set
/// to a positive integer. CLI `--jobs` flags take precedence over this.
#[must_use]
pub fn env_jobs() -> Option<usize> {
    // pcmap-lint: allow(nondet-taint, reason = "PCMAP_JOBS only sizes the worker pool; the DESIGN.md §9 contract (enforced by par_equiv) makes results byte-identical at any job count")
    std::env::var("PCMAP_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let mut pool = Pool::new(1);
        assert!(pool.is_serial());
        let log = Mutex::new(Vec::new());
        pool.scoped(|s| {
            for i in 0..8 {
                let log = &log;
                s.execute(move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(log.into_inner().unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn parallel_pool_joins_all_jobs() {
        let mut pool = Pool::new(4);
        let hits = AtomicU64::new(0);
        pool.scoped(|s| {
            for _ in 0..64 {
                let hits = &hits;
                s.execute(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn ordered_map_preserves_input_order() {
        for jobs in [1, 2, 4, 7] {
            let mut pool = Pool::new(jobs);
            let input: Vec<u64> = (0..40).collect();
            let out = pool.ordered_map(input.clone(), |x| {
                // Make late items finish first to stress ordering.
                if x % 2 == 0 {
                    std::thread::yield_now();
                }
                x * 3
            });
            let expect: Vec<u64> = input.iter().map(|x| x * 3).collect();
            assert_eq!(out, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn scoped_borrows_disjoint_slots_mutably() {
        let mut pool = Pool::new(3);
        let mut slots = [0u64; 12];
        pool.scoped(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.execute(move || *slot = i as u64 + 1);
            }
        });
        for (i, v) in slots.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    #[test]
    fn pool_survives_across_scopes() {
        let mut pool = Pool::new(2);
        for round in 0..50u64 {
            let total = AtomicU64::new(0);
            pool.scoped(|s| {
                for k in 0..4 {
                    let total = &total;
                    s.execute(move || {
                        total.fetch_add(round + k, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(total.load(Ordering::SeqCst), 4 * round + 6);
        }
    }

    #[test]
    fn panics_propagate_to_the_scoping_thread() {
        let result = std::panic::catch_unwind(|| {
            let mut pool = Pool::new(2);
            pool.scoped(|s| {
                s.execute(|| panic!("boom"));
            });
        });
        assert!(result.is_err(), "scope must re-raise worker panics");
    }

    #[test]
    fn env_jobs_rejects_garbage() {
        // Not set in the test environment (and never set by this suite —
        // setenv is not thread-safe under the parallel test harness).
        assert!(env_jobs().is_none() || env_jobs().unwrap() >= 1);
    }
}
