//! Device-level behaviour tests: differential-write physics, reservation
//! semantics under adversarial interleavings, and wear/energy accounting.

use pcmap_device::rank::WriteKind;
use pcmap_device::{PcmRank, RankTiming};
use pcmap_types::{
    BankId, CacheLine, ChipId, ChipSet, ColAddr, Cycle, MemOrg, RowAddr, TimingParams, Xoshiro256,
};
use proptest::prelude::*;

const B: BankId = BankId(0);
const R: RowAddr = RowAddr(1);
const C: ColAddr = ColAddr(0);

#[test]
fn write_kinds_follow_bit_transitions() {
    let mut rank = PcmRank::new(MemOrg::tiny());
    let old = rank.read_line(B, R, C).data;

    // Pure clears → RESET-only; any set bit → SET-dominated.
    let mut clears = old;
    clears.set_word(0, old.word(0) & !(old.word(0) | 1).wrapping_sub(0)); // clear everything
    clears.set_word(0, 0);
    let mut sets = old;
    sets.set_word(1, old.word(1) | 0xffff);

    let out = rank.write_line(B, R, C, clears);
    if out.essential.contains(0) {
        assert_eq!(out.kinds[0], WriteKind::ResetOnly);
    }
    let out = rank.write_line(B, R, C, sets);
    if out.essential.contains(1) {
        assert_eq!(out.kinds[1], WriteKind::SetDominated);
    }
}

#[test]
fn repeated_identical_writes_are_silent_after_first() {
    let mut rank = PcmRank::new(MemOrg::tiny());
    let mut data = rank.read_line(B, R, C).data;
    data.set_word(3, !data.word(3));
    let first = rank.write_line(B, R, C, data);
    assert!(!first.silent);
    for _ in 0..3 {
        let again = rank.write_line(B, R, C, data);
        assert!(again.silent, "identical rewrite must be fully redundant");
    }
}

#[test]
fn energy_accumulates_only_for_changed_bits() {
    let mut rank = PcmRank::new(MemOrg::tiny());
    let before = *rank.energy();
    let old = rank.read_line(B, R, C).data;
    let mut data = old;
    data.set_word(2, old.word(2) ^ 0b111); // 3 bit flips
    rank.write_line(B, R, C, data);
    let after = *rank.energy();
    assert_eq!(
        after.bits_set + after.bits_reset - before.bits_set - before.bits_reset,
        3
    );
    // A silent rewrite pushed at the full line (as the chips see it)
    // senses every masked word but programs nothing.
    let mid = *rank.energy();
    rank.write_words(B, R, C, data, pcmap_types::WordMask::full());
    let fin = *rank.energy();
    assert_eq!(fin.bits_set, mid.bits_set);
    assert_eq!(fin.bits_reset, mid.bits_reset);
    assert_eq!(
        fin.bits_read - mid.bits_read,
        8 * 64,
        "read-before-write senses each word"
    );
}

#[test]
fn reservations_support_gap_scheduling() {
    // The RoW pattern: a future step-2 window must leave the present free
    // and reject overlapping work, at every boundary.
    let org = MemOrg::tiny();
    let mut t = RankTiming::new(&org);
    let pcc = ChipId::PCC;
    t.reserve(B, ChipSet::single(pcc.index()), Cycle(100), Cycle(150));
    // Exact-fit before the window.
    assert!(t.chip(B, pcc).is_free_during(Cycle(60), Cycle(100)));
    // One cycle over.
    assert!(!t.chip(B, pcc).is_free_during(Cycle(60), Cycle(101)));
    // Start inside.
    assert!(!t.chip(B, pcc).is_free_during(Cycle(149), Cycle(180)));
    // Exact-fit after.
    assert!(t.chip(B, pcc).is_free_during(Cycle(150), Cycle(220)));
    // Fill the gap, then the whole timeline is solid.
    t.reserve(B, ChipSet::single(pcc.index()), Cycle(60), Cycle(100));
    assert_eq!(
        t.free_at(B, ChipSet::single(pcc.index()), Cycle(0)),
        Cycle(150)
    );
}

proptest! {
    #[test]
    fn prop_non_overlapping_reservations_always_accepted(
        starts in proptest::collection::vec(0u64..1000, 1..20)
    ) {
        // Disjoint fixed-width windows derived from sorted unique starts
        // must all be accepted regardless of insertion order.
        let org = MemOrg::tiny();
        let mut t = RankTiming::new(&org);
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // Map k-th window to [k*10, k*10+7).
        let mut order = sorted.clone();
        // Insert in the original (arbitrary) relative order.
        order.reverse();
        for (k, _) in order.iter().enumerate() {
            let base = (k as u64) * 10;
            t.reserve(B, ChipSet::single(0), Cycle(base), Cycle(base + 7));
        }
        // All boundaries visible.
        prop_assert!(t.chip(B, ChipId(0)).is_free_during(Cycle(7), Cycle(10)));
    }

    #[test]
    fn prop_differential_write_is_idempotent(seed: u64, bits in 0u16..256) {
        let mut rank = PcmRank::with_seed(MemOrg::tiny(), seed);
        let old = rank.read_line(B, R, C).data;
        let mut data = old;
        for i in pcmap_types::WordMask::from_bits(bits).iter() {
            data.set_word(i, old.word(i).wrapping_add(seed | 1));
        }
        let first = rank.write_line(B, R, C, data);
        let second = rank.write_line(B, R, C, data);
        prop_assert!(second.silent);
        prop_assert_eq!(rank.read_line(B, R, C).data, data);
        // Essential set of the first write == requested changes.
        let expect = old.diff_words(&data);
        prop_assert_eq!(first.essential, expect);
    }

    #[test]
    fn prop_storage_isolated_per_coordinate(seed: u64, n in 1usize..20) {
        // Writes to random coordinates never leak into other lines.
        let org = MemOrg::tiny();
        let mut rank = PcmRank::with_seed(org, seed);
        let mut rng = Xoshiro256::new(seed);
        let mut written: Vec<((BankId, RowAddr, ColAddr), CacheLine)> = Vec::new();
        for _ in 0..n {
            let coord = (
                BankId(rng.next_below(org.banks as u64) as u8),
                RowAddr(rng.next_below(org.rows_per_bank as u64) as u32),
                ColAddr(rng.next_below(org.lines_per_row as u64) as u32),
            );
            let mut data = rank.read_line(coord.0, coord.1, coord.2).data;
            data.set_word(0, rng.next_u64());
            rank.write_line(coord.0, coord.1, coord.2, data);
            written.retain(|(c, _)| *c != coord);
            written.push((coord, data));
        }
        for ((b, r, c), data) in written {
            prop_assert_eq!(rank.read_line(b, r, c).data, data);
        }
    }

    #[test]
    fn prop_write_duration_bounded_by_set(seed: u64, bits in 1u16..256) {
        let mut rank = PcmRank::with_seed(MemOrg::tiny(), seed);
        let old = rank.read_line(B, R, C).data;
        let mut data = old;
        for i in pcmap_types::WordMask::from_bits(bits).iter() {
            data.set_word(i, !old.word(i));
        }
        let out = rank.write_line(B, R, C, data);
        let p = TimingParams::paper_default();
        prop_assert!(out.max_word_duration(&p).as_u64() <= p.array_set);
    }
}
