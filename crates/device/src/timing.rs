//! Per-chip, per-bank occupancy and row-buffer state.
//!
//! With PCMap's rank subsetting each chip is an independent sub-rank, so a
//! bank's row buffer and busy windows exist *per chip*: chip 3 can be
//! mid-way through a long SET while chip 5 of the same bank serves a
//! different request.
//!
//! Occupancy is kept as **reservation intervals** rather than a single
//! busy-until scalar because PCMap schedules a write's phases at issue
//! time: the PCC chip is reserved for *step 2* (after the data phase) while
//! remaining genuinely free during *step 1* — which is exactly the window
//! RoW reads borrow it in (§IV-B1 of the paper).

use pcmap_types::{BankId, ChipId, ChipSet, Cycle, MemOrg, RowAddr};

/// Timing state of one bank on one chip (one sub-rank).
#[derive(Debug, Clone, Default)]
pub struct ChipBankState {
    /// The row currently latched in this chip's row buffer for this bank.
    pub open_row: Option<RowAddr>,
    /// Committed occupancy windows `[start, end)`, kept sorted by start.
    res: Vec<(Cycle, Cycle)>,
}

impl ChipBankState {
    /// `true` if no reservation covers `now`.
    #[must_use]
    pub fn is_free(&self, now: Cycle) -> bool {
        self.res.iter().all(|&(s, e)| now < s || now >= e)
    }

    /// `true` if `[start, end)` overlaps no reservation.
    #[must_use]
    pub fn is_free_during(&self, start: Cycle, end: Cycle) -> bool {
        self.res.iter().all(|&(s, e)| end <= s || start >= e)
    }

    /// The time at which this chip is clear of every reservation still
    /// active or scheduled at/after `now`.
    #[must_use]
    pub fn clear_from(&self, now: Cycle) -> Cycle {
        self.res
            .iter()
            .filter(|&&(_, e)| e > now)
            .map(|&(_, e)| e)
            .max()
            .unwrap_or(now)
            .max(now)
    }

    /// The earliest reservation boundary strictly after `now`, if any.
    #[must_use]
    pub fn next_boundary(&self, now: Cycle) -> Option<Cycle> {
        self.res
            .iter()
            .flat_map(|&(s, e)| [s, e])
            .filter(|t| *t > now)
            .min()
    }

    /// Latest end over reservations overlapping `[from, until)`, or `None`
    /// when the window is free — i.e. the earliest time a window of the
    /// same length could start clear of every current conflict.
    #[must_use]
    pub fn blocked_until(&self, from: Cycle, until: Cycle) -> Option<Cycle> {
        self.res
            .iter()
            .filter(|&&(s, e)| s < until && e > from)
            .map(|&(_, e)| e)
            .max()
    }

    fn insert(&mut self, start: Cycle, end: Cycle) {
        debug_assert!(
            self.is_free_during(start, end),
            "chip double-booked: [{start:?},{end:?}) overlaps {:?}",
            self.res
        );
        let pos = self.res.partition_point(|&(s, _)| s < start);
        self.res.insert(pos, (start, end));
    }

    fn prune(&mut self, now: Cycle) {
        self.res.retain(|&(_, e)| e > now);
    }

    /// Cancels all occupancy at or after `from`: future reservations are
    /// dropped and an active one is truncated to end at `from`. The
    /// rank watchdog uses this to free a stuck-busy chip. Returns the
    /// total cycles of occupancy removed (profiler book-keeping).
    fn release_from(&mut self, from: Cycle) -> u64 {
        let mut removed = 0u64;
        self.res.retain_mut(|(s, e)| {
            if *s >= from {
                removed += e.0 - s.0;
                return false;
            }
            if *e > from {
                removed += e.0 - from.0;
                *e = from;
            }
            *e > *s
        });
        removed
    }
}

/// The occupancy window committed by one [`RankTiming::reserve`] call —
/// the reservation commit point's receipt. Controllers forward it to the
/// request lifecycle tracer so per-chip service intervals come from
/// exactly where the timing model booked them (DESIGN.md §13). Empty
/// (`set` empty, `start == end`) when the requested window was
/// zero-length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservedWindow {
    /// Bank the chips were reserved on.
    pub bank: BankId,
    /// The chips booked.
    pub set: ChipSet,
    /// Window start (inclusive).
    pub start: Cycle,
    /// Window end (exclusive).
    pub end: Cycle,
}

/// Occupancy and row state for every (bank, chip) pair of a rank.
#[derive(Debug, Clone)]
pub struct RankTiming {
    banks: usize,
    chips: usize,
    state: Vec<ChipBankState>,
}

impl RankTiming {
    /// Creates idle timing state for a rank: `org.banks` banks ×
    /// [`ChipId::TOTAL_CHIPS`] chips.
    pub fn new(org: &MemOrg) -> Self {
        let banks = org.banks as usize;
        let chips = ChipId::TOTAL_CHIPS;
        Self {
            banks,
            chips,
            state: vec![ChipBankState::default(); banks * chips],
        }
    }

    #[inline]
    fn idx(&self, bank: BankId, chip: ChipId) -> usize {
        debug_assert!(bank.index() < self.banks && chip.index() < self.chips);
        bank.index() * self.chips + chip.index()
    }

    /// State of one (bank, chip) pair.
    #[inline]
    pub fn chip(&self, bank: BankId, chip: ChipId) -> &ChipBankState {
        &self.state[self.idx(bank, chip)]
    }

    /// Mutable state of one (bank, chip) pair.
    #[inline]
    pub fn chip_mut(&mut self, bank: BankId, chip: ChipId) -> &mut ChipBankState {
        let i = self.idx(bank, chip);
        &mut self.state[i]
    }

    /// Returns `true` if `chip` is idle for `bank` at time `now`.
    #[must_use]
    #[inline]
    pub fn is_free(&self, bank: BankId, chip: ChipId, now: Cycle) -> bool {
        self.chip(bank, chip).is_free(now)
    }

    /// Returns `true` if every chip in `set` is free for the whole of
    /// `[start, end)` on `bank`.
    #[must_use]
    pub fn set_free_during(&self, bank: BankId, set: ChipSet, start: Cycle, end: Cycle) -> bool {
        set.chips()
            .all(|c| self.chip(bank, c).is_free_during(start, end))
    }

    /// The set of chips of `bank` that are busy at `now` — exactly what the
    /// DIMM register's status flags report.
    #[must_use]
    pub fn busy_set(&self, bank: BankId, now: Cycle) -> ChipSet {
        let mut set = ChipSet::empty();
        for c in 0..self.chips {
            let chip = ChipId(c as u8);
            if !self.is_free(bank, chip, now) {
                set.insert_chip(chip);
            }
        }
        set
    }

    /// Earliest time at or after `now` when *all* chips in `set` are clear
    /// of every reservation still pending on `bank`.
    #[must_use]
    pub fn free_at(&self, bank: BankId, set: ChipSet, now: Cycle) -> Cycle {
        let mut t = now;
        for chip in set.chips() {
            t = t.max(self.chip(bank, chip).clear_from(now));
        }
        t
    }

    /// Reserves every chip in `set` for `bank` over `[start, until)` and
    /// returns the committed window. This is the single point where busy
    /// intervals are committed, so observers tapping the return value
    /// (per-request lifecycle chip-service intervals, DESIGN.md §13) see
    /// exactly what the timing model booked; a zero-length request
    /// returns an empty window and books nothing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the window overlaps an existing
    /// reservation (double-booking).
    pub fn reserve(
        &mut self,
        bank: BankId,
        set: ChipSet,
        start: Cycle,
        until: Cycle,
    ) -> ReservedWindow {
        if until <= start {
            return ReservedWindow {
                bank,
                set: ChipSet::empty(),
                start,
                end: start,
            };
        }
        for chip in set.chips() {
            self.chip_mut(bank, chip).insert(start, until);
        }
        // Occupancy book-keeping (observer only; inert when profiling is
        // off).
        if pcmap_prof::enabled() {
            pcmap_prof::bump(pcmap_prof::Counter::Reservations);
            for chip in set.chips() {
                pcmap_prof::note_busy(bank.index(), chip.index(), until.0 - start.0);
            }
        }
        ReservedWindow {
            bank,
            set,
            start,
            end: until,
        }
    }

    /// Latches `row` into the row buffers of `set` for `bank`.
    pub fn open_row(&mut self, bank: BankId, set: ChipSet, row: RowAddr) {
        for chip in set.chips() {
            self.chip_mut(bank, chip).open_row = Some(row);
        }
    }

    /// The subset of `set` whose row buffer for `bank` does *not* currently
    /// hold `row` (and therefore needs an activate).
    #[must_use]
    pub fn chips_needing_activate(&self, bank: BankId, set: ChipSet, row: RowAddr) -> ChipSet {
        let mut need = ChipSet::empty();
        for chip in set.chips() {
            if self.chip(bank, chip).open_row != Some(row) {
                need.insert_chip(chip);
            }
        }
        need
    }

    /// Force-frees `chip` on `bank` from `from` onward — the watchdog
    /// action for a stuck-busy chip: its hung reservation is cut short
    /// and anything it had queued later is cancelled.
    pub fn force_free(&mut self, bank: BankId, chip: ChipId, from: Cycle) {
        let removed = self.chip_mut(bank, chip).release_from(from);
        if removed > 0 {
            pcmap_prof::note_unbusy(bank.index(), chip.index(), removed);
        }
    }

    /// The earliest reservation boundary strictly after `now` across the
    /// whole rank (scheduling wake hint).
    #[must_use]
    pub fn next_boundary(&self, now: Cycle) -> Option<Cycle> {
        self.state.iter().filter_map(|s| s.next_boundary(now)).min()
    }

    /// Event-engine hint (DESIGN.md §14): the next cycle strictly after
    /// `now` at which any chip of the rank changes occupancy state.
    /// Alias of [`Self::next_boundary`] under the component `next_tick`
    /// naming convention.
    #[must_use]
    pub fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        self.next_boundary(now)
    }

    /// Latest end over reservations on `bank` × `set` that overlap
    /// `[from, until)`, or `None` when the whole window is free on every
    /// chip of the set. The event engine derives precise retry hints from
    /// this: a request whose feasibility window `[from, until)` shifts
    /// rigidly with `now` becomes issueable (w.r.t. the *current*
    /// reservations) once the window start reaches the returned cycle.
    #[must_use]
    pub fn blocked_until(
        &self,
        bank: BankId,
        set: ChipSet,
        from: Cycle,
        until: Cycle,
    ) -> Option<Cycle> {
        set.chips()
            .filter_map(|c| self.chip(bank, c).blocked_until(from, until))
            .max()
    }

    /// Drops reservations that ended at or before `now`.
    pub fn prune(&mut self, now: Cycle) {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::DeviceAdvance);
        for s in &mut self.state {
            s.prune(now);
        }
    }

    /// Number of banks tracked.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Number of chips tracked per bank.
    pub fn chips(&self) -> usize {
        self.chips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::MemOrg;

    fn timing() -> RankTiming {
        RankTiming::new(&MemOrg::tiny())
    }

    #[test]
    fn starts_idle() {
        let t = timing();
        assert!(t.is_free(BankId(0), ChipId(0), Cycle::ZERO));
        assert_eq!(t.busy_set(BankId(0), Cycle::ZERO), ChipSet::empty());
        assert_eq!(t.next_boundary(Cycle::ZERO), None);
    }

    #[test]
    fn reserve_marks_interval_busy() {
        let mut t = timing();
        let set = ChipSet::single(3);
        t.reserve(BankId(0), set, Cycle(10), Cycle(50));
        assert!(t.is_free(BankId(0), ChipId(3), Cycle(9)));
        assert!(!t.is_free(BankId(0), ChipId(3), Cycle(10)));
        assert!(!t.is_free(BankId(0), ChipId(3), Cycle(49)));
        assert!(t.is_free(BankId(0), ChipId(3), Cycle(50)));
        // Other chips and banks unaffected.
        assert!(t.is_free(BankId(0), ChipId(2), Cycle(20)));
        assert!(t.is_free(BankId(1), ChipId(3), Cycle(20)));
    }

    #[test]
    fn future_reservation_leaves_present_free() {
        let mut t = timing();
        // The PCC-style pattern: step 2 reserved ahead of time.
        t.reserve(BankId(0), ChipSet::single(9), Cycle(56), Cycle(112));
        assert!(t.is_free(BankId(0), ChipId(9), Cycle(0)));
        // A read fitting before the future window is allowed…
        assert!(t
            .chip(BankId(0), ChipId(9))
            .is_free_during(Cycle(0), Cycle(33)));
        t.reserve(BankId(0), ChipSet::single(9), Cycle(0), Cycle(33));
        // …but one overlapping it is not.
        assert!(!t
            .chip(BankId(0), ChipId(9))
            .is_free_during(Cycle(40), Cycle(80)));
    }

    #[test]
    fn busy_set_reports_flags() {
        let mut t = timing();
        let mut set = ChipSet::empty();
        set.insert(1);
        set.insert(9);
        t.reserve(BankId(1), set, Cycle(0), Cycle(10));
        assert_eq!(t.busy_set(BankId(1), Cycle(5)), set);
        assert_eq!(t.busy_set(BankId(1), Cycle(10)), ChipSet::empty());
    }

    #[test]
    fn free_at_takes_max_clear_time_over_set() {
        let mut t = timing();
        t.reserve(BankId(0), ChipSet::single(0), Cycle(0), Cycle(30));
        t.reserve(BankId(0), ChipSet::single(1), Cycle(0), Cycle(70));
        let both: ChipSet = [0usize, 1].into_iter().collect();
        assert_eq!(t.free_at(BankId(0), both, Cycle(10)), Cycle(70));
        assert_eq!(
            t.free_at(BankId(0), ChipSet::single(0), Cycle(40)),
            Cycle(40)
        );
        // free_at accounts for future reservations too.
        t.reserve(BankId(0), ChipSet::single(2), Cycle(100), Cycle(120));
        assert_eq!(
            t.free_at(BankId(0), ChipSet::single(2), Cycle(0)),
            Cycle(120)
        );
    }

    #[test]
    fn next_boundary_reports_edges() {
        let mut t = timing();
        t.reserve(BankId(0), ChipSet::single(4), Cycle(20), Cycle(44));
        assert_eq!(t.next_boundary(Cycle(0)), Some(Cycle(20)));
        assert_eq!(t.next_boundary(Cycle(20)), Some(Cycle(44)));
        assert_eq!(t.next_boundary(Cycle(44)), None);
    }

    #[test]
    fn blocked_until_reports_latest_conflicting_end() {
        let mut t = timing();
        t.reserve(BankId(0), ChipSet::single(0), Cycle(10), Cycle(40));
        t.reserve(BankId(0), ChipSet::single(1), Cycle(20), Cycle(90));
        let both: ChipSet = [0usize, 1].into_iter().collect();
        // Window clear of both chips → None.
        assert_eq!(
            t.blocked_until(BankId(0), both, Cycle(90), Cycle(120)),
            None
        );
        // Window overlapping both → the later conflicting end wins.
        assert_eq!(
            t.blocked_until(BankId(0), both, Cycle(30), Cycle(50)),
            Some(Cycle(90))
        );
        // Only chip 0 consulted → its own end.
        assert_eq!(
            t.blocked_until(BankId(0), ChipSet::single(0), Cycle(30), Cycle(50)),
            Some(Cycle(40))
        );
        // Touching edges ([40,50) after chip 0's [10,40)) do not conflict.
        assert_eq!(
            t.blocked_until(BankId(0), ChipSet::single(0), Cycle(40), Cycle(50)),
            None
        );
    }

    #[test]
    fn next_tick_is_next_boundary() {
        let mut t = timing();
        assert_eq!(t.next_tick(Cycle(0)), None);
        t.reserve(BankId(0), ChipSet::single(4), Cycle(20), Cycle(44));
        assert_eq!(t.next_tick(Cycle(0)), Some(Cycle(20)));
        assert_eq!(t.next_tick(Cycle(20)), t.next_boundary(Cycle(20)));
    }

    #[test]
    fn prune_drops_expired_windows() {
        let mut t = timing();
        t.reserve(BankId(0), ChipSet::single(0), Cycle(0), Cycle(10));
        t.reserve(BankId(0), ChipSet::single(0), Cycle(20), Cycle(30));
        t.prune(Cycle(15));
        assert_eq!(t.chip(BankId(0), ChipId(0)).clear_from(Cycle(0)), Cycle(30));
        assert!(t.is_free(BankId(0), ChipId(0), Cycle(5)));
    }

    #[test]
    fn row_buffer_tracking() {
        let mut t = timing();
        let all = ChipSet::full();
        assert_eq!(t.chips_needing_activate(BankId(0), all, RowAddr(7)), all);
        t.open_row(BankId(0), ChipSet::single(2), RowAddr(7));
        let need = t.chips_needing_activate(BankId(0), all, RowAddr(7));
        assert_eq!(need.count(), 9);
        assert!(!need.contains(2));
        assert_eq!(t.chips_needing_activate(BankId(0), all, RowAddr(8)), all);
    }

    #[test]
    fn force_free_truncates_and_cancels() {
        let mut t = timing();
        let chip = ChipId(5);
        t.reserve(BankId(0), ChipSet::single(5), Cycle(10), Cycle(100));
        t.reserve(BankId(0), ChipSet::single(5), Cycle(120), Cycle(150));
        t.force_free(BankId(0), chip, Cycle(40));
        // Active window cut short at the watchdog fire time…
        assert!(!t.is_free(BankId(0), chip, Cycle(39)));
        assert!(t.is_free(BankId(0), chip, Cycle(40)));
        // …and the queued future window is cancelled outright.
        assert!(t.is_free(BankId(0), chip, Cycle(130)));
        assert_eq!(t.chip(BankId(0), chip).clear_from(Cycle(0)), Cycle(40));
    }

    #[test]
    fn force_free_before_start_erases_whole_window() {
        let mut t = timing();
        t.reserve(BankId(1), ChipSet::single(2), Cycle(50), Cycle(90));
        t.force_free(BankId(1), ChipId(2), Cycle(50));
        assert_eq!(t.next_boundary(Cycle(0)), None);
    }

    #[test]
    fn zero_length_reservation_is_noop() {
        let mut t = timing();
        t.reserve(BankId(0), ChipSet::single(0), Cycle(5), Cycle(5));
        assert!(t.is_free(BankId(0), ChipId(0), Cycle(5)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double-booked")]
    fn double_booking_panics_in_debug() {
        let mut t = timing();
        t.reserve(BankId(0), ChipSet::single(0), Cycle(0), Cycle(50));
        t.reserve(BankId(0), ChipSet::single(0), Cycle(10), Cycle(60));
    }
}
