//! PCM device model: chips, banks, ranks, and the DIMM register.
//!
//! This crate is the simulator's stand-in for the physical PCM DIMM of the
//! paper (Figure 7): a rank of **ten ×8 chips** — eight data chips, one
//! SECDED ECC chip, one PCC parity chip — each chip independently
//! addressable as a one-chip sub-rank, with a DIMM register exposing
//! per-bank chip busy/idle *status flags* that the memory controller polls
//! with a `Status` command.
//!
//! The model is *functional as well as temporal*: ranks store real bytes
//! ([`storage`]), so differential writes compute their essential-word sets
//! from data rather than assuming them, and ECC/PCC contents are genuinely
//! maintained and verifiable. Timing state (per-chip busy windows, open
//! rows) lives in [`timing`] and is driven by the memory controller crate.
//!
//! # Example
//!
//! ```
//! use pcmap_device::PcmRank;
//! use pcmap_types::{BankId, ColAddr, MemOrg, RowAddr};
//!
//! let mut rank = PcmRank::new(MemOrg::tiny());
//! let coord = (BankId(0), RowAddr(3), ColAddr(1));
//! let old = rank.read_line(coord.0, coord.1, coord.2);
//! let mut new = old.data;
//! new.set_word(5, !old.data.word(5));
//! // A differential write discovers that only word 5 is essential.
//! let outcome = rank.write_line(coord.0, coord.1, coord.2, new);
//! assert_eq!(outcome.essential.count(), 1);
//! assert!(outcome.essential.contains(5));
//! ```

#![warn(missing_docs)]
#![deny(unused_must_use)]

pub mod dimm;
pub mod energy;
pub mod rank;
pub mod storage;
pub mod timing;
pub mod wear;

pub use dimm::DimmRegister;
pub use energy::{EnergyMeter, EnergyParams};
pub use rank::{PcmRank, ReadOut, WriteOutcome};
pub use storage::{RankStorage, StoredLine};
pub use timing::{ChipBankState, RankTiming, ReservedWindow};
pub use wear::WearTracker;
