//! The DIMM register: per-bank chip status flags and command demux.
//!
//! §IV-D1 of the paper: each rank carries an on-DIMM register with (1) a
//! demultiplexer that routes commands to individual chips (sub-ranks), and
//! (2) one status register per bank with one busy bit per chip, set by the
//! chip itself when its differential write finds work to do and cleared
//! when the write completes. The controller reads a bank's flags with a
//! `Status` command costing 2 memory cycles.

use crate::timing::RankTiming;
use pcmap_types::{BankId, ChipSet, Cycle, Duration, TimingParams};

/// The per-rank DIMM register.
///
/// The busy flags are *derived* from the rank's timing state — the chips
/// "own" their completion times — but the register also counts how often the
/// controller polls, so the status-command overhead can be charged and
/// ablated.
#[derive(Debug, Clone, Default)]
pub struct DimmRegister {
    polls: u64,
}

impl DimmRegister {
    /// Creates a register with zeroed poll counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes a `Status` command for `bank`: returns the busy flags and
    /// the time at which the controller has them in hand.
    pub fn poll(
        &mut self,
        timing: &RankTiming,
        bank: BankId,
        now: Cycle,
        params: &TimingParams,
    ) -> (ChipSet, Cycle) {
        self.polls += 1;
        (
            timing.busy_set(bank, now),
            now + Duration(params.status_cmd),
        )
    }

    /// Total number of `Status` commands issued through this register.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::{ChipId, MemOrg};

    #[test]
    fn poll_reports_busy_flags_and_costs_two_cycles() {
        let org = MemOrg::tiny();
        let mut timing = RankTiming::new(&org);
        let mut reg = DimmRegister::new();
        let params = TimingParams::paper_default();

        timing.reserve(BankId(0), ChipSet::single(4), Cycle(0), Cycle(48));
        let (flags, ready) = reg.poll(&timing, BankId(0), Cycle(10), &params);
        assert!(flags.contains_chip(ChipId(4)));
        assert_eq!(flags.count(), 1);
        assert_eq!(ready, Cycle(12));
        assert_eq!(reg.poll_count(), 1);
    }

    #[test]
    fn poll_of_idle_bank_is_empty() {
        let org = MemOrg::tiny();
        let timing = RankTiming::new(&org);
        let mut reg = DimmRegister::new();
        let params = TimingParams::paper_default();
        let (flags, _) = reg.poll(&timing, BankId(1), Cycle(0), &params);
        assert!(flags.is_empty());
    }
}
