//! PCM energy accounting.
//!
//! The paper's motivation (§I, §III-A) leans on PCM's write energy: a PCM
//! chip would need ~5× DRAM's power to match its write bandwidth. This
//! meter attributes energy at the granularity the architecture actually
//! controls — bits sensed on reads and bits programmed (SET vs RESET) on
//! differential writes — plus background power over elapsed time.
//!
//! Per-bit energies follow Lee et al., "Architecting Phase Change Memory
//! as a Scalable DRAM Alternative" (ISCA 2009), the paper's reference [2]:
//! array read ≈ 2.47 pJ/bit; RESET ≈ 19.2 pJ/bit; SET ≈ 13.5 pJ/bit.

/// Per-operation energy coefficients in picojoules per bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Sensing a bit during an array read.
    pub read_pj_per_bit: f64,
    /// Programming a bit with a SET pulse (slow crystallization).
    pub set_pj_per_bit: f64,
    /// Programming a bit with a RESET pulse (fast melt-quench).
    pub reset_pj_per_bit: f64,
    /// Background power for the whole rank, in milliwatts (peripheral
    /// circuitry; PCM cells themselves need no refresh).
    pub background_mw: f64,
}

impl EnergyParams {
    /// Coefficients from Lee et al. (ISCA 2009), Table 3.
    pub fn lee_isca09() -> Self {
        Self {
            read_pj_per_bit: 2.47,
            set_pj_per_bit: 13.5,
            reset_pj_per_bit: 19.2,
            background_mw: 50.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::lee_isca09()
    }
}

/// Accumulated energy-relevant event counts for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyMeter {
    /// Bits sensed by array reads.
    pub bits_read: u64,
    /// Bits programmed with SET pulses.
    pub bits_set: u64,
    /// Bits programmed with RESET pulses.
    pub bits_reset: u64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an array read of `bits` bits.
    pub fn record_read(&mut self, bits: u64) {
        self.bits_read += bits;
    }

    /// Records a differential write programming `set` bits 0→1 and
    /// `reset` bits 1→0.
    pub fn record_write(&mut self, set: u64, reset: u64) {
        self.bits_set += set;
        self.bits_reset += reset;
    }

    /// Dynamic energy in nanojoules under `params`.
    pub fn dynamic_nj(&self, params: &EnergyParams) -> f64 {
        (self.bits_read as f64 * params.read_pj_per_bit
            + self.bits_set as f64 * params.set_pj_per_bit
            + self.bits_reset as f64 * params.reset_pj_per_bit)
            / 1000.0
    }

    /// Background energy in nanojoules over `elapsed_ns` nanoseconds.
    pub fn background_nj(params: &EnergyParams, elapsed_ns: f64) -> f64 {
        // mW × ns = pJ.
        params.background_mw * elapsed_ns / 1000.0
    }

    /// Total energy (dynamic + background) in nanojoules.
    pub fn total_nj(&self, params: &EnergyParams, elapsed_ns: f64) -> f64 {
        self.dynamic_nj(params) + Self::background_nj(params, elapsed_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_meter_is_free() {
        let m = EnergyMeter::new();
        assert_eq!(m.dynamic_nj(&EnergyParams::default()), 0.0);
    }

    #[test]
    fn write_energy_dominates_reads_per_bit() {
        let p = EnergyParams::lee_isca09();
        let mut reads = EnergyMeter::new();
        reads.record_read(1000);
        let mut writes = EnergyMeter::new();
        writes.record_write(500, 500);
        assert!(
            writes.dynamic_nj(&p) > 5.0 * reads.dynamic_nj(&p),
            "PCM programming must be several times costlier than sensing"
        );
    }

    #[test]
    fn reset_costs_more_than_set() {
        let p = EnergyParams::lee_isca09();
        let mut s = EnergyMeter::new();
        s.record_write(100, 0);
        let mut r = EnergyMeter::new();
        r.record_write(0, 100);
        assert!(r.dynamic_nj(&p) > s.dynamic_nj(&p));
    }

    #[test]
    fn accumulation_and_background() {
        let p = EnergyParams::lee_isca09();
        let mut m = EnergyMeter::new();
        m.record_read(64);
        m.record_read(64);
        m.record_write(10, 20);
        assert_eq!(m.bits_read, 128);
        assert_eq!(m.bits_set, 10);
        assert_eq!(m.bits_reset, 20);
        let dynamic = m.dynamic_nj(&p);
        let total = m.total_nj(&p, 1_000_000.0); // 1 ms
        assert!(total > dynamic);
        // 50 mW for 1 ms = 50 µJ = 50_000 nJ.
        assert!((EnergyMeter::background_nj(&p, 1_000_000.0) - 50_000.0).abs() < 1e-6);
    }
}
