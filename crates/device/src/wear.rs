//! Write-endurance accounting.
//!
//! PCM cells wear out with programming; the paper argues (§IV-C2) that
//! rotating ECC/PCC across chips balances write traffic and should *improve*
//! lifetime relative to a fixed ECC chip. This tracker counts word writes
//! and programmed bits per chip so that claim is measurable.

use pcmap_types::ChipId;

/// Per-chip write counters for one rank.
#[derive(Debug, Clone)]
pub struct WearTracker {
    word_writes: [u64; ChipId::TOTAL_CHIPS],
    bits_programmed: [u64; ChipId::TOTAL_CHIPS],
}

impl Default for WearTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl WearTracker {
    /// Creates a tracker with zeroed counters.
    pub fn new() -> Self {
        Self {
            word_writes: [0; ChipId::TOTAL_CHIPS],
            bits_programmed: [0; ChipId::TOTAL_CHIPS],
        }
    }

    /// Records a word write on `chip` that programmed `bits` cells.
    pub fn record(&mut self, chip: ChipId, bits: u32) {
        self.word_writes[chip.index()] += 1;
        self.bits_programmed[chip.index()] += bits as u64;
    }

    /// Word writes absorbed by `chip`.
    pub fn word_writes(&self, chip: ChipId) -> u64 {
        self.word_writes[chip.index()]
    }

    /// Bits programmed on `chip`.
    pub fn bits_programmed(&self, chip: ChipId) -> u64 {
        self.bits_programmed[chip.index()]
    }

    /// Total word writes across all chips.
    pub fn total_word_writes(&self) -> u64 {
        self.word_writes.iter().sum()
    }

    /// Imbalance metric: max over chips of word writes divided by the mean
    /// (1.0 = perfectly balanced). Returns 0 if nothing was written.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_word_writes();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / ChipId::TOTAL_CHIPS as f64;
        let max = *self.word_writes.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut w = WearTracker::new();
        w.record(ChipId(0), 5);
        w.record(ChipId(0), 3);
        w.record(ChipId::ECC, 1);
        assert_eq!(w.word_writes(ChipId(0)), 2);
        assert_eq!(w.bits_programmed(ChipId(0)), 8);
        assert_eq!(w.word_writes(ChipId::ECC), 1);
        assert_eq!(w.total_word_writes(), 3);
    }

    #[test]
    fn imbalance_detects_hot_chip() {
        let mut hot = WearTracker::new();
        for _ in 0..100 {
            hot.record(ChipId::ECC, 1); // fixed ECC chip takes every write
        }
        let mut balanced = WearTracker::new();
        for i in 0..100u64 {
            balanced.record(ChipId((i % 10) as u8), 1);
        }
        assert!(hot.imbalance() > balanced.imbalance());
        assert!((balanced.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(WearTracker::new().imbalance(), 0.0);
    }
}
