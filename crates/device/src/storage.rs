//! Functional backing store for a PCM rank.
//!
//! Lines are stored sparsely: a line that has never been written reads as a
//! deterministic pseudo-random pattern derived from its coordinates (so an
//! 8 GB address space costs nothing until touched, yet differential writes
//! against "old" data always have something real to diff against).

use pcmap_ecc::LineCodec;
use pcmap_types::{BankId, CacheLine, ColAddr, MemOrg, RowAddr};
use std::collections::BTreeMap;

/// A stored cache line together with its ECC and PCC words (the contents of
/// the ninth and tenth chips for this line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredLine {
    /// The 64 data bytes.
    pub data: CacheLine,
    /// Packed SECDED check bytes (ECC chip content).
    pub ecc: u64,
    /// XOR parity word (PCC chip content).
    pub pcc: u64,
}

/// Sparse storage for every line of one rank.
#[derive(Debug, Clone)]
pub struct RankStorage {
    org: MemOrg,
    codec: LineCodec,
    lines: BTreeMap<u64, StoredLine>,
    /// Wear-induced stuck-at cells: line key → `(word, bit, value)`.
    /// Applied on every [`Self::store`], so writes to a worn cell
    /// silently fail while the freshly computed ECC/PCC words still
    /// describe the *intended* data.
    stuck: BTreeMap<u64, Vec<(u8, u8, bool)>>,
    /// Seed mixed into default content so different ranks hold different
    /// pristine data.
    seed: u64,
}

impl RankStorage {
    /// Creates storage for a rank of the given organization.
    pub fn new(org: MemOrg) -> Self {
        Self::with_seed(org, 0)
    }

    /// Creates storage whose pristine (never-written) content is derived
    /// from `seed`.
    pub fn with_seed(org: MemOrg, seed: u64) -> Self {
        Self {
            org,
            codec: LineCodec::new(),
            lines: BTreeMap::new(),
            stuck: BTreeMap::new(),
            seed,
        }
    }

    fn key(&self, bank: BankId, row: RowAddr, col: ColAddr) -> u64 {
        ((bank.0 as u64 * self.org.rows_per_bank as u64) + row.0 as u64)
            * self.org.lines_per_row as u64
            + col.0 as u64
    }

    fn pristine(&self, key: u64) -> StoredLine {
        let data = CacheLine::from_seed(key ^ self.seed.rotate_left(32) ^ 0x5bd1_e995_9d1c_a3e5);
        StoredLine {
            data,
            ecc: self.codec.ecc_word(&data),
            pcc: self.codec.pcc_word(&data),
        }
    }

    /// Reads the line at the given coordinates (pristine content if never
    /// written).
    pub fn load(&self, bank: BankId, row: RowAddr, col: ColAddr) -> StoredLine {
        let key = self.key(bank, row, col);
        self.lines
            .get(&key)
            .copied()
            .unwrap_or_else(|| self.pristine(key))
    }

    /// Overwrites the line and its ECC/PCC words. Stuck-at cells keep
    /// their frozen value, so the stored data can disagree with the
    /// line's own ECC word — exactly the failure SECDED exists to catch.
    pub fn store(&mut self, bank: BankId, row: RowAddr, col: ColAddr, mut line: StoredLine) {
        let key = self.key(bank, row, col);
        if let Some(cells) = self.stuck.get(&key) {
            for &(word, bit, value) in cells {
                let w = word as usize;
                let mask = 1u64 << bit;
                let cur = line.data.word(w);
                let forced = if value { cur | mask } else { cur & !mask };
                line.data.set_word(w, forced);
            }
        }
        self.lines.insert(key, line);
    }

    /// Number of lines that have been explicitly written.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }

    /// Flips a single data bit *without* updating ECC/PCC — models a cell
    /// failure for fault-injection tests.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8` or `bit >= 64`.
    pub fn inject_bit_error(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        word: usize,
        bit: u32,
    ) {
        assert!(word < 8 && bit < 64, "word/bit out of range");
        let mut stored = self.load(bank, row, col);
        stored
            .data
            .set_word(word, stored.data.word(word) ^ (1u64 << bit));
        self.store(bank, row, col, stored);
    }

    /// Freezes one data cell of the line at its *current* stored value —
    /// the wear-out failure mode of PCM. Subsequent [`Self::store`]s to
    /// this line silently lose writes to that cell. Idempotent per
    /// (word, bit).
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8` or `bit >= 64`.
    pub fn stick_bit(&mut self, bank: BankId, row: RowAddr, col: ColAddr, word: usize, bit: u32) {
        assert!(word < 8 && bit < 64, "word/bit out of range");
        let value = self.load(bank, row, col).data.word(word) & (1u64 << bit) != 0;
        let key = self.key(bank, row, col);
        let cells = self.stuck.entry(key).or_default();
        if !cells
            .iter()
            .any(|&(w, b, _)| (w as usize, b as u32) == (word, bit))
        {
            cells.push((word as u8, bit as u8, value));
        }
    }

    /// Total stuck-at cells injected so far.
    pub fn stuck_cells(&self) -> usize {
        self.stuck.values().map(Vec::len).sum()
    }

    /// The codec used for ECC/PCC maintenance.
    pub fn codec(&self) -> LineCodec {
        self.codec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords() -> (BankId, RowAddr, ColAddr) {
        (BankId(1), RowAddr(5), ColAddr(3))
    }

    #[test]
    fn pristine_reads_are_deterministic() {
        let s = RankStorage::new(MemOrg::tiny());
        let (b, r, c) = coords();
        assert_eq!(s.load(b, r, c), s.load(b, r, c));
        assert_eq!(s.touched_lines(), 0);
    }

    #[test]
    fn different_coords_have_different_pristine_content() {
        let s = RankStorage::new(MemOrg::tiny());
        let a = s.load(BankId(0), RowAddr(0), ColAddr(0));
        let b = s.load(BankId(0), RowAddr(0), ColAddr(1));
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = RankStorage::with_seed(MemOrg::tiny(), 1);
        let s2 = RankStorage::with_seed(MemOrg::tiny(), 2);
        let (b, r, c) = coords();
        assert_ne!(s1.load(b, r, c).data, s2.load(b, r, c).data);
    }

    #[test]
    fn pristine_ecc_is_consistent() {
        let s = RankStorage::new(MemOrg::tiny());
        let (b, r, c) = coords();
        let line = s.load(b, r, c);
        assert_eq!(line.ecc, s.codec().ecc_word(&line.data));
        assert_eq!(line.pcc, s.codec().pcc_word(&line.data));
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut s = RankStorage::new(MemOrg::tiny());
        let (b, r, c) = coords();
        let mut line = s.load(b, r, c);
        line.data.set_word(0, 42);
        line.ecc = s.codec().ecc_word(&line.data);
        line.pcc = s.codec().pcc_word(&line.data);
        s.store(b, r, c, line);
        assert_eq!(s.load(b, r, c), line);
        assert_eq!(s.touched_lines(), 1);
    }

    #[test]
    fn stuck_bit_makes_later_writes_silently_fail() {
        let mut s = RankStorage::new(MemOrg::tiny());
        let (b, r, c) = coords();
        let before = s.load(b, r, c);
        let was_set = before.data.word(2) & (1 << 9) != 0;
        s.stick_bit(b, r, c, 2, 9);
        assert_eq!(s.stuck_cells(), 1);
        // Sticking alone changes nothing — the cell holds its value.
        assert_eq!(s.load(b, r, c), before);

        // A write that tries to flip the stuck cell loses that bit…
        let mut intended = before;
        intended.data.set_word(2, before.data.word(2) ^ (1 << 9));
        intended.ecc = s.codec().ecc_word(&intended.data);
        intended.pcc = s.codec().pcc_word(&intended.data);
        s.store(b, r, c, intended);
        let after = s.load(b, r, c);
        assert_eq!(after.data.word(2) & (1 << 9) != 0, was_set);
        // …so the stored data disagrees with its own (intended) ECC, and
        // SECDED recovers the intended value.
        let check = s.codec().verify(&after.data, after.ecc);
        assert!(!check.is_clean());
        assert_eq!(check.recovered(&after.data), Some(intended.data));
    }

    #[test]
    fn stick_bit_is_idempotent() {
        let mut s = RankStorage::new(MemOrg::tiny());
        let (b, r, c) = coords();
        s.stick_bit(b, r, c, 0, 0);
        s.stick_bit(b, r, c, 0, 0);
        s.stick_bit(b, r, c, 0, 1);
        assert_eq!(s.stuck_cells(), 2);
    }

    #[test]
    fn inject_bit_error_breaks_ecc_consistency() {
        let mut s = RankStorage::new(MemOrg::tiny());
        let (b, r, c) = coords();
        let before = s.load(b, r, c);
        s.inject_bit_error(b, r, c, 4, 17);
        let after = s.load(b, r, c);
        assert_eq!(after.data.word(4), before.data.word(4) ^ (1 << 17));
        // ECC word unchanged ⇒ verify() would flag the flipped bit.
        assert_eq!(after.ecc, before.ecc);
        assert!(!s.codec().verify(&after.data, after.ecc).is_clean());
    }
}
