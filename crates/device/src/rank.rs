//! A PCM rank: ten ×8 chips with functional storage, timing state, a DIMM
//! register and wear counters.
//!
//! The rank is the unit PCMap operates on. Functional effects (what bytes
//! end up stored, which words were essential, whether a word write is
//! SET- or RESET-dominated) are computed here from real data; *when* those
//! effects happen on the bus is decided by the memory controller, which
//! drives the rank's [`RankTiming`].

use crate::dimm::DimmRegister;
use crate::energy::EnergyMeter;
use crate::storage::{RankStorage, StoredLine};
use crate::timing::RankTiming;
use crate::wear::WearTracker;
use pcmap_types::{BankId, CacheLine, ColAddr, Duration, MemOrg, RowAddr, TimingParams, WordMask};

/// How a word write stresses the PCM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteKind {
    /// No bit changed; the differential write is skipped entirely.
    Silent,
    /// Only 1→0 transitions: fast RESET pulses.
    ResetOnly,
    /// At least one 0→1 transition: the slow SET time dominates.
    SetDominated,
}

impl WriteKind {
    /// Array programming time for this kind of word write.
    pub fn duration(self, params: &TimingParams) -> Duration {
        match self {
            WriteKind::Silent => Duration::ZERO,
            WriteKind::ResetOnly => Duration(params.array_reset),
            WriteKind::SetDominated => Duration(params.array_set),
        }
    }
}

/// A functional read of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOut {
    /// The 64 data bytes.
    pub data: CacheLine,
    /// The ECC chip's word for this line.
    pub ecc: u64,
    /// The PCC chip's word for this line.
    pub pcc: u64,
}

/// The functional result of a (differential) line write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Words whose stored value actually changed (the *essential words*).
    pub essential: WordMask,
    /// Bits programmed per word slot (0 for non-essential words).
    pub bits_per_word: [u32; 8],
    /// Write kind per word slot.
    pub kinds: [WriteKind; 8],
    /// `true` if every word was unchanged — a silent store.
    pub silent: bool,
}

impl WriteOutcome {
    /// The slowest array time over the essential words — how long the
    /// longest involved chip programs.
    pub fn max_word_duration(&self, params: &TimingParams) -> Duration {
        self.kinds
            .iter()
            .map(|k| k.duration(params))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// One rank of PCM: functional storage + timing + DIMM register + wear.
#[derive(Debug, Clone)]
pub struct PcmRank {
    storage: RankStorage,
    timing: RankTiming,
    dimm: DimmRegister,
    wear: WearTracker,
    energy: EnergyMeter,
}

impl PcmRank {
    /// Creates a rank for the given organization.
    pub fn new(org: MemOrg) -> Self {
        Self::with_seed(org, 0)
    }

    /// Creates a rank whose pristine contents derive from `seed`.
    pub fn with_seed(org: MemOrg, seed: u64) -> Self {
        Self {
            storage: RankStorage::with_seed(org, seed),
            timing: RankTiming::new(&org),
            dimm: DimmRegister::new(),
            wear: WearTracker::new(),
            energy: EnergyMeter::new(),
        }
    }

    /// Reads the full line at the given coordinates.
    pub fn read_line(&self, bank: BankId, row: RowAddr, col: ColAddr) -> ReadOut {
        let StoredLine { data, ecc, pcc } = self.storage.load(bank, row, col);
        ReadOut { data, ecc, pcc }
    }

    /// Performs a differential write of `new` over the stored line,
    /// returning which words were essential and how hard each was to
    /// program. Storage (including ECC and PCC words) is updated.
    pub fn write_line(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        new: CacheLine,
    ) -> WriteOutcome {
        let stored = self.storage.load(bank, row, col);
        self.write_words(bank, row, col, new, stored.data.diff_words(&new))
    }

    /// Writes only the words selected by `mask` from `new`, leaving other
    /// words untouched — the fine-grained write primitive. Words in `mask`
    /// that turn out unchanged are still skipped by the differential-write
    /// logic (they come back as [`WriteKind::Silent`]).
    pub fn write_words(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        new: CacheLine,
        mask: WordMask,
    ) -> WriteOutcome {
        let mut stored = self.storage.load(bank, row, col);
        let mut essential = WordMask::empty();
        let mut bits_per_word = [0u32; 8];
        let mut kinds = [WriteKind::Silent; 8];

        for i in mask.iter() {
            let old_w = stored.data.word(i);
            let new_w = new.word(i);
            // The in-chip differential write senses the old word first.
            self.energy.record_read(64);
            if old_w == new_w {
                continue;
            }
            let set_bits = (new_w & !old_w).count_ones();
            let reset_bits = (old_w & !new_w).count_ones();
            self.energy.record_write(set_bits as u64, reset_bits as u64);
            bits_per_word[i] = set_bits + reset_bits;
            kinds[i] = if set_bits > 0 {
                WriteKind::SetDominated
            } else {
                WriteKind::ResetOnly
            };
            essential.insert(i);
            stored.data.set_word(i, new_w);
        }

        if !essential.is_empty() {
            let codec = self.storage.codec();
            stored.ecc = codec.update_ecc_word(stored.ecc, &stored.data, essential);
            stored.pcc = codec.pcc_word(&stored.data);
            self.storage.store(bank, row, col, stored);
        }

        WriteOutcome {
            essential,
            bits_per_word,
            kinds,
            silent: essential.is_empty(),
        }
    }

    /// Shared access to the rank's timing state.
    pub fn timing(&self) -> &RankTiming {
        &self.timing
    }

    /// Mutable access to the rank's timing state (driven by the controller).
    pub fn timing_mut(&mut self) -> &mut RankTiming {
        &mut self.timing
    }

    /// The rank's DIMM register.
    pub fn dimm_mut(&mut self) -> &mut DimmRegister {
        &mut self.dimm
    }

    /// Splits the rank into its DIMM register and timing state so a status
    /// poll can borrow both at once.
    pub fn dimm_and_timing(&mut self) -> (&mut DimmRegister, &RankTiming) {
        (&mut self.dimm, &self.timing)
    }

    /// The rank's wear counters.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Mutable wear counters (attribution of word writes to physical chips
    /// depends on the rotation layout, which the caller knows).
    pub fn wear_mut(&mut self) -> &mut WearTracker {
        &mut self.wear
    }

    /// The rank's energy meter.
    pub fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    /// Mutable energy meter (controllers record bus-level reads here).
    pub fn energy_mut(&mut self) -> &mut EnergyMeter {
        &mut self.energy
    }

    /// Direct access to functional storage (fault injection, inspection).
    pub fn storage_mut(&mut self) -> &mut RankStorage {
        &mut self.storage
    }

    /// Shared access to functional storage.
    pub fn storage(&self) -> &RankStorage {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::MemOrg;

    fn rank() -> PcmRank {
        PcmRank::new(MemOrg::tiny())
    }

    const B: BankId = BankId(0);
    const R: RowAddr = RowAddr(2);
    const C: ColAddr = ColAddr(1);

    #[test]
    fn silent_store_has_no_essential_words() {
        let mut rank = rank();
        let old = rank.read_line(B, R, C);
        let out = rank.write_line(B, R, C, old.data);
        assert!(out.silent);
        assert_eq!(out.essential.count(), 0);
        assert_eq!(
            out.max_word_duration(&TimingParams::paper_default()),
            Duration::ZERO
        );
    }

    #[test]
    fn differential_write_finds_exact_essential_set() {
        let mut rank = rank();
        let old = rank.read_line(B, R, C);
        let mut new = old.data;
        new.set_word(2, !old.data.word(2));
        new.set_word(7, old.data.word(7) ^ 1);
        let out = rank.write_line(B, R, C, new);
        assert_eq!(out.essential.iter().collect::<Vec<_>>(), vec![2, 7]);
        assert_eq!(out.bits_per_word[2], 64);
        assert_eq!(out.bits_per_word[7], 1);
        assert_eq!(rank.read_line(B, R, C).data, new);
    }

    #[test]
    fn reset_only_writes_are_fast() {
        let mut rank = rank();
        let old = rank.read_line(B, R, C);
        let mut new = old.data;
        // Clear bits only: 1→0 transitions, RESET-only.
        new.set_word(0, old.data.word(0) & !0xff);
        let out = rank.write_line(B, R, C, new);
        let params = TimingParams::paper_default();
        if out.essential.contains(0) {
            assert_eq!(out.kinds[0], WriteKind::ResetOnly);
            assert_eq!(out.max_word_duration(&params), Duration(params.array_reset));
        }
    }

    #[test]
    fn set_dominated_writes_are_slow() {
        let mut rank = rank();
        let old = rank.read_line(B, R, C);
        let mut new = old.data;
        new.set_word(0, old.data.word(0) | 0xff);
        let out = rank.write_line(B, R, C, new);
        let params = TimingParams::paper_default();
        if out.essential.contains(0) {
            assert_eq!(out.kinds[0], WriteKind::SetDominated);
            assert_eq!(out.max_word_duration(&params), Duration(params.array_set));
        }
    }

    #[test]
    fn ecc_and_pcc_follow_every_write() {
        let mut rank = rank();
        let old = rank.read_line(B, R, C);
        let mut new = old.data;
        new.set_word(4, 0xdead_beef);
        rank.write_line(B, R, C, new);
        let stored = rank.read_line(B, R, C);
        let codec = rank.storage().codec();
        assert_eq!(stored.ecc, codec.ecc_word(&stored.data));
        assert_eq!(stored.pcc, codec.pcc_word(&stored.data));
    }

    #[test]
    fn partial_write_leaves_unmasked_words() {
        let mut rank = rank();
        let old = rank.read_line(B, R, C);
        let mut new = CacheLine::from_seed(999);
        // Ensure word 3 actually differs.
        new.set_word(3, !old.data.word(3));
        let out = rank.write_words(B, R, C, new, WordMask::single(3));
        assert_eq!(out.essential, WordMask::single(3));
        let stored = rank.read_line(B, R, C).data;
        assert_eq!(stored.word(3), new.word(3));
        for i in [0usize, 1, 2, 4, 5, 6, 7] {
            assert_eq!(stored.word(i), old.data.word(i));
        }
    }

    #[test]
    fn injected_fault_is_visible_to_verify() {
        let mut rank = rank();
        rank.storage_mut().inject_bit_error(B, R, C, 1, 3);
        let read = rank.read_line(B, R, C);
        let codec = rank.storage().codec();
        let check = codec.verify(&read.data, read.ecc);
        assert!(!check.is_clean());
        // SECDED recovers the original word.
        assert!(check.recovered(&read.data).is_some());
    }
}
