//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §3 for the index).
//!
//! Each binary accepts an optional scale argument — `quick`, `default`
//! (the default) or `full` — and a `--jobs N` flag (or the `PCMAP_JOBS`
//! environment variable) that farms the sweep's independent runs to N
//! workers. Results are emitted in input order, so every table and JSON
//! artifact is byte-identical across job counts.

#![warn(missing_docs)]

pub mod soak;

use pcmap_core::SystemKind;
use pcmap_obs::Value;
use pcmap_sim::experiments::{evaluate_matrix_with, EvalScale, WorkloadEval};
use pcmap_sim::{RunReport, SweepRunner, TableBuilder};

/// Parses the common `quick|default|full` CLI argument (any position;
/// other flags are ignored).
pub fn scale_from_args() -> EvalScale {
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "quick" => return EvalScale::quick(),
            "full" => return EvalScale::full(),
            "default" => return EvalScale::default_scale(),
            _ => {}
        }
    }
    EvalScale::default_scale()
}

/// Parses the common `--jobs N` (or `-j N`) flag, falling back to the
/// `PCMAP_JOBS` environment variable, then to 1 (serial).
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs" || a == "-j")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .or_else(pcmap_par::env_jobs)
        .unwrap_or(1)
}

/// A sweep runner sized by [`jobs_from_args`].
pub fn runner_from_args() -> SweepRunner {
    SweepRunner::new(jobs_from_args())
}

/// RAII profiling hookup for experiment binaries: reads the `PCMAP_PROF`
/// / `PCMAP_PROF_JSON` / `PCMAP_TRACE` environment on creation and, when
/// dropped (any exit path of `main`), writes whatever reports were
/// requested. Inert — one atomic load per hot-path probe — when none of
/// those variables are set.
pub struct ProfEnv(());

impl Drop for ProfEnv {
    fn drop(&mut self) {
        pcmap_prof::finish_from_env();
    }
}

/// Creates the [`ProfEnv`] guard; call first in `main` and keep it alive
/// for the whole run.
#[must_use]
pub fn prof_env() -> ProfEnv {
    pcmap_prof::init_from_env();
    ProfEnv(())
}

/// Default seed for fault-injection runs that don't pass `--fault-seed`.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA11;

/// `true` when the `PCMAP_LIFETRACE` environment variable requests
/// request-lifecycle tracing (set to anything but `0` or empty). Lets any
/// experiment binary produce causal timelines without new flags; the
/// tracer is determinism-neutral, so results stay byte-identical.
pub fn lifetrace_from_env() -> bool {
    std::env::var("PCMAP_LIFETRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Prints a warning to stderr when a run lost observability data — event
/// ring overflow or lifecycle timelines past the tracer's capacity. The
/// simulation itself is unaffected; only the observability record is
/// incomplete.
pub fn warn_on_observability_drops(r: &RunReport) {
    if r.events_dropped > 0 {
        eprintln!(
            "warning: {} [{}]: event log overflowed, {} events dropped",
            r.workload,
            r.kind.label(),
            r.events_dropped
        );
    }
    if r.lifetrace_dropped > 0 {
        eprintln!(
            "warning: {} [{}]: lifecycle tracer at capacity, {} timelines dropped",
            r.workload,
            r.kind.label(),
            r.lifetrace_dropped
        );
    }
}

/// Parses a system-kind name (`baseline`, `row-nr`, `wow-nr`, `rwow-nr`,
/// `rwow-rd`, `rwow-rde`/`pcmap`, or any [`SystemKind::label`]).
pub fn parse_system(v: &str) -> Option<SystemKind> {
    SystemKind::all()
        .into_iter()
        .find(|k| {
            k.label().eq_ignore_ascii_case(v)
                || k.label().replace("oW-", "ow-").eq_ignore_ascii_case(v)
        })
        .or_else(|| match v.to_ascii_lowercase().as_str() {
            "baseline" => Some(SystemKind::Baseline),
            "row-nr" | "row" => Some(SystemKind::RowNr),
            "wow-nr" | "wow" => Some(SystemKind::WowNr),
            "rwow-nr" => Some(SystemKind::RwowNr),
            "rwow-rd" => Some(SystemKind::RwowRd),
            "rwow-rde" | "pcmap" => Some(SystemKind::RwowRde),
            _ => None,
        })
}

/// Parses a fault-storm spec of the form `RATE` or `RATE:SEED` (e.g.
/// `0.02` or `0.02:77`) into a [`FaultConfig::storm`] profile. A rate of
/// `0` yields the disabled configuration.
pub fn parse_fault_spec(spec: &str) -> Option<pcmap_types::FaultConfig> {
    let (rate, seed) = match spec.split_once(':') {
        Some((r, s)) => (r.trim().parse().ok()?, s.trim().parse().ok()?),
        None => (spec.trim().parse().ok()?, DEFAULT_FAULT_SEED),
    };
    let cfg = pcmap_types::FaultConfig::storm(rate, seed);
    cfg.validate().ok()?;
    Some(cfg)
}

/// Fault configuration from the `PCMAP_FAULTS` environment variable
/// (`RATE` or `RATE:SEED`), if set and well-formed. Lets any experiment
/// binary run under a fault storm without new flags.
pub fn faults_from_env() -> Option<pcmap_types::FaultConfig> {
    parse_fault_spec(&std::env::var("PCMAP_FAULTS").ok()?)
}

/// Runs the Figures 8–11 evaluation matrix on `runner` and appends the
/// two average rows the paper reports (`Average(MT)`, `Average(MP)`).
pub fn matrix_with_averages(scale: EvalScale, runner: &mut SweepRunner) -> Vec<WorkloadEval> {
    let mut rows = evaluate_matrix_with(scale, runner);
    let avg = |rows: &[WorkloadEval], mt: bool, name: &str| -> WorkloadEval {
        let group: Vec<&WorkloadEval> = rows.iter().filter(|r| r.multi_threaded == mt).collect();
        let kinds = SystemKind::all();
        let reports = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let n = group.len() as f64;
                let mut proto: RunReport = group[0].reports[i].clone();
                proto.kind = k;
                proto.workload = name.to_owned();
                proto.irlp_mean = group.iter().map(|g| g.reports[i].irlp_mean).sum::<f64>() / n;
                proto.irlp_max = group
                    .iter()
                    .map(|g| g.reports[i].irlp_max)
                    .fold(0.0, f64::max);
                proto.mean_read_latency = group
                    .iter()
                    .map(|g| g.reports[i].mean_read_latency)
                    .sum::<f64>()
                    / n;
                proto.write_throughput = group
                    .iter()
                    .map(|g| g.reports[i].write_throughput)
                    .sum::<f64>()
                    / n;
                // Aggregate IPC via totals.
                proto.instructions = group.iter().map(|g| g.reports[i].instructions).sum();
                proto.cpu_cycles = group.iter().map(|g| g.reports[i].cpu_cycles).sum();
                proto
            })
            .collect();
        WorkloadEval {
            name: name.to_owned(),
            multi_threaded: mt,
            reports,
        }
    };
    let avg_mt = avg(&rows, true, "Average(MT)");
    let avg_mp = avg(&rows, false, "Average(MP)");
    // Insert Average(MT) after the MT rows, Average(MP) at the end.
    let mp_start = rows
        .iter()
        .position(|r| !r.multi_threaded)
        .unwrap_or(rows.len());
    rows.insert(mp_start, avg_mt);
    rows.push(avg_mp);
    rows
}

/// Builds one metric of the matrix as a paper-style table: one row per
/// workload, one column per system. Render it as text
/// ([`TableBuilder::render`]) or CSV ([`TableBuilder::to_csv`]).
pub fn metric_table<F: Fn(&RunReport) -> f64>(
    rows: &[WorkloadEval],
    kinds: &[SystemKind],
    metric: F,
    decimals: usize,
) -> TableBuilder {
    let mut headers = vec!["workload"];
    let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
    headers.extend(labels.iter().copied());
    let mut t = TableBuilder::new(&headers);
    for row in rows {
        let mut cells = vec![row.name.clone()];
        for &k in kinds {
            cells.push(format!("{:.*}", decimals, metric(row.report(k))));
        }
        t.row(&cells);
    }
    t
}

/// Builds a metric table normalized to the baseline system.
pub fn metric_table_normalized<F: Fn(&RunReport) -> f64>(
    rows: &[WorkloadEval],
    kinds: &[SystemKind],
    metric: F,
) -> TableBuilder {
    let mut headers = vec!["workload"];
    let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
    headers.extend(labels.iter().copied());
    let mut t = TableBuilder::new(&headers);
    for row in rows {
        let base = metric(row.report(SystemKind::Baseline));
        let mut cells = vec![row.name.clone()];
        for &k in kinds {
            let v = metric(row.report(k));
            cells.push(if base == 0.0 {
                "-".into()
            } else {
                format!("{:.3}", v / base)
            });
        }
        t.row(&cells);
    }
    t
}

/// Renders one metric of the matrix as a paper-style table: one row per
/// workload, one column per system.
pub fn render_metric<F: Fn(&RunReport) -> f64>(
    rows: &[WorkloadEval],
    kinds: &[SystemKind],
    metric: F,
    decimals: usize,
) -> String {
    metric_table(rows, kinds, metric, decimals).render()
}

/// Renders a metric normalized to the baseline system.
pub fn render_metric_normalized<F: Fn(&RunReport) -> f64>(
    rows: &[WorkloadEval],
    kinds: &[SystemKind],
    metric: F,
) -> String {
    metric_table_normalized(rows, kinds, metric).render()
}

/// JSON array for an evaluation matrix: one object per workload carrying
/// the full [`RunReport::to_json`] telemetry of every system (per-channel
/// counters, latency percentiles, IRLP, rollback rate, ...).
pub fn matrix_json(rows: &[WorkloadEval]) -> Value {
    Value::Arr(
        rows.iter()
            .map(|row| {
                let mut o = Value::obj();
                o.set("workload", Value::Str(row.name.clone()));
                o.set("multi_threaded", Value::Bool(row.multi_threaded));
                let mut reports = Value::obj();
                for r in &row.reports {
                    reports.set(r.kind.label(), r.to_json());
                }
                o.set("reports", reports);
                o
            })
            .collect(),
    )
}

/// Writes a JSON result under `results/` (or any path), creating parent
/// directories; returns the path for the caller to report.
pub fn write_json_result<'p>(path: &'p str, value: &Value) -> std::io::Result<&'p str> {
    pcmap_obs::export::write_json(path, value)?;
    Ok(path)
}

/// Writes a table as CSV, creating parent directories; returns the path.
pub fn write_csv_result<'p>(path: &'p str, table: &TableBuilder) -> std::io::Result<&'p str> {
    pcmap_obs::export::write_text(path, &table.to_csv())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_without_args() {
        let s = scale_from_args();
        // Running under the test harness there is no scale argument.
        assert!(s.requests > 0);
    }
}
