//! The soak-gate verdict, extracted from the `fault_sweep` binary so it
//! is unit-testable (DESIGN.md §11).
//!
//! A soak run passes only when the recovery stack stayed *visibly*
//! correct under the storm: zero silent corruptions, zero protocol
//! invariant violations (the checker counts over-budget retries and
//! early watchdog trips among these), no over-budget retry arithmetic,
//! every injected fault leaving a trace in the recovery accounting, and
//! degraded mode demonstrably entered *and* exited. The binary turns a
//! failed [`SoakVerdict`] into a failed `results/soak.json` plus a
//! non-zero exit; the tests here force each failure class and assert the
//! verdict refuses to pass.

use pcmap_obs::Value;
use pcmap_sim::RunReport;

/// The per-run numbers the verdict is computed from.
///
/// Decoupled from [`RunReport`] so tests can cook any combination —
/// including ones a healthy simulator can never produce.
#[derive(Debug, Clone, Default)]
pub struct SoakRunStats {
    /// Headline fault rate of this sweep point.
    pub rate: f64,
    /// Reads whose post-correction oracle check failed — must be 0.
    pub silent_corruptions: u64,
    /// Protocol invariant violations (includes `retry-over-budget` and
    /// `early-watchdog` from the checker) — must be 0.
    pub invariant_violations: u64,
    /// Faults the storm injected.
    pub faults_injected: u64,
    /// Sum of every visible recovery action (corrections,
    /// reconstructions, retries, visible failures, rollbacks, watchdog
    /// trips, chip/status fault counters).
    pub visible_recoveries: u64,
    /// Bounded-retry attempts taken.
    pub fault_retries: u64,
    /// Configured retry budget per uncorrectable read.
    pub retry_budget: u32,
    /// Times any rank entered degraded mode.
    pub degraded_enters: u64,
    /// Times any rank was re-promoted.
    pub degraded_exits: u64,
}

impl SoakRunStats {
    /// Collects the verdict inputs from a finished run.
    #[must_use]
    pub fn from_report(rate: f64, retry_budget: u32, r: &RunReport) -> Self {
        let ch = r.merged_channels();
        Self {
            rate,
            silent_corruptions: r.silent_corruptions,
            invariant_violations: r.invariant_violations,
            faults_injected: r.faults_injected,
            visible_recoveries: r.faults_corrected
                + r.faults_reconstructed
                + r.fault_retries
                + r.reads_failed
                + r.corruption_rollbacks
                + r.watchdog_trips
                + ch.counter("faults_chip_slow")
                + ch.counter("faults_status_poll")
                + ch.counter("faults_stuck_cells"),
            fault_retries: r.fault_retries,
            retry_budget,
            degraded_enters: r.degraded_enters,
            degraded_exits: r.degraded_exits,
        }
    }
}

/// Outcome of the soak gate over a full sweep.
#[derive(Debug)]
pub struct SoakVerdict {
    /// Every failure found, in rate order; empty means the gate passed.
    pub failures: Vec<String>,
    /// Whether any sweep point both entered and exited degraded mode.
    pub degraded_demonstrated: bool,
}

impl SoakVerdict {
    /// Whether the gate passed.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the verdict fields shared by every soak artifact into
    /// `out` (callers add their own run metadata around these).
    pub fn render_into(&self, out: &mut Value) {
        out.set(
            "degraded_demonstrated",
            Value::Bool(self.degraded_demonstrated),
        );
        out.set(
            "failures",
            Value::Arr(self.failures.iter().cloned().map(Value::Str).collect()),
        );
        out.set("pass", Value::Bool(self.pass()));
    }
}

/// Checks one run and appends its failures.
fn check_run(s: &SoakRunStats, failures: &mut Vec<String>) {
    let rate = s.rate;
    if s.silent_corruptions != 0 {
        failures.push(format!(
            "rate {rate}: {} silent corruption(s)",
            s.silent_corruptions
        ));
    }
    if s.invariant_violations != 0 {
        failures.push(format!(
            "rate {rate}: {} invariant violation(s) (includes retry-over-budget / early-watchdog)",
            s.invariant_violations
        ));
    }
    // Over-budget retry arithmetic the counters can prove on their own:
    // with a zero budget, any retry at all is over budget. (Non-zero
    // budgets are policed per-read by the protocol checker, which
    // surfaces overruns as invariant violations above.)
    if s.retry_budget == 0 && s.fault_retries > 0 {
        failures.push(format!(
            "rate {rate}: {} retry(ies) taken with a zero retry budget (over-budget retry)",
            s.fault_retries
        ));
    }
    if rate > 0.0 && s.faults_injected == 0 {
        failures.push(format!("rate {rate}: storm injected nothing"));
    }
    // Every injected fault must leave a visible trace in the recovery
    // accounting — corrected, reconstructed, retried, failed upward,
    // rolled back, or surfaced through the chip/watchdog counters.
    if s.faults_injected > 0 && s.visible_recoveries == 0 {
        failures.push(format!(
            "rate {rate}: {} fault(s) injected but none visible",
            s.faults_injected
        ));
    }
}

/// Computes the soak verdict over every run of the sweep.
#[must_use]
pub fn verdict(runs: &[SoakRunStats]) -> SoakVerdict {
    let mut failures = Vec::new();
    for s in runs {
        check_run(s, &mut failures);
    }
    let degraded_demonstrated = runs
        .iter()
        .any(|s| s.degraded_enters > 0 && s.degraded_exits > 0);
    if !degraded_demonstrated {
        failures.push("no sweep point both entered and exited degraded mode".to_owned());
    }
    SoakVerdict {
        failures,
        degraded_demonstrated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A run the gate should accept.
    fn healthy(rate: f64) -> SoakRunStats {
        SoakRunStats {
            rate,
            faults_injected: if rate > 0.0 { 40 } else { 0 },
            visible_recoveries: if rate > 0.0 { 40 } else { 0 },
            fault_retries: 6,
            retry_budget: 3,
            degraded_enters: 2,
            degraded_exits: 2,
            ..SoakRunStats::default()
        }
    }

    #[test]
    fn healthy_sweep_passes() {
        let v = verdict(&[healthy(0.0), healthy(0.02)]);
        assert!(v.pass(), "{:?}", v.failures);
        assert!(v.degraded_demonstrated);
    }

    #[test]
    fn a_single_silent_corruption_fails_the_gate() {
        let mut bad = healthy(0.02);
        bad.silent_corruptions = 1;
        let v = verdict(&[healthy(0.0), bad]);
        assert!(!v.pass());
        assert!(
            v.failures.iter().any(|f| f.contains("silent corruption")),
            "{:?}",
            v.failures
        );
    }

    #[test]
    fn an_over_budget_retry_fails_the_gate() {
        // Arithmetic path: retries with a zero budget.
        let mut bad = healthy(0.02);
        bad.retry_budget = 0;
        bad.fault_retries = 1;
        let v = verdict(&[bad]);
        assert!(!v.pass());
        assert!(
            v.failures.iter().any(|f| f.contains("over-budget retry")),
            "{:?}",
            v.failures
        );
    }

    #[test]
    fn a_checker_flagged_overrun_fails_the_gate() {
        // Checker path: the protocol checker records retry-over-budget as
        // an invariant violation; force one for real and feed its count
        // through the verdict.
        use pcmap_ctrl::ProtocolChecker;
        use pcmap_types::{BankId, Cycle, TimingParams};
        let mut checker = ProtocolChecker::collecting(&TimingParams::paper_default());
        checker.retry(BankId(0), Cycle(100), 4, 3); // attempt 4 of budget 3
        assert_eq!(checker.violation_count(), 1);

        let mut bad = healthy(0.02);
        bad.invariant_violations = checker.violation_count();
        let v = verdict(&[bad]);
        assert!(!v.pass());
        assert!(
            v.failures.iter().any(|f| f.contains("invariant violation")),
            "{:?}",
            v.failures
        );
    }

    #[test]
    fn invisible_faults_and_missing_degradation_fail() {
        let mut bad = healthy(0.02);
        bad.visible_recoveries = 0;
        let v = verdict(&[bad]);
        assert!(v.failures.iter().any(|f| f.contains("none visible")));

        let mut quiet = healthy(0.02);
        quiet.degraded_enters = 0;
        let v = verdict(&[quiet]);
        assert!(
            v.failures.iter().any(|f| f.contains("degraded mode")),
            "{:?}",
            v.failures
        );
    }

    #[test]
    fn storm_that_injects_nothing_fails() {
        let mut empty = healthy(0.05);
        empty.faults_injected = 0;
        empty.visible_recoveries = 0;
        let v = verdict(&[empty]);
        assert!(v.failures.iter().any(|f| f.contains("injected nothing")));
    }

    #[test]
    fn verdict_renders_into_json() {
        let mut out = Value::obj();
        verdict(&[healthy(0.02)]).render_into(&mut out);
        assert_eq!(out.get("pass"), Some(&Value::Bool(true)));
        let mut out = Value::obj();
        let mut bad = healthy(0.02);
        bad.silent_corruptions = 2;
        verdict(&[bad]).render_into(&mut out);
        assert_eq!(out.get("pass"), Some(&Value::Bool(false)));
    }
}
