//! Request-level causal explain reports (ISSUE 7 / DESIGN.md §13).
//!
//! ```text
//! pcmap_explain [--workload NAME] [--system KIND] [--requests N]
//!               [--seed S] [--jobs N] [--top K] [--json PATH]
//!               [--diff KIND2] [--fault-rate R] [--fault-seed S]
//!               [--smoke]
//! ```
//!
//! Runs one simulation with the request lifecycle tracer on and renders
//! where every simulated cycle of every request went: the merged
//! per-cause attribution table, the hottest blocking resources, and the
//! `--top K` slowest requests with their full interval timelines.
//!
//! `--diff KIND2` runs a second system on the identical request stream
//! and attributes the latency delta cause by cause — e.g. baseline vs
//! `rwow-rde`, or (via `--fault-rate`) faults-off vs storm.
//!
//! `--smoke` is the CI gate: it verifies the conservation invariant —
//! every traced timeline partitions `[arrival, retire)` exactly — and
//! that the tracer's totals reconcile with the run's own counters, then
//! writes `results/explain.json` and exits nonzero on any violation.
//!
//! The tracer is determinism-neutral: the RunReport JSON is
//! byte-identical with tracing on or off and at any `--jobs N`. The full
//! timeline report travels out-of-band (`--json` sidecar), never inside
//! the RunReport. When `PCMAP_TRACE` requests a Chrome trace, the top-K
//! request lifetimes are also emitted as async trace events
//! (1 simulated cycle = 1 µs, category `pcmap-req`).

use pcmap_bench::parse_system;
use pcmap_core::SystemKind;
use pcmap_obs::{LifecycleReport, Value};
use pcmap_sim::{RunReport, SimConfig, SweepRunner, System};
use pcmap_types::FaultConfig;
use pcmap_workloads::catalog;

struct Args {
    workload: String,
    system: SystemKind,
    requests: Option<u64>,
    seed: u64,
    jobs: usize,
    top: usize,
    json: Option<String>,
    diff: Option<SystemKind>,
    fault_rate: f64,
    fault_seed: u64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "canneal".to_owned(),
        system: SystemKind::RwowRde,
        requests: None,
        seed: 0xC0FFEE,
        jobs: pcmap_bench::jobs_from_args(),
        top: 5,
        json: None,
        diff: None,
        fault_rate: 0.0,
        fault_seed: pcmap_bench::DEFAULT_FAULT_SEED,
        smoke: false,
    };
    if let Some(f) = pcmap_bench::faults_from_env() {
        args.fault_rate = f.rate;
        args.fault_seed = f.seed;
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--workload" | "-w" => args.workload = value("--workload")?,
            "--system" | "-s" => {
                let v = value("--system")?;
                args.system = parse_system(&v).ok_or(format!("unknown system '{v}'"))?;
            }
            "--requests" | "-n" => {
                args.requests = Some(
                    value("--requests")?
                        .parse()
                        .map_err(|e| format!("bad count: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad job count: {e}"))?
                    .max(1);
            }
            "--top" | "-k" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|e| format!("bad top count: {e}"))?;
            }
            "--json" => args.json = Some(value("--json")?),
            "--diff" => {
                let v = value("--diff")?;
                args.diff = Some(parse_system(&v).ok_or(format!("unknown system '{v}'"))?);
            }
            "--fault-rate" => {
                args.fault_rate = value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("bad fault rate: {e}"))?;
            }
            "--fault-seed" => {
                args.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad fault seed: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: pcmap_explain [--workload NAME] [--system KIND] [--requests N] \
                     [--seed S] [--jobs N] [--top K] [--json PATH] [--diff KIND2] \
                     [--fault-rate R] [--fault-seed S] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn run_traced(args: &Args, kind: SystemKind, wl: &catalog::Workload) -> RunReport {
    let mut cfg = SimConfig::paper_default(kind)
        .with_requests(
            args.requests
                .unwrap_or(if args.smoke { 800 } else { 8_000 }),
        )
        .with_seed(args.seed);
    if args.fault_rate > 0.0 {
        cfg = cfg.with_faults(FaultConfig::storm(args.fault_rate, args.fault_seed));
    }
    let mut sys = System::new(cfg, wl.clone());
    sys.enable_lifecycle_tracing();
    let mut runner = SweepRunner::new(args.jobs);
    sys.run_parallel(runner.pool())
}

/// Per-request read/write tag for rendering.
fn rw(is_write: bool) -> &'static str {
    if is_write {
        "write"
    } else {
        "read"
    }
}

fn render_summary(r: &RunReport, lc: &LifecycleReport) {
    let m = &lc.merged;
    println!(
        "{} [{}] · {} requests traced ({} reads) · {} attributed cycles",
        r.workload,
        r.kind.label(),
        m.requests,
        m.reads,
        m.total_cycles
    );
    println!("\ncause                  cycles      share  attempts(r/w)");
    for (label, cycles) in &m.attributed {
        let share = if m.total_cycles > 0 {
            *cycles as f64 * 100.0 / m.total_cycles as f64
        } else {
            0.0
        };
        let ar = m.attempt_count(&format!("{label}/read"));
        let aw = m.attempt_count(&format!("{label}/write"));
        println!("{label:<20} {cycles:>9}     {share:>5.1}%  {ar}/{aw}");
    }
    if !m.resources.is_empty() {
        println!("\nhottest blocking resources (blocked cycles):");
        let mut hot: Vec<(&String, &u64)> = m.resources.iter().collect();
        hot.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (key, cycles) in hot.iter().take(8) {
            println!("  {key:<24} {cycles}");
        }
    }
}

fn render_timelines(lc: &LifecycleReport, top: usize) {
    println!("\ntop {top} slowest requests:");
    for (rank, (ch, t)) in lc.top_k(top).iter().enumerate() {
        println!(
            "\n#{} req {} {} ch{} · {} cycles · [{} → {}){}{}",
            rank + 1,
            t.req,
            rw(t.is_write),
            ch,
            t.latency(),
            t.arrival.0,
            t.retire.0,
            if t.forwarded { " · forwarded" } else { "" },
            if t.failed { " · FAILED" } else { "" },
        );
        for seg in &t.segments {
            let res = seg
                .resource
                .as_ref()
                .map(|res| {
                    let blocker = res
                        .blocker
                        .map(|b| format!(" (by req {b})"))
                        .unwrap_or_default();
                    format!("  @ {}{blocker}", res.key())
                })
                .unwrap_or_default();
            println!(
                "    [{:>8} → {:<8}) {:<20} {:>7}{res}",
                seg.start.0,
                seg.end.0,
                seg.phase.label(),
                seg.cycles()
            );
        }
        if !t.chip_service.is_empty() {
            let chips: Vec<String> = t
                .chip_service
                .iter()
                .map(|(c, s, e)| format!("chip{} [{} → {})", c.0, s.0, e.0))
                .collect();
            println!("    service on: {}", chips.join(", "));
        }
        if let Some((vs, ve)) = t.verify {
            println!("    verify: [{} → {})", vs.0, ve.0);
        }
    }
}

fn render_diff(a: &RunReport, b: &RunReport, la: &LifecycleReport, lb: &LifecycleReport) {
    let (ma, mb) = (&la.merged, &lb.merged);
    println!(
        "causal diff: {} [{}] vs [{}] · identical request stream",
        a.workload,
        a.kind.label(),
        b.kind.label()
    );
    println!(
        "\ncause                  {:>12}  {:>12}  {:>13}",
        a.kind.label(),
        b.kind.label(),
        "delta"
    );
    let labels: std::collections::BTreeSet<&String> =
        ma.attributed.keys().chain(mb.attributed.keys()).collect();
    for label in labels {
        let (ca, cb) = (ma.cycles(label), mb.cycles(label));
        println!(
            "{label:<20} {ca:>14} {cb:>13} {:>14}",
            cb as i128 - ca as i128
        );
    }
    println!(
        "{:<20} {:>14} {:>13} {:>14}",
        "TOTAL",
        ma.total_cycles,
        mb.total_cycles,
        mb.total_cycles as i128 - ma.total_cycles as i128
    );
    println!(
        "\nread latency Σ: {} → {} cycles ({:+}); mean {:.1} → {:.1}",
        ma.read_latency_cycles,
        mb.read_latency_cycles,
        mb.read_latency_cycles as i128 - ma.read_latency_cycles as i128,
        a.mean_read_latency,
        b.mean_read_latency
    );
}

/// Verifies the conservation invariant and counter reconciliation for one
/// traced run; returns the number of violations found (0 = clean).
fn verify_run(r: &RunReport, lc: &LifecycleReport) -> u64 {
    let mut bad = 0u64;
    for (ch, t) in &lc.timelines {
        if !t.conserves() {
            bad += 1;
            eprintln!(
                "CONSERVATION VIOLATION: req {} {} ch{ch}: segments do not partition [{}, {})",
                t.req,
                rw(t.is_write),
                t.arrival.0,
                t.retire.0
            );
        }
    }
    bad += lc.merged.violations;
    if r.lifetrace_dropped > 0 {
        eprintln!(
            "smoke: {} timelines dropped — raise tracer capacity or shrink the scenario",
            r.lifetrace_dropped
        );
        bad += 1;
    }
    let merged = r.merged_channels();
    if lc.merged.reads != merged.counter("reads_done") {
        eprintln!(
            "RECONCILIATION FAILURE: tracer saw {} reads, controllers completed {}",
            lc.merged.reads,
            merged.counter("reads_done")
        );
        bad += 1;
    }
    if lc.merged.read_latency_cycles != merged.counter("read_latency_sum") {
        eprintln!(
            "RECONCILIATION FAILURE: tracer read-latency Σ {} != counter {}",
            lc.merged.read_latency_cycles,
            merged.counter("read_latency_sum")
        );
        bad += 1;
    }
    bad
}

/// Sidecar JSON for one traced run: the full RunReport plus the lifecycle
/// report (top-K timelines). Kept out of `RunReport::to_json` so the
/// byte-identity contract is untouched.
fn sidecar(r: &RunReport, lc: &LifecycleReport, top: usize) -> Value {
    let mut o = Value::obj();
    o.set("report", r.to_json());
    o.set("lifecycle", lc.to_json(Some(top)));
    o
}

fn emit_trace_spans(lc: &LifecycleReport, top: usize) {
    if !pcmap_prof::trace_enabled() {
        return;
    }
    for (ch, t) in lc.top_k(top) {
        pcmap_prof::record_request_span(
            &format!("req {} {} ch{}", t.req, rw(t.is_write), ch),
            t.req,
            t.arrival.0,
            t.retire.0,
        );
    }
}

fn main() {
    let _prof = pcmap_bench::prof_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let wl = catalog::by_name(&args.workload).unwrap_or_else(|| {
        eprintln!("unknown workload '{}'", args.workload);
        std::process::exit(2);
    });

    let r = run_traced(&args, args.system, &wl);
    let lc = r.lifecycle.clone().expect("tracing was enabled");
    pcmap_bench::warn_on_observability_drops(&r);
    emit_trace_spans(&lc, args.top);

    let mut violations = 0u64;
    if args.smoke {
        violations += verify_run(&r, &lc);
    }

    if let Some(other) = args.diff {
        let r2 = run_traced(&args, other, &wl);
        let lc2 = r2.lifecycle.clone().expect("tracing was enabled");
        pcmap_bench::warn_on_observability_drops(&r2);
        if args.smoke {
            violations += verify_run(&r2, &lc2);
        }
        render_diff(&r, &r2, &lc, &lc2);
        if let Some(path) = &args.json {
            let mut o = Value::obj();
            o.set("base", sidecar(&r, &lc, args.top));
            o.set("other", sidecar(&r2, &lc2, args.top));
            write_or_die(path, &o);
        }
    } else {
        render_summary(&r, &lc);
        render_timelines(&lc, args.top);
        if let Some(path) = &args.json {
            write_or_die(path, &sidecar(&r, &lc, args.top));
        }
    }

    if args.smoke {
        let path = args
            .json
            .clone()
            .unwrap_or_else(|| "results/explain.json".to_owned());
        if args.json.is_none() {
            write_or_die(&path, &sidecar(&r, &lc, args.top));
        }
        let n = lc.timelines.len();
        if violations == 0 {
            println!("\nsmoke: conservation holds for all {n} traced requests; totals reconcile");
        } else {
            eprintln!("smoke: {violations} violations across {n} traced requests");
            std::process::exit(1);
        }
    }
}

fn write_or_die(path: &str, value: &Value) {
    match pcmap_obs::export::write_json(path, value) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
    }
}
