//! Table III: IPC improvement vs the write:read latency ratio.

use pcmap_bench::{runner_from_args, scale_from_args};
use pcmap_sim::experiments::tab3_with;
use pcmap_sim::TableBuilder;
use pcmap_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    // A representative subset keeps the 4-ratio x 3-system sweep tractable.
    let workloads: Vec<_> = ["canneal", "streamcluster", "MP1", "MP4"]
        .iter()
        .map(|n| catalog::by_name(n).expect("catalog workload"))
        .collect();
    let rows = tab3_with(scale, &workloads, &mut runner_from_args());
    println!("Table III — IPC improvement vs write:read latency ratio (write fixed at 120 ns)");
    println!("Paper: RWoW-RDE 16.6→24.3%; RWoW-NR 11.3→24.7% as ratio goes 2x→8x.\n");
    let mut t = TableBuilder::new(&["write:read", "RWoW-RDE [%]", "RWoW-NR [%]"]);
    for r in &rows {
        t.row(&[
            format!("{}x", r.ratio),
            format!("{:+.1}", r.rwow_rde_pct),
            format!("{:+.1}", r.rwow_nr_pct),
        ]);
    }
    print!("{}", t.render());
}
