//! Figure 9: write throughput normalized to the baseline.

use pcmap_bench::{
    matrix_with_averages, render_metric_normalized, runner_from_args, scale_from_args,
};
use pcmap_core::SystemKind;

fn main() {
    let mut runner = runner_from_args();
    let rows = matrix_with_averages(scale_from_args(), &mut runner);
    println!("Figure 9 — write throughput, normalized to baseline");
    println!("Paper: >1.2x for 5 of 12 workloads under the full design.\n");
    let kinds = SystemKind::all();
    print!(
        "{}",
        render_metric_normalized(&rows, &kinds[1..], |r| r.write_throughput)
    );
}
