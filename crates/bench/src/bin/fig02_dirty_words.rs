//! Figure 2: distribution of essential 8-byte words per cache-line
//! write-back, measured over the generated write streams.

use pcmap_sim::experiments::fig2;
use pcmap_sim::TableBuilder;

fn main() {
    let writes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let rows = fig2(writes);
    let mut headers = vec!["workload".to_string()];
    headers.extend((0..=8).map(|i| format!("{i}w [%]")));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TableBuilder::new(&hdr);
    for r in &rows {
        let mut cells = vec![r.workload.clone()];
        cells.extend(r.fractions.iter().map(|f| format!("{:.1}", f * 100.0)));
        t.row(&cells);
    }
    println!("Figure 2 — essential words per write-back ({writes} writes per app)");
    println!("Paper anchors: omnetpp 14% single-word, cactusADM 52% single-word.\n");
    print!("{}", t.render());
}
