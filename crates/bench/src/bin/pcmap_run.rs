//! General-purpose simulation runner.
//!
//! ```text
//! pcmap_run [--workload NAME] [--system KIND] [--requests N]
//!           [--ratio R] [--seed S] [--rollback faulty|clean] [--all]
//!           [--jobs N] [--json PATH] [--csv PATH]
//!           [--fault-rate R] [--fault-seed S] [--engine cycle|event]
//! ```
//!
//! `KIND` is one of `baseline`, `row-nr`, `wow-nr`, `rwow-nr`, `rwow-rd`,
//! `rwow-rde`; `--all` runs every system and prints a comparison table.
//! `--json PATH` additionally writes the full telemetry of every run
//! (per-channel counters, latency percentiles, IRLP, stall breakdown,
//! windowed series) as a JSON array; `--csv PATH` writes the comparison
//! table as CSV.
//!
//! `--jobs N` (default 1, or `PCMAP_JOBS`) enables the deterministic
//! parallel engine: with `--all` the six independent system runs are
//! farmed to N pool workers; a single run instead advances its four
//! channel controllers concurrently (epoch lockstep, DESIGN.md §9).
//! Every table, JSON, and CSV byte is identical at any `N`.
//!
//! `--fault-rate R` (with optional `--fault-seed S`, or the `PCMAP_FAULTS`
//! env variable as `RATE[:SEED]`) runs under a deterministic fault storm
//! (DESIGN.md §11). The default rate of 0 leaves every fault hook inert.
//!
//! `--engine cycle|event` (or `PCMAP_ENGINE`) selects the execution
//! engine (DESIGN.md §14). Both produce byte-identical reports; `event`
//! (the default) jumps a binary heap of component horizons instead of
//! scanning every component at every wake.

use pcmap_core::{RollbackMode, SystemKind};
use pcmap_obs::Value;
use pcmap_sim::{Engine, RunReport, SimConfig, SweepRunner, System, TableBuilder};
use pcmap_types::{FaultConfig, TimingParams};
use pcmap_workloads::catalog;

struct Args {
    workload: String,
    system: SystemKind,
    requests: u64,
    ratio: Option<u64>,
    seed: u64,
    rollback: RollbackMode,
    all: bool,
    jobs: usize,
    json: Option<String>,
    csv: Option<String>,
    fault_rate: f64,
    fault_seed: u64,
    engine: Engine,
}

use pcmap_bench::parse_system;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "canneal".to_owned(),
        system: SystemKind::RwowRde,
        requests: 16_000,
        ratio: None,
        seed: 0xC0FFEE,
        rollback: RollbackMode::NeverFaulty,
        all: false,
        jobs: pcmap_bench::jobs_from_args(),
        json: None,
        csv: None,
        fault_rate: 0.0,
        fault_seed: pcmap_bench::DEFAULT_FAULT_SEED,
        engine: Engine::from_env(),
    };
    // `PCMAP_FAULTS=RATE[:SEED]` seeds the defaults; explicit flags win.
    if let Some(f) = pcmap_bench::faults_from_env() {
        args.fault_rate = f.rate;
        args.fault_seed = f.seed;
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--workload" | "-w" => args.workload = value("--workload")?,
            "--system" | "-s" => {
                let v = value("--system")?;
                args.system = parse_system(&v).ok_or(format!("unknown system '{v}'"))?;
            }
            "--requests" | "-n" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--ratio" | "-r" => {
                args.ratio = Some(
                    value("--ratio")?
                        .parse()
                        .map_err(|e| format!("bad ratio: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--rollback" => {
                args.rollback = match value("--rollback")?.as_str() {
                    "faulty" => RollbackMode::AlwaysFaulty,
                    "clean" => RollbackMode::NeverFaulty,
                    other => return Err(format!("unknown rollback mode '{other}'")),
                };
            }
            "--all" | "-a" => args.all = true,
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
                args.jobs = args.jobs.max(1);
            }
            "--json" => args.json = Some(value("--json")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--fault-rate" => {
                args.fault_rate = value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("bad fault rate: {e}"))?;
            }
            "--fault-seed" => {
                args.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad fault seed: {e}"))?;
            }
            "--engine" => args.engine = value("--engine")?.parse()?,
            "--help" | "-h" => {
                println!(
                    "usage: pcmap_run [--workload NAME] [--system KIND] [--requests N] \
                     [--ratio R] [--seed S] [--rollback faulty|clean] [--all] \
                     [--jobs N] [--json PATH] [--csv PATH] \
                     [--fault-rate R] [--fault-seed S] [--engine cycle|event]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn build(args: &Args, kind: SystemKind, wl: &catalog::Workload) -> System {
    let mut cfg = SimConfig::paper_default(kind)
        .with_requests(args.requests)
        .with_seed(args.seed)
        .with_rollback(args.rollback);
    if let Some(r) = args.ratio {
        cfg = cfg.with_timing(TimingParams::paper_default().with_write_to_read_ratio(r));
    }
    if args.fault_rate > 0.0 {
        cfg = cfg.with_faults(FaultConfig::storm(args.fault_rate, args.fault_seed));
    }
    let mut sys = System::new(cfg, wl.clone());
    // PCMAP_LIFETRACE=1 turns on the (determinism-neutral) request
    // lifecycle tracer; `pcmap_explain` renders the resulting timelines.
    if pcmap_bench::lifetrace_from_env() {
        sys.enable_lifecycle_tracing();
    }
    sys
}

fn main() {
    let _prof = pcmap_bench::prof_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let wl = catalog::by_name(&args.workload).unwrap_or_else(|| {
        eprintln!(
            "unknown workload '{}'; known: canneal, dedup, ..., MP1-MP6, SPEC names, stream",
            args.workload
        );
        std::process::exit(2);
    });
    let kinds: Vec<SystemKind> = if args.all {
        SystemKind::all().to_vec()
    } else {
        vec![args.system]
    };

    // Deterministic parallelism (--jobs N): a multi-system sweep farms
    // whole runs to the pool; a single run parallelizes across its four
    // channels instead. Both emit byte-identical reports at any N.
    let mut runner = SweepRunner::new(args.jobs);
    let reports: Vec<RunReport> = if kinds.len() > 1 {
        runner.map(kinds.clone(), |kind| {
            build(&args, kind, &wl).run_with_engine(args.engine)
        })
    } else {
        vec![build(&args, kinds[0], &wl).run_parallel_with_engine(runner.pool(), args.engine)]
    };

    let mut t = TableBuilder::new(&[
        "system",
        "IPC",
        "read lat (mean/p95)",
        "write tput",
        "IRLP (mean/max)",
        "RoW reads",
        "WoW overlaps",
        "rollbacks",
    ]);
    for r in &reports {
        t.row(&[
            r.kind.label().to_string(),
            format!("{:.3}", r.ipc()),
            format!("{:.1}/{}", r.mean_read_latency, r.p95_read_latency),
            format!("{:.1}", r.write_throughput),
            format!("{:.2}/{:.2}", r.irlp_mean, r.irlp_max),
            r.reads_via_row.to_string(),
            r.wow_overlaps.to_string(),
            r.rollbacks.to_string(),
        ]);
    }
    println!(
        "workload {} · {} requests · seed {:#x}{}",
        args.workload,
        args.requests,
        args.seed,
        args.ratio
            .map(|r| format!(" · write:read {r}x"))
            .unwrap_or_default()
            + &if args.fault_rate > 0.0 {
                format!(
                    " · faults {} (seed {:#x})",
                    args.fault_rate, args.fault_seed
                )
            } else {
                String::new()
            }
    );
    print!("{}", t.render());
    for r in &reports {
        pcmap_bench::warn_on_observability_drops(r);
    }

    if let Some(path) = &args.json {
        let arr = Value::Arr(reports.iter().map(RunReport::to_json).collect());
        match pcmap_obs::export::write_json(path, &arr) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.csv {
        match pcmap_obs::export::write_text(path, &t.to_csv()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
