//! Figure 5: chip-occupancy timelines for the RoW and WoW examples.
//!
//! Reconstructs the paper's scenarios: (a)/(b) a single-word write A
//! followed by reads B and C; (c)/(d) three writes with disjoint essential
//! words. Rendered as ASCII Gantt charts (one row per chip).

use pcmap_core::{PcmapController, SystemKind};
use pcmap_ctrl::{BaselineController, Controller, MemRequest, ReqId, ReqKind};
use pcmap_obs::ChipTrace;
use pcmap_types::{CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams};

/// Renders the chip-timeline Gantt from a controller's event stream.
fn gantt(ctrl: &dyn Controller, bank: pcmap_types::BankId) -> String {
    ChipTrace::from_events(ctrl.events()).render_gantt(bank, 4)
}

fn write_req(ctrl: &dyn Controller, id: u64, addr: u64, words: &[usize]) -> MemRequest {
    let org = MemOrg::tiny();
    let a = PhysAddr::new(addr);
    let loc = org.decode(a);
    let old = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
    let mut data = old;
    for &w in words {
        data.set_word(w, !old.word(w));
    }
    MemRequest {
        id: ReqId(id),
        kind: ReqKind::Write { data },
        line: a.line(),
        loc,
        core: CoreId(0),
        arrival: Cycle(0),
    }
}

fn read_req(id: u64, addr: u64, at: Cycle) -> MemRequest {
    let org = MemOrg::tiny();
    let a = PhysAddr::new(addr);
    MemRequest {
        id: ReqId(id),
        kind: ReqKind::Read,
        line: a.line(),
        loc: org.decode(a),
        core: CoreId(0),
        arrival: at,
    }
}

fn drive(ctrl: &mut dyn Controller, mut now: Cycle) {
    ctrl.step(now);
    while let Some(w) = ctrl.next_wake(now) {
        now = w;
        ctrl.step(now);
        if now.0 > 10_000 {
            break;
        }
    }
    ctrl.settle(Cycle::MAX);
}

fn scenario_row(ctrl: &mut dyn Controller) {
    ctrl.set_trace(true);
    let w = write_req(ctrl, 1, 0, &[3]);
    ctrl.enqueue_write(w, Cycle(0)).unwrap();
    ctrl.step(Cycle(0));
    ctrl.enqueue_read(read_req(2, 64, Cycle(1)), Cycle(1))
        .unwrap();
    ctrl.enqueue_read(read_req(3, 128, Cycle(1)), Cycle(1))
        .unwrap();
    drive(ctrl, Cycle(1));
}

fn scenario_wow(ctrl: &mut dyn Controller) {
    ctrl.set_trace(true);
    let a = write_req(ctrl, 1, 0, &[2, 5]);
    let b = write_req(ctrl, 2, 1024, &[3, 6]);
    let c = write_req(ctrl, 3, 2048, &[4]);
    ctrl.enqueue_write(a, Cycle(0)).unwrap();
    ctrl.enqueue_write(b, Cycle(0)).unwrap();
    ctrl.enqueue_write(c, Cycle(0)).unwrap();
    drive(ctrl, Cycle(0));
}

fn main() {
    let org = MemOrg::tiny();
    let t = TimingParams::paper_default();
    let q = QueueParams::paper_default();
    let bank = org.decode(PhysAddr::new(0)).bank;

    println!("Figure 5 — scheduling timelines (4 cycles per column; last label char per op)\n");

    println!("(a) Baseline: write A then reads B, C (all serialized)");
    let mut base = BaselineController::new(org, t, q, 0);
    scenario_row(&mut base);
    print!("{}", gantt(&base, bank));

    println!("\n(b) RoW: reads B, C reconstructed during write A (verify after)");
    let mut row = PcmapController::new(SystemKind::RowNr, org, t, q, 0);
    scenario_row(&mut row);
    print!("{}", gantt(&row, bank));

    println!("\n(c) Baseline: three writes serialized");
    let mut base2 = BaselineController::new(org, t, q, 0);
    scenario_wow(&mut base2);
    print!("{}", gantt(&base2, bank));

    println!("\n(d) WoW (RWoW-RDE): disjoint writes consolidated");
    let mut wow = PcmapController::new(SystemKind::RwowRde, org, t, q, 0);
    scenario_wow(&mut wow);
    print!("{}", gantt(&wow, bank));
}
