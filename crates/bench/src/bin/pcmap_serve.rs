//! Serve-tier experiment and soak gate (DESIGN.md §16).
//!
//! ```text
//! pcmap_serve [--tenants N] [--requests N] [--fleet CHxDIMMxRANKS]
//!             [--slo TARGET[:GOAL_BP]] [--seed S] [--faults RATE[:SEED]]
//!             [--jobs N] [--json PATH] [--soak] [--soak-path PATH]
//! ```
//!
//! Runs the `pcmap-serve` ingestion tier — per-tenant token-bucket
//! admission, bounded ingress queues, deadlines/retry/backoff, and the
//! graceful-degradation ladder — over a sharded fleet and reports the
//! conserved outcome ledger, SLO attainment, latency percentiles, time
//! at each ladder rung, and the worst-attaining tenants.
//!
//! `--soak` switches to the CI gate ([`ServeConfig::soak`]): ≥1M
//! requests from ≥1k tenants over hundreds of ranks under a seeded
//! fault storm. The gate re-runs the fleet at `--jobs 1` and `--jobs 4`
//! and asserts the two JSON renderings are **byte-identical**
//! (DESIGN.md §9), that every admitted request was retired, shed, or
//! failed visibly (conservation), that peak ingress stayed under the
//! configured cap, and that the storm demonstrably exercised the
//! degradation ladder. The verdict is written to
//! `results/serve_soak.json` and any failure exits non-zero.

use pcmap_obs::Value;
use pcmap_par::Pool;
use pcmap_serve::{run_fleet, ServeReport, ServiceLevel};
use pcmap_sim::TableBuilder;
use pcmap_types::{ServeConfig, SloSpec};

struct Args {
    cfg: ServeConfig,
    jobs: usize,
    json: Option<String>,
    soak: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ServeConfig::paper_default(),
        jobs: pcmap_bench::jobs_from_args(),
        json: None,
        soak: None,
    };
    if let Some(f) = pcmap_bench::faults_from_env() {
        args.cfg.faults = f;
    }
    let mut soak = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--tenants" | "-t" => {
                args.cfg.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("bad tenant count: {e}"))?;
            }
            "--requests" | "-n" => {
                args.cfg.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad request count: {e}"))?;
            }
            "--fleet" => {
                let v = value("--fleet")?;
                let parts: Vec<&str> = v.split('x').collect();
                let [ch, di, ra] = parts.as_slice() else {
                    return Err(format!("--fleet wants CHxDIMMxRANKS, got '{v}'"));
                };
                let p = |s: &str| {
                    s.trim()
                        .parse::<u32>()
                        .map_err(|e| format!("bad fleet: {e}"))
                };
                args.cfg.channels = p(ch)?;
                args.cfg.dimms = p(di)?;
                args.cfg.ranks_per_shard = p(ra)?;
            }
            "--channels" => {
                args.cfg.channels = value("--channels")?
                    .parse()
                    .map_err(|e| format!("bad channel count: {e}"))?;
            }
            "--dimms" => {
                args.cfg.dimms = value("--dimms")?
                    .parse()
                    .map_err(|e| format!("bad dimm count: {e}"))?;
            }
            "--ranks" => {
                args.cfg.ranks_per_shard = value("--ranks")?
                    .parse()
                    .map_err(|e| format!("bad rank count: {e}"))?;
            }
            "--slo" => {
                let v = value("--slo")?;
                let (target, goal) = match v.split_once(':') {
                    Some((t, g)) => (
                        t.trim()
                            .parse()
                            .map_err(|e| format!("bad slo target: {e}"))?,
                        g.trim().parse().map_err(|e| format!("bad slo goal: {e}"))?,
                    ),
                    None => (
                        v.trim()
                            .parse()
                            .map_err(|e| format!("bad slo target: {e}"))?,
                        args.cfg.slo.goal_bp,
                    ),
                };
                args.cfg.slo = SloSpec {
                    target,
                    goal_bp: goal,
                };
            }
            "--seed" => {
                args.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--faults" => {
                let v = value("--faults")?;
                args.cfg.faults = pcmap_bench::parse_fault_spec(&v)
                    .ok_or(format!("bad fault spec '{v}' (RATE or RATE:SEED)"))?;
            }
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad job count: {e}"))?
                    .max(1);
            }
            "--json" => args.json = Some(value("--json")?),
            "--soak" => soak = true,
            "--soak-path" => {
                soak = true;
                args.soak = Some(value("--soak-path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: pcmap_serve [--tenants N] [--requests N] [--fleet CHxDIMMxRANKS] \
                     [--channels N] [--dimms N] [--ranks N] \
                     [--slo TARGET[:GOAL_BP]] [--seed S] [--faults RATE[:SEED]] \
                     [--jobs N] [--json PATH] [--soak] [--soak-path PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if soak {
        // The soak gate runs the fixed ISSUE-scale profile; explicit
        // scale flags still apply afterwards for reduced local runs.
        let mut cfg = ServeConfig::soak();
        if args.cfg.tenants != ServeConfig::paper_default().tenants {
            cfg.tenants = args.cfg.tenants;
        }
        if args.cfg.requests != ServeConfig::paper_default().requests {
            cfg.requests = args.cfg.requests;
        }
        args.cfg = cfg;
        if args.soak.is_none() {
            args.soak = Some("results/serve_soak.json".to_owned());
        }
    }
    args.cfg.validate().map_err(|e| e.to_string())?;
    Ok(args)
}

fn summary_table(r: &ServeReport) -> TableBuilder {
    let s = &r.summary;
    let mut t = TableBuilder::new(&[
        "generated",
        "admitted",
        "retired",
        "throttled",
        "overflow",
        "degraded",
        "deadline",
        "failed",
        "retries",
        "deferrals",
        "SLO bp",
        "peak q",
    ]);
    t.row(&[
        s.generated.to_string(),
        s.admitted.to_string(),
        s.retired.to_string(),
        s.shed_throttled.to_string(),
        s.shed_overflow.to_string(),
        s.shed_degraded.to_string(),
        s.shed_deadline.to_string(),
        s.failed.to_string(),
        s.retries.to_string(),
        s.deferrals.to_string(),
        s.slo_attainment_bp().to_string(),
        s.peak_ingress.to_string(),
    ]);
    t
}

fn print_report(r: &ServeReport) {
    let cfg = &r.cfg;
    println!(
        "pcmap serve · {} tenants · {} shards × {} ranks · {} requests · seed {:#x}{}",
        cfg.tenants,
        cfg.shards(),
        cfg.ranks_per_shard,
        cfg.requests,
        cfg.seed,
        if cfg.faults.enabled() {
            " · fault storm"
        } else {
            ""
        }
    );
    print!("{}", summary_table(r).render());
    if let Some(h) = r.snapshot.histogram("serve_latency") {
        println!(
            "latency: p50 {} · p99 {} · max {} cycles (SLO target {})",
            h.percentile(50.0),
            h.percentile(99.0),
            h.max(),
            cfg.slo.target
        );
    }
    let total_cycles: u64 = r.level_cycles.iter().sum();
    if total_cycles > 0 {
        let pct = |c: u64| c * 100 / total_cycles;
        println!(
            "ladder: full {}% · read-priority {}% · critical-only {}% · shed {}%",
            pct(r.level_cycles[ServiceLevel::Full.index()]),
            pct(r.level_cycles[ServiceLevel::ReadPriority.index()]),
            pct(r.level_cycles[ServiceLevel::CriticalOnly.index()]),
            pct(r.level_cycles[ServiceLevel::Shed.index()]),
        );
    }
    let goal = u64::from(cfg.slo.goal_bp);
    println!(
        "tenants: {} below the {}bp SLO goal",
        r.tenants.violators(goal),
        goal
    );
}

/// The soak gate: byte-identity across job counts plus the
/// overload-safety contract, rendered as a verdict JSON.
fn run_soak(cfg: &ServeConfig, soak_path: &str) -> i32 {
    let mut failures: Vec<String> = Vec::new();

    println!("serve soak · running fleet at --jobs 1 ...");
    let serial_report = run_fleet(cfg, &mut Pool::new(1));
    let serial = serial_report.to_json().to_json_string();
    println!("serve soak · running fleet at --jobs 4 ...");
    let parallel = run_fleet(cfg, &mut Pool::new(4)).to_json().to_json_string();

    if serial != parallel {
        let at = serial
            .bytes()
            .zip(parallel.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| serial.len().min(parallel.len()));
        failures.push(format!(
            "serve report is not byte-identical across --jobs 1/4 (first diff at byte {at})"
        ));
    }
    failures.extend(serial_report.check());

    let s = &serial_report.summary;
    if s.generated < 1_000_000 {
        failures.push(format!(
            "soak generated only {} requests (gate wants >= 1M)",
            s.generated
        ));
    }
    if cfg.tenants < 1_000 {
        failures.push(format!(
            "soak ran only {} tenants (gate wants >= 1k)",
            cfg.tenants
        ));
    }
    if cfg.faults.enabled() {
        let degraded = serial_report.snapshot.counter("degraded_cycles");
        if degraded == 0 {
            failures.push("storm never degraded any shard".to_owned());
        }
    }
    // Storm or not, nothing may vanish: the conservation identity over
    // the whole fleet and the visible-failure accounting.
    if s.retired + s.shed_total() + s.failed != s.generated {
        failures.push("request ledger does not balance".to_owned());
    }

    let mut verdict = Value::obj();
    verdict.set("tenants", Value::U64(u64::from(cfg.tenants)));
    verdict.set("shards", Value::U64(u64::from(cfg.shards())));
    verdict.set("ranks", Value::U64(u64::from(cfg.total_ranks())));
    verdict.set("requests", Value::U64(cfg.requests));
    verdict.set("seed", Value::U64(cfg.seed));
    verdict.set("fault_storm", Value::Bool(cfg.faults.enabled()));
    verdict.set("generated", Value::U64(s.generated));
    verdict.set("retired", Value::U64(s.retired));
    verdict.set("shed", Value::U64(s.shed_total()));
    verdict.set("failed_visible", Value::U64(s.failed));
    verdict.set("retries", Value::U64(s.retries));
    verdict.set(
        "slo_attainment_bp",
        Value::U64(u64::from(s.slo_attainment_bp())),
    );
    verdict.set("peak_ingress", Value::U64(s.peak_ingress));
    verdict.set("ingress_cap", Value::U64(u64::from(cfg.ingress_cap)));
    verdict.set(
        "byte_identical_jobs_1_vs_4",
        Value::Bool(serial == parallel),
    );
    verdict.set("conserved", Value::Bool(s.conserved()));
    verdict.set(
        "failures",
        Value::Arr(failures.iter().cloned().map(Value::Str).collect()),
    );
    verdict.set("pass", Value::Bool(failures.is_empty()));

    match pcmap_bench::write_json_result(soak_path, &verdict) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => {
            eprintln!("error: writing {soak_path}: {e}");
            return 1;
        }
    }
    print_report(&serial_report);
    if failures.is_empty() {
        println!("serve soak gate PASSED");
        0
    } else {
        for f in &failures {
            eprintln!("serve soak FAIL: {f}");
        }
        1
    }
}

fn main() {
    let _prof = pcmap_bench::prof_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if let Some(soak_path) = &args.soak {
        std::process::exit(run_soak(&args.cfg, soak_path));
    }

    let report = run_fleet(&args.cfg, &mut Pool::new(args.jobs));
    print_report(&report);
    let problems = report.check();
    if let Some(path) = &args.json {
        match pcmap_bench::write_json_result(path, &report.to_json()) {
            Ok(p) => println!("wrote {p}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("serve check FAIL: {p}");
        }
        std::process::exit(1);
    }
}
