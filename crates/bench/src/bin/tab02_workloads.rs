//! Table II: workload characterization (RPKI / WPKI), paper values vs the
//! measured rates of the generated streams.

use pcmap_sim::TableBuilder;
use pcmap_workloads::catalog;
use pcmap_workloads::{CoreStream, StreamOp};

fn measure(w: &catalog::Workload) -> (f64, f64) {
    let (mut insts, mut reads, mut writes) = (0u64, 0u64, 0u64);
    for (i, p) in w.per_core.iter().enumerate() {
        let mut g = CoreStream::new(p, i, 42);
        let mut local = 0u64;
        while local < 250_000 {
            match g.next_op() {
                StreamOp::Compute(n) => local += n,
                StreamOp::Read(_) => {
                    reads += 1;
                    local += 1;
                }
                StreamOp::Write { .. } => {
                    writes += 1;
                    local += 1;
                }
            }
        }
        insts += local;
    }
    (
        reads as f64 * 1000.0 / insts as f64,
        writes as f64 * 1000.0 / insts as f64,
    )
}

fn main() {
    println!("Table II — workload characterization\n");
    let mut t = TableBuilder::new(&[
        "workload",
        "RPKI (paper)",
        "RPKI (measured)",
        "WPKI (paper)",
        "WPKI (measured)",
    ]);
    for w in catalog::mt_selected()
        .into_iter()
        .chain(catalog::mp_workloads())
    {
        let (r, wr) = measure(&w);
        t.row(&[
            w.name.clone(),
            format!("{:.2}", w.rpki()),
            format!("{r:.2}"),
            format!("{:.2}", w.wpki()),
            format!("{wr:.2}"),
        ]);
    }
    print!("{}", t.render());
}
