//! Runs the Figures 8–11 evaluation matrix once and prints all four
//! figures (convenience for full regeneration; the individual fig*
//! binaries produce the same rows).
//!
//! Every table also lands as CSV under `results/`, and the full per-run
//! telemetry (per-channel counters, latency percentiles, IRLP, stall
//! breakdown) as `results/figs_all.json`.

use pcmap_bench::{
    matrix_json, matrix_with_averages, metric_table, metric_table_normalized, runner_from_args,
    scale_from_args, write_csv_result, write_json_result,
};
use pcmap_core::SystemKind;
use pcmap_obs::Value;
use pcmap_sim::TableBuilder;

fn main() {
    let _prof = pcmap_bench::prof_env();
    let mut runner = runner_from_args();
    let rows = matrix_with_averages(scale_from_args(), &mut runner);
    let kinds = SystemKind::all();

    println!("=== Figure 8 — IRLP during writes (max 8.0) ===\n");
    let fig8 = metric_table(&rows, &kinds, |r| r.irlp_mean, 2);
    print!("{}", fig8.render());
    println!("\nPer-write maxima:");
    let fig8_max = metric_table(&rows, &kinds, |r| r.irlp_max, 2);
    print!("{}", fig8_max.render());

    println!("\n=== Figure 9 — write throughput vs baseline ===\n");
    let fig9 = metric_table_normalized(&rows, &kinds[1..], |r| r.write_throughput);
    print!("{}", fig9.render());

    println!("\n=== Figure 10 — effective read latency vs baseline ===\n");
    let fig10 = metric_table_normalized(&rows, &kinds[1..], |r| r.mean_read_latency);
    print!("{}", fig10.render());

    println!("\n=== Figure 11 — IPC improvement over baseline [%] ===\n");
    let pk = SystemKind::pcmap_variants();
    let mut headers = vec!["workload"];
    headers.extend(pk.iter().map(|k| k.label()));
    let mut fig11 = TableBuilder::new(&headers);
    for row in &rows {
        let base = row.report(SystemKind::Baseline).ipc();
        let mut cells = vec![row.name.clone()];
        for &k in &pk {
            cells.push(format!(
                "{:+.1}",
                (row.report(k).ipc() / base - 1.0) * 100.0
            ));
        }
        fig11.row(&cells);
    }
    print!("{}", fig11.render());

    let mut out = Value::obj();
    out.set("figures", Value::Str("fig08-fig11".into()));
    out.set("rows", matrix_json(&rows));
    println!();
    for res in [
        write_json_result("results/figs_all.json", &out),
        write_csv_result("results/fig08_irlp.csv", &fig8),
        write_csv_result("results/fig08_irlp_max.csv", &fig8_max),
        write_csv_result("results/fig09_write_throughput.csv", &fig9),
        write_csv_result("results/fig10_read_latency.csv", &fig10),
        write_csv_result("results/fig11_ipc.csv", &fig11),
    ] {
        match res {
            Ok(path) => println!("wrote {path}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
