//! Runs the Figures 8–11 evaluation matrix once and prints all four
//! figures (convenience for full regeneration; the individual fig*
//! binaries produce the same rows).

use pcmap_bench::{matrix_with_averages, render_metric, render_metric_normalized, scale_from_args};
use pcmap_core::SystemKind;
use pcmap_sim::TableBuilder;

fn main() {
    let rows = matrix_with_averages(scale_from_args());
    let kinds = SystemKind::all();

    println!("=== Figure 8 — IRLP during writes (max 8.0) ===\n");
    print!("{}", render_metric(&rows, &kinds, |r| r.irlp_mean, 2));
    println!("\nPer-write maxima:");
    print!("{}", render_metric(&rows, &kinds, |r| r.irlp_max, 2));

    println!("\n=== Figure 9 — write throughput vs baseline ===\n");
    print!("{}", render_metric_normalized(&rows, &kinds[1..], |r| r.write_throughput));

    println!("\n=== Figure 10 — effective read latency vs baseline ===\n");
    print!("{}", render_metric_normalized(&rows, &kinds[1..], |r| r.mean_read_latency));

    println!("\n=== Figure 11 — IPC improvement over baseline [%] ===\n");
    let pk = SystemKind::pcmap_variants();
    let mut headers = vec!["workload"];
    headers.extend(pk.iter().map(|k| k.label()));
    let mut t = TableBuilder::new(&headers);
    for row in &rows {
        let base = row.report(SystemKind::Baseline).ipc();
        let mut cells = vec![row.name.clone()];
        for &k in &pk {
            cells.push(format!("{:+.1}", (row.report(k).ipc() / base - 1.0) * 100.0));
        }
        t.row(&cells);
    }
    print!("{}", t.render());
}
