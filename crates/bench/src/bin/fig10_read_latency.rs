//! Figure 10: effective read latency normalized to the baseline.

use pcmap_bench::{matrix_with_averages, render_metric_normalized, scale_from_args};
use pcmap_core::SystemKind;

fn main() {
    let rows = matrix_with_averages(scale_from_args());
    println!("Figure 10 — effective read latency, normalized to baseline (lower is better)");
    println!("Paper: RoW-NR 0.86-0.94; RWoW-RDE ~0.5.\n");
    let kinds = SystemKind::all();
    print!("{}", render_metric_normalized(&rows, &kinds[1..], |r| r.mean_read_latency));
}
