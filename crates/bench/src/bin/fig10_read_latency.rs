//! Figure 10: effective read latency normalized to the baseline.
//!
//! Also writes `results/fig10_read_latency.json` (full per-run telemetry,
//! including the p50/p95/p99 latency percentiles) and
//! `results/fig10_read_latency.csv` (the printed table).

use pcmap_bench::{
    matrix_json, matrix_with_averages, metric_table_normalized, runner_from_args, scale_from_args,
    write_csv_result, write_json_result,
};
use pcmap_core::SystemKind;
use pcmap_obs::Value;

fn main() {
    let _prof = pcmap_bench::prof_env();
    let mut runner = runner_from_args();
    let rows = matrix_with_averages(scale_from_args(), &mut runner);
    println!("Figure 10 — effective read latency, normalized to baseline (lower is better)");
    println!("Paper: RoW-NR 0.86-0.94; RWoW-RDE ~0.5.\n");
    let kinds = SystemKind::all();
    let table = metric_table_normalized(&rows, &kinds[1..], |r| r.mean_read_latency);
    print!("{}", table.render());

    let mut out = Value::obj();
    out.set("figure", Value::Str("fig10_read_latency".into()));
    out.set("rows", matrix_json(&rows));
    for res in [
        write_json_result("results/fig10_read_latency.json", &out),
        write_csv_result("results/fig10_read_latency.csv", &table),
    ] {
        match res {
            Ok(path) => println!("wrote {path}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
