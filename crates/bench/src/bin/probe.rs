use pcmap_core::SystemKind;
use pcmap_sim::{SimConfig, System};
use pcmap_workloads::catalog;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    let wl_name = std::env::args().nth(2).unwrap_or_else(|| "canneal".into());
    let wl = catalog::by_name(&wl_name).unwrap();
    println!("workload={} requests={}", wl.name, n);
    for kind in SystemKind::all() {
        let mut cfg = SimConfig::paper_default(kind).with_requests(n);
        if let Ok(m) = std::env::var("PCMAP_MLP") {
            cfg.cpu.mlp = m.parse().unwrap();
        }
        let sys = System::new(cfg, wl.clone());
        let drains_probe = 0u64;
        let _ = drains_probe;
        let r = sys.run();
        println!(
            "{:9}: ipc={:.3} rdlat={:6.1} irlp={:.2}/{:.2} wtput={:.3} delayed={:.2} row={} wow={} cyc={} ess={:.2}",
            kind.label(), r.ipc(), r.mean_read_latency, r.irlp_mean, r.irlp_max,
            r.write_throughput, r.delayed_read_fraction, r.reads_via_row, r.wow_overlaps,
            r.mem_cycles, r.mean_essential_words
        );
        println!(
            "           blocked_multi={} blocked_pcc={} wr_blk(d/e/p)={}/{}/{} deferred={}",
            r.row_blocked_multi,
            r.row_blocked_pcc,
            r.wr_blocked.0,
            r.wr_blocked.1,
            r.wr_blocked.2,
            r.reads_deferred_only
        );
        println!(
            "           drains={} rdlat p50/p95/p99 = {}/{}/{}",
            r.drains, r.p50_read_latency, r.p95_read_latency, r.p99_read_latency
        );
    }
}
