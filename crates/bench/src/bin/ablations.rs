//! Ablations for the design choices called out in DESIGN.md §5:
//! status-poll cost, drain watermarks, queue depths, and rotation under
//! correlated vs uncorrelated write offsets.

use pcmap_bench::jobs_from_args;
use pcmap_core::{RollbackMode, SystemKind};
use pcmap_sim::{SimConfig, SweepRunner, System, TableBuilder};
use pcmap_workloads::catalog;

fn run(cfg: SimConfig, wl: &catalog::Workload) -> f64 {
    System::new(cfg.clone(), wl.clone()).run().ipc()
}

fn main() {
    // First positional integer is the request budget; `--jobs N` (and its
    // value) is handled by `jobs_from_args`.
    let mut requests: u64 = 12_000;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--jobs" || arg == "-j" {
            let _ = it.next();
        } else if let Ok(n) = arg.parse() {
            requests = n;
        }
    }
    let mut runner = SweepRunner::new(jobs_from_args());
    let wl = catalog::by_name("canneal").expect("catalog workload");

    println!("Ablations (canneal, {requests} requests, RWoW-RDE unless noted)\n");

    // Drain watermark sweep.
    let highs = vec![0.5, 0.65, 0.8, 0.95];
    let ipcs = runner.map(highs.clone(), |high| {
        let mut cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(requests);
        cfg.queues.drain_high = high;
        cfg.queues.drain_low = 0.2;
        run(cfg, &wl)
    });
    let mut t = TableBuilder::new(&["drain high [%]", "IPC"]);
    for (high, ipc) in highs.iter().zip(&ipcs) {
        t.row(&[format!("{:.0}", high * 100.0), format!("{ipc:.3}")]);
    }
    println!("ablation_drain — write-drain high watermark:");
    println!("{}", t.render());

    // Read queue depth / MLP window.
    let sizes = vec![(4usize, 2usize), (8, 4), (16, 8)];
    let ipcs = runner.map(sizes.clone(), |(rq, mlp)| {
        let mut cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(requests);
        cfg.queues.read_q = rq;
        cfg.cpu.mlp = mlp;
        run(cfg, &wl)
    });
    let mut t = TableBuilder::new(&["read queue", "MLP", "IPC"]);
    for ((rq, mlp), ipc) in sizes.iter().zip(&ipcs) {
        t.row(&[rq.to_string(), mlp.to_string(), format!("{ipc:.3}")]);
    }
    println!("ablation_queues — read queue depth and MLP window:");
    println!("{}", t.render());

    // Offset correlation x rotation: rotation should matter most when
    // successive write-backs cluster on the same offsets. Each (corr,
    // kind) cell is one independent run.
    let corrs = [0.0, 0.32, 0.8];
    let cells: Vec<(f64, SystemKind)> = corrs
        .iter()
        .flat_map(|&c| [(c, SystemKind::RwowNr), (c, SystemKind::RwowRde)])
        .collect();
    let ipcs = runner.map(cells, |(corr, kind)| {
        let mut wl2 = wl.clone();
        for p in &mut wl2.per_core {
            p.offset_corr = corr;
        }
        run(SimConfig::paper_default(kind).with_requests(requests), &wl2)
    });
    let mut t = TableBuilder::new(&["offset corr", "RWoW-NR IPC", "RWoW-RDE IPC", "RDE gain [%]"]);
    for (i, corr) in corrs.iter().enumerate() {
        let (nr, rde) = (ipcs[2 * i], ipcs[2 * i + 1]);
        t.row(&[
            format!("{corr:.2}"),
            format!("{nr:.3}"),
            format!("{rde:.3}"),
            format!("{:+.1}", (rde / nr - 1.0) * 100.0),
        ]);
    }
    println!("ablation_rotation — same-offset correlation vs rotation benefit:");
    println!("{}", t.render());

    // Status-poll cost: re-run a same-bank write burst with the 2-cycle
    // DIMM-register poll vs a free oracle.
    {
        use pcmap_core::PcmapController;
        use pcmap_ctrl::{Controller, MemRequest, ReqId, ReqKind};
        use pcmap_types::{CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams};
        let org = MemOrg::paper_default();
        let drain_time = |poll: u64| -> u64 {
            let mut c = PcmapController::new(
                SystemKind::RwowRde,
                org,
                TimingParams::paper_default(),
                QueueParams::paper_default(),
                1,
            );
            c.set_status_poll_cost(poll);
            let mut id = 0u64;
            for k in 0..200u64 {
                let addr =
                    k * 64 * org.channels as u64 * org.lines_per_row as u64 * org.banks as u64;
                let loc = org.decode(PhysAddr::new(addr));
                if loc.bank.index() != 0 || loc.channel.index() != 0 || id >= 20 {
                    continue;
                }
                id += 1;
                let old = c.rank().read_line(loc.bank, loc.row, loc.col).data;
                let mut data = old;
                let w = (k % 8) as usize;
                data.set_word(w, !old.word(w));
                let req = MemRequest {
                    id: ReqId(id),
                    kind: ReqKind::Write { data },
                    line: PhysAddr::new(addr).line(),
                    loc,
                    core: CoreId(0),
                    arrival: Cycle(0),
                };
                c.enqueue_write(req, Cycle(0)).unwrap();
            }
            let mut now = Cycle(0);
            c.step(now);
            while let Some(wake) = c.next_wake(now) {
                now = wake;
                c.step(now);
                if now.0 > 100_000 {
                    break;
                }
            }
            now.0
        };
        println!(
            "ablation_status_poll — 20-write same-bank burst drain: {} cycles with 2-cycle polls, {} with free oracle
",
            drain_time(2),
            drain_time(0)
        );
    }

    // §IV-B4: splitting multi-word writes to keep RoW applicable.
    {
        use pcmap_core::PcmapController;
        use pcmap_ctrl::{Controller, MemRequest, ReqId, ReqKind};
        use pcmap_types::{CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams};
        let org = MemOrg::tiny();
        let run = |split: bool| -> (u64, u64) {
            let mut c = PcmapController::new(
                SystemKind::RowNr,
                org,
                TimingParams::paper_default(),
                QueueParams::paper_default(),
                1,
            );
            c.set_split_writes_for_row(split);
            for k in 0..26u64 {
                let line = (k / 8) * 16 + k % 8; // distinct bank-0 lines
                let addr = line * 64;
                let loc = org.decode(PhysAddr::new(addr));
                let old = c.rank().read_line(loc.bank, loc.row, loc.col).data;
                let mut data = old;
                for w in [2usize, 4, 6] {
                    data.set_word(w, !old.word(w));
                }
                let req = MemRequest {
                    id: ReqId(k + 1),
                    kind: ReqKind::Write { data },
                    line: PhysAddr::new(addr).line(),
                    loc,
                    core: CoreId(0),
                    arrival: Cycle(0),
                };
                c.enqueue_write(req, Cycle(0)).unwrap();
            }
            for r in 0..4u64 {
                let addr = PhysAddr::new(64 + r * 4096);
                let req = MemRequest {
                    id: ReqId(100 + r),
                    kind: ReqKind::Read,
                    line: addr.line(),
                    loc: org.decode(addr),
                    core: CoreId(0),
                    arrival: Cycle(0),
                };
                let _ = c.enqueue_read(req, Cycle(0));
            }
            let mut now = Cycle(0);
            c.step(now);
            while let Some(wake) = c.next_wake(now) {
                now = wake;
                c.step(now);
                if now.0 > 1_000_000 {
                    break;
                }
            }
            (c.stats().reads_via_row, now.0)
        };
        let (row_off, t_off) = run(false);
        let (row_on, t_on) = run(true);
        println!(
            "ablation_row_multiword — 26x 3-word writes + 4 reads: split off serves {row_off} RoW reads in {t_off} cycles; split on serves {row_on} in {t_on}
"
        );
    }

    // Rollback accounting bound.
    let faulty = run(
        SimConfig::paper_default(SystemKind::RwowRde)
            .with_requests(requests)
            .with_rollback(RollbackMode::AlwaysFaulty),
        &wl,
    );
    let clean = run(
        SimConfig::paper_default(SystemKind::RwowRde).with_requests(requests),
        &wl,
    );
    println!("ablation_rollback — always-faulty {faulty:.3} vs none-faulty {clean:.3} IPC");
}
