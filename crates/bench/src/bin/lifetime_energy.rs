//! Beyond the paper's tables: wear balance (§IV-C2 argues rotation improves
//! lifetime) and PCM energy per instruction across the six systems.

use pcmap_core::SystemKind;
use pcmap_sim::{SimConfig, System, TableBuilder};
use pcmap_workloads::catalog;

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12_000);
    let wl = catalog::by_name("canneal").expect("catalog workload");
    println!("Lifetime & energy (canneal, {requests} requests)\n");
    println!("wear imbalance = hottest chip's writes / mean (1.0 = perfectly level);");
    println!("the paper argues ECC/PCC rotation levels the every-write check traffic.\n");

    let mut t = TableBuilder::new(&[
        "system",
        "wear imbalance",
        "dyn energy [uJ]",
        "total energy [uJ]",
        "nJ / kilo-inst",
    ]);
    for kind in SystemKind::all() {
        let cfg = SimConfig::paper_default(kind).with_requests(requests);
        let r = System::new(cfg, wl.clone()).run();
        t.row(&[
            kind.label().to_string(),
            format!("{:.2}", r.wear_imbalance),
            format!("{:.1}", r.energy_dynamic_nj / 1000.0),
            format!("{:.1}", r.energy_total_nj / 1000.0),
            format!("{:.1}", r.energy_total_nj * 1000.0 / r.instructions as f64),
        ]);
    }
    print!("{}", t.render());
}
