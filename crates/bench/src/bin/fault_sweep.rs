//! Fault-injection sweep and soak gate (DESIGN.md §11).
//!
//! ```text
//! fault_sweep [--workload NAME] [--system KIND] [--requests N]
//!             [--rates R1,R2,...] [--fault-rate R] [--fault-seed S]
//!             [--jobs N] [--json PATH] [--csv PATH] [--soak [PATH]]
//! ```
//!
//! Sweeps the headline fault rate over a seeded storm profile
//! ([`FaultConfig::storm`]) and reports, per rate, how the recovery
//! machinery held up: IPC, faults injected, SECDED corrections, PCC
//! reconstructions, retries, failed reads, watchdog trips, degradation
//! enters/exits, corruption rollbacks — and the two numbers that must
//! stay zero on a correct stack, silent corruptions and protocol
//! invariant violations.
//!
//! `--soak` switches to the CI gate: a fixed seeded storm with an
//! aggressive degradation window, asserting zero silent corruptions,
//! zero invariant violations, every injected fault visibly accounted
//! for, and at least one sweep point that both enters *and* exits
//! degraded mode. The verdict is written to `results/soak.json` (or the
//! given path) and a failed assertion exits non-zero.
//!
//! All sweep points are independent, so `--jobs N` farms them to the
//! deterministic pool: the table, JSON, and CSV are byte-identical at
//! every job count. `PCMAP_FAULTS=RATE[:SEED]` preseeds a single-rate
//! sweep, as everywhere else.

use pcmap_core::SystemKind;
use pcmap_obs::Value;
use pcmap_sim::{RunReport, SimConfig, SweepRunner, System, TableBuilder};
use pcmap_types::FaultConfig;
use pcmap_workloads::catalog;

/// Default rate ladder: fault-free anchor plus four storm intensities.
const DEFAULT_RATES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

struct Args {
    workload: String,
    system: SystemKind,
    requests: u64,
    rates: Vec<f64>,
    fault_seed: u64,
    jobs: usize,
    json: Option<String>,
    csv: Option<String>,
    soak: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "canneal".to_owned(),
        system: SystemKind::RwowRde,
        requests: 4_000,
        rates: DEFAULT_RATES.to_vec(),
        fault_seed: pcmap_bench::DEFAULT_FAULT_SEED,
        jobs: pcmap_bench::jobs_from_args(),
        json: None,
        csv: None,
        soak: None,
    };
    if let Some(f) = pcmap_bench::faults_from_env() {
        args.rates = vec![f.rate];
        args.fault_seed = f.seed;
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--workload" | "-w" => args.workload = value("--workload")?,
            "--system" | "-s" => {
                let v = value("--system")?;
                args.system = SystemKind::all()
                    .into_iter()
                    .find(|k| k.label().eq_ignore_ascii_case(&v))
                    .or(match v.to_ascii_lowercase().as_str() {
                        "baseline" => Some(SystemKind::Baseline),
                        "rwow-nr" => Some(SystemKind::RwowNr),
                        "rwow-rde" | "pcmap" => Some(SystemKind::RwowRde),
                        _ => None,
                    })
                    .ok_or(format!("unknown system '{v}'"))?;
            }
            "--requests" | "-n" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?;
            }
            "--rates" => {
                args.rates = value("--rates")?
                    .split(',')
                    .map(|r| r.trim().parse().map_err(|e| format!("bad rate: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.rates.is_empty() {
                    return Err("--rates needs at least one rate".into());
                }
            }
            "--fault-rate" => {
                args.rates = vec![value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("bad fault rate: {e}"))?];
            }
            "--fault-seed" => {
                args.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad fault seed: {e}"))?;
            }
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad job count: {e}"))?
                    .max(1);
            }
            "--json" => args.json = Some(value("--json")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--soak" => {
                // Optional path operand; default under results/.
                args.soak = Some("results/soak.json".to_owned());
            }
            "--soak-path" => args.soak = Some(value("--soak-path")?),
            "--help" | "-h" => {
                println!(
                    "usage: fault_sweep [--workload NAME] [--system KIND] [--requests N] \
                     [--rates R1,R2,...] [--fault-rate R] [--fault-seed S] \
                     [--jobs N] [--json PATH] [--csv PATH] [--soak] [--soak-path PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// The storm profile for one sweep point. The soak gate tightens the
/// degradation windows so a noisy rank demonstrably cycles through
/// degraded mode and back within a short run.
fn storm(rate: f64, seed: u64, soak: bool) -> FaultConfig {
    let mut f = FaultConfig::storm(rate, seed);
    if soak && f.enabled() {
        f.degrade_threshold = 4;
        f.degrade_window = 8_192;
        f.clean_window = 2_048;
    }
    f
}

fn run_point(args: &Args, rate: f64, soak: bool) -> RunReport {
    let wl = catalog::by_name(&args.workload).unwrap_or_else(|| {
        eprintln!("unknown workload '{}'", args.workload);
        std::process::exit(2);
    });
    let cfg = SimConfig::paper_default(args.system)
        .with_requests(args.requests)
        .with_faults(storm(rate, args.fault_seed, soak));
    System::new(cfg, wl).run()
}

fn point_json(rate: f64, seed: u64, r: &RunReport) -> Value {
    let mut o = Value::obj();
    o.set("rate", Value::F64(rate));
    o.set("fault_seed", Value::U64(seed));
    o.set("report", r.to_json());
    o
}

fn sweep_table(rates: &[f64], reports: &[RunReport]) -> TableBuilder {
    let mut t = TableBuilder::new(&[
        "rate",
        "IPC",
        "read lat",
        "injected",
        "corrected",
        "reconstr",
        "retries",
        "failed",
        "watchdog",
        "degraded",
        "rollbacks",
        "silent",
        "violations",
    ]);
    for (rate, r) in rates.iter().zip(reports) {
        t.row(&[
            format!("{rate}"),
            format!("{:.3}", r.ipc()),
            format!("{:.1}", r.mean_read_latency),
            r.faults_injected.to_string(),
            r.faults_corrected.to_string(),
            r.faults_reconstructed.to_string(),
            r.fault_retries.to_string(),
            r.reads_failed.to_string(),
            r.watchdog_trips.to_string(),
            format!("{}/{}", r.degraded_enters, r.degraded_exits),
            r.corruption_rollbacks.to_string(),
            r.silent_corruptions.to_string(),
            r.invariant_violations.to_string(),
        ]);
    }
    t
}

fn main() {
    let _prof = pcmap_bench::prof_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let soak = args.soak.is_some();
    let rates = args.rates.clone();
    let mut runner = SweepRunner::new(args.jobs);
    let reports: Vec<RunReport> = runner.map(rates.clone(), |rate| run_point(&args, rate, soak));

    println!(
        "fault sweep · {} · {} · {} requests · fault seed {:#x}{}",
        args.workload,
        args.system.label(),
        args.requests,
        args.fault_seed,
        if soak { " · soak gate" } else { "" }
    );
    let t = sweep_table(&rates, &reports);
    print!("{}", t.render());

    if let Some(path) = &args.json {
        let arr = Value::Arr(
            rates
                .iter()
                .zip(&reports)
                .map(|(&rate, r)| point_json(rate, args.fault_seed, r))
                .collect(),
        );
        match pcmap_bench::write_json_result(path, &arr) {
            Ok(p) => println!("wrote {p}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.csv {
        match pcmap_obs::export::write_text(path, &t.to_csv()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(soak_path) = &args.soak {
        // The verdict itself lives in pcmap_bench::soak so its failure
        // rules (silent corruption, over-budget retry, invisible faults,
        // missing degradation round-trip) are unit-tested.
        let runs: Vec<pcmap_bench::soak::SoakRunStats> = rates
            .iter()
            .zip(&reports)
            .map(|(&rate, r)| {
                let budget = storm(rate, args.fault_seed, soak).retry_budget;
                pcmap_bench::soak::SoakRunStats::from_report(rate, budget, r)
            })
            .collect();
        let gate = pcmap_bench::soak::verdict(&runs);
        let failures = gate.failures.clone();
        let mut verdict = Value::obj();
        verdict.set("workload", Value::Str(args.workload.clone()));
        verdict.set("system", Value::Str(args.system.label().to_owned()));
        verdict.set("requests", Value::U64(args.requests));
        verdict.set("fault_seed", Value::U64(args.fault_seed));
        verdict.set(
            "rates",
            Value::Arr(rates.iter().map(|&r| Value::F64(r)).collect()),
        );
        verdict.set(
            "silent_corruptions",
            Value::U64(reports.iter().map(|r| r.silent_corruptions).sum()),
        );
        verdict.set(
            "invariant_violations",
            Value::U64(reports.iter().map(|r| r.invariant_violations).sum()),
        );
        verdict.set(
            "faults_injected",
            Value::U64(reports.iter().map(|r| r.faults_injected).sum()),
        );
        gate.render_into(&mut verdict);
        verdict.set(
            "runs",
            Value::Arr(
                rates
                    .iter()
                    .zip(&reports)
                    .map(|(&rate, r)| {
                        let mut o = Value::obj();
                        o.set("rate", Value::F64(rate));
                        o.set("ipc", Value::F64(r.ipc()));
                        o.set("faults_injected", Value::U64(r.faults_injected));
                        o.set("faults_corrected", Value::U64(r.faults_corrected));
                        o.set("faults_reconstructed", Value::U64(r.faults_reconstructed));
                        o.set("fault_retries", Value::U64(r.fault_retries));
                        o.set("reads_failed", Value::U64(r.reads_failed));
                        o.set("watchdog_trips", Value::U64(r.watchdog_trips));
                        o.set("degraded_enters", Value::U64(r.degraded_enters));
                        o.set("degraded_exits", Value::U64(r.degraded_exits));
                        o.set("degraded_cycles", Value::U64(r.degraded_cycles));
                        o.set("corruption_rollbacks", Value::U64(r.corruption_rollbacks));
                        o.set("silent_corruptions", Value::U64(r.silent_corruptions));
                        o.set("invariant_violations", Value::U64(r.invariant_violations));
                        o
                    })
                    .collect(),
            ),
        );
        match pcmap_bench::write_json_result(soak_path, &verdict) {
            Ok(p) => println!("wrote {p}"),
            Err(e) => {
                eprintln!("error: writing {soak_path}: {e}");
                std::process::exit(1);
            }
        }
        if failures.is_empty() {
            println!("soak gate PASSED");
        } else {
            for f in &failures {
                eprintln!("soak FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
