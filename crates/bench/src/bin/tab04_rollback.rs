//! Table IV: cost of RoW rollbacks — IPC improvement under the
//! always-faulty bound vs the none-faulty bound.
//!
//! Also writes `results/tab04_rollback.json` (rows plus the full telemetry
//! of each always-faulty run, including its rollback rate) and
//! `results/tab04_rollback.csv`.

use pcmap_bench::{runner_from_args, scale_from_args, write_csv_result, write_json_result};
use pcmap_obs::Value;
use pcmap_sim::experiments::tab4_with;
use pcmap_sim::TableBuilder;

fn main() {
    let rows = tab4_with(scale_from_args(), &mut runner_from_args());
    println!("Table IV — RoW rollback cost (RWoW-NR vs baseline; fixed layout always defers verification)");
    println!("Paper: canneal 5.8% max rollbacks, 12.18% faulty / 14.87% none-faulty.\n");
    let mut t = TableBuilder::new(&[
        "workload",
        "max rollbacks [%]",
        "IPC imp. faulty [%]",
        "IPC imp. none-faulty [%]",
    ]);
    for r in &rows {
        t.row(&[
            r.workload.clone(),
            format!("{:.1}", r.max_rollback_pct),
            format!("{:+.2}", r.faulty_imp_pct),
            format!("{:+.2}", r.none_faulty_imp_pct),
        ]);
    }
    print!("{}", t.render());

    let mut out = Value::obj();
    out.set("table", Value::Str("tab04_rollback".into()));
    out.set(
        "rows",
        Value::Arr(
            rows.iter()
                .map(|r| {
                    let mut o = Value::obj();
                    o.set("workload", Value::Str(r.workload.clone()));
                    o.set("max_rollback_pct", Value::F64(r.max_rollback_pct));
                    o.set("faulty_imp_pct", Value::F64(r.faulty_imp_pct));
                    o.set("none_faulty_imp_pct", Value::F64(r.none_faulty_imp_pct));
                    o.set("faulty_report", r.faulty_report.to_json());
                    o
                })
                .collect(),
        ),
    );
    for res in [
        write_json_result("results/tab04_rollback.json", &out),
        write_csv_result("results/tab04_rollback.csv", &t),
    ] {
        match res {
            Ok(path) => println!("wrote {path}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
