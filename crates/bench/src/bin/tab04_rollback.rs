//! Table IV: cost of RoW rollbacks — IPC improvement under the
//! always-faulty bound vs the none-faulty bound.

use pcmap_bench::scale_from_args;
use pcmap_sim::experiments::tab4;
use pcmap_sim::TableBuilder;

fn main() {
    let rows = tab4(scale_from_args());
    println!("Table IV — RoW rollback cost (RWoW-NR vs baseline; fixed layout always defers verification)");
    println!("Paper: canneal 5.8% max rollbacks, 12.18% faulty / 14.87% none-faulty.\n");
    let mut t = TableBuilder::new(&[
        "workload",
        "max rollbacks [%]",
        "IPC imp. faulty [%]",
        "IPC imp. none-faulty [%]",
    ]);
    for r in &rows {
        t.row(&[
            r.workload.clone(),
            format!("{:.1}", r.max_rollback_pct),
            format!("{:+.2}", r.faulty_imp_pct),
            format!("{:+.2}", r.none_faulty_imp_pct),
        ]);
    }
    print!("{}", t.render());
}
