//! Figure 11: IPC improvement over the baseline.

use pcmap_bench::{matrix_with_averages, runner_from_args, scale_from_args};
use pcmap_core::SystemKind;
use pcmap_sim::TableBuilder;

fn main() {
    let mut runner = runner_from_args();
    let rows = matrix_with_averages(scale_from_args(), &mut runner);
    println!("Figure 11 — IPC improvement over baseline [%]");
    println!(
        "Paper averages: RoW-NR 4.5, WoW-NR 6.1, RWoW-NR 9.95, RWoW-RD 13.1, RWoW-RDE 16.6.\n"
    );
    let kinds = SystemKind::pcmap_variants();
    let mut headers = vec!["workload"];
    headers.extend(kinds.iter().map(|k| k.label()));
    let mut t = TableBuilder::new(&headers);
    for row in &rows {
        let base = row.report(SystemKind::Baseline).ipc();
        let mut cells = vec![row.name.clone()];
        for &k in &kinds {
            cells.push(format!(
                "{:+.1}",
                (row.report(k).ipc() / base - 1.0) * 100.0
            ));
        }
        t.row(&cells);
    }
    print!("{}", t.render());
}
