//! Figure 8: intra-rank-level parallelism (IRLP) per system.

use pcmap_bench::{matrix_with_averages, render_metric, scale_from_args};
use pcmap_core::SystemKind;

fn main() {
    let rows = matrix_with_averages(scale_from_args());
    println!("Figure 8 — IRLP during writes (max 8.0)");
    println!("Paper: baseline ~2.4 average; RWoW-RDE 4.5 average, up to 7.4.\n");
    let kinds = [SystemKind::Baseline, SystemKind::WowNr, SystemKind::RwowRd, SystemKind::RwowRde];
    print!("{}", render_metric(&rows, &kinds, |r| r.irlp_mean, 2));
    println!("\nPer-write maxima:");
    print!("{}", render_metric(&rows, &kinds, |r| r.irlp_max, 2));
}
