//! Figure 8: intra-rank-level parallelism (IRLP) per system.
//!
//! Also writes `results/fig08_irlp.json` (full per-run telemetry) and
//! `results/fig08_irlp.csv` (the printed table).

use pcmap_bench::{
    matrix_json, matrix_with_averages, metric_table, runner_from_args, scale_from_args,
    write_csv_result, write_json_result,
};
use pcmap_core::SystemKind;
use pcmap_obs::Value;

fn main() {
    let _prof = pcmap_bench::prof_env();
    let mut runner = runner_from_args();
    let rows = matrix_with_averages(scale_from_args(), &mut runner);
    println!("Figure 8 — IRLP during writes (max 8.0)");
    println!("Paper: baseline ~2.4 average; RWoW-RDE 4.5 average, up to 7.4.\n");
    let kinds = [
        SystemKind::Baseline,
        SystemKind::WowNr,
        SystemKind::RwowRd,
        SystemKind::RwowRde,
    ];
    let means = metric_table(&rows, &kinds, |r| r.irlp_mean, 2);
    print!("{}", means.render());
    println!("\nPer-write maxima:");
    let maxima = metric_table(&rows, &kinds, |r| r.irlp_max, 2);
    print!("{}", maxima.render());

    let mut out = Value::obj();
    out.set("figure", Value::Str("fig08_irlp".into()));
    out.set("rows", matrix_json(&rows));
    for res in [
        write_json_result("results/fig08_irlp.json", &out),
        write_csv_result("results/fig08_irlp.csv", &means),
        write_csv_result("results/fig08_irlp_max.csv", &maxima),
    ] {
        match res {
            Ok(path) => println!("wrote {path}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
