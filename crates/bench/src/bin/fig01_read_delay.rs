//! Figure 1: percentage of reads delayed by an ongoing write, and the
//! effective read latency of asymmetric PCM normalized to symmetric PCM.

use pcmap_bench::scale_from_args;
use pcmap_sim::experiments::fig1;
use pcmap_sim::TableBuilder;

fn main() {
    let scale = scale_from_args();
    let rows = fig1(scale);
    let mut t = TableBuilder::new(&["workload", "reads delayed [%]", "norm. read latency (x)"]);
    for r in &rows {
        t.row(&[
            r.workload.clone(),
            format!("{:.1}", r.delayed_pct),
            format!("{:.2}", r.norm_read_latency),
        ]);
    }
    println!("Figure 1 — read-delay impact of asymmetric PCM writes (baseline system)");
    println!("Paper: 11.5-38.1% of reads delayed; 1.2-1.8x effective latency.\n");
    print!("{}", t.render());
}
