//! Criterion benches: one per paper table/figure, exercising the simulator
//! at reduced scale so `cargo bench` finishes in minutes. The figure
//! *binaries* (src/bin/fig*.rs) regenerate the full rows; these benches
//! track the simulator's own performance per experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use pcmap_core::SystemKind;
use pcmap_sim::experiments::{fig2, run_one, EvalScale};
use pcmap_sim::{SimConfig, System};
use pcmap_types::TimingParams;
use pcmap_workloads::catalog;

fn tiny() -> EvalScale {
    EvalScale {
        requests: 1_500,
        full_mt: false,
    }
}

fn bench_fig1(c: &mut Criterion) {
    let wl = catalog::by_name("mcf").unwrap();
    c.bench_function("fig01_baseline_asym_vs_sym", |b| {
        b.iter(|| {
            let asym = run_one(&wl, SystemKind::Baseline, tiny());
            let cfg = SimConfig::paper_default(SystemKind::Baseline)
                .with_requests(tiny().requests)
                .with_timing(TimingParams::paper_default().symmetric());
            let sym = System::new(cfg, wl.clone()).run();
            (asym.mean_read_latency, sym.mean_read_latency)
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig02_dirty_word_distribution", |b| b.iter(|| fig2(2_000)));
}

fn bench_fig8_to_11(c: &mut Criterion) {
    let wl = catalog::by_name("streamcluster").unwrap();
    for kind in SystemKind::all() {
        c.bench_function(&format!("fig08_11_matrix_{}", kind.label()), |b| {
            b.iter(|| run_one(&wl, kind, tiny()))
        });
    }
}

fn bench_tab3(c: &mut Criterion) {
    let wl = catalog::by_name("MP4").unwrap();
    c.bench_function("tab03_ratio8_rwow_rde", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_default(SystemKind::RwowRde)
                .with_requests(tiny().requests)
                .with_timing(TimingParams::paper_default().with_write_to_read_ratio(8));
            System::new(cfg, wl.clone()).run().ipc()
        })
    });
}

fn bench_tab4(c: &mut Criterion) {
    let wl = catalog::by_name("canneal").unwrap();
    c.bench_function("tab04_rollback_faulty_bound", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_default(SystemKind::RwowRde)
                .with_requests(tiny().requests)
                .with_rollback(pcmap_core::RollbackMode::AlwaysFaulty);
            System::new(cfg, wl.clone()).run().rollbacks
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_fig1, bench_fig2, bench_fig8_to_11, bench_tab3, bench_tab4
}
criterion_main!(figures);
