//! Criterion microbenches of the core components: SECDED, parity
//! reconstruction, rotation layout, IRLP accounting, and the generators.

use criterion::{criterion_group, criterion_main, Criterion};
use pcmap_core::Layout;
use pcmap_ctrl::IrlpTracker;
use pcmap_ecc::{hamming, LineCodec};
use pcmap_types::{BankId, CacheLine, Cycle, LineAddr};
use pcmap_workloads::{catalog, CoreStream};
use std::hint::black_box;

fn bench_hamming(c: &mut Criterion) {
    c.bench_function("secded_encode_decode", |b| {
        b.iter(|| {
            let cw = hamming::encode(black_box(0xdead_beef_cafe_f00d));
            hamming::decode(cw)
        })
    });
}

fn bench_line_codec(c: &mut Criterion) {
    let codec = LineCodec::new();
    let line = CacheLine::from_seed(7);
    c.bench_function("line_ecc_word", |b| {
        b.iter(|| codec.ecc_word(black_box(&line)))
    });
    let ecc = codec.ecc_word(&line);
    c.bench_function("line_verify_clean", |b| {
        b.iter(|| codec.verify(black_box(&line), ecc))
    });
    let pcc = codec.pcc_word(&line);
    c.bench_function("line_reconstruct", |b| {
        b.iter(|| codec.reconstruct(black_box(&line), 3, pcc))
    });
}

fn bench_layout(c: &mut Criterion) {
    let l = Layout::rotate_all();
    c.bench_function("layout_word_chips", |b| {
        b.iter(|| l.word_chips(black_box(LineAddr(0x1234_5678))))
    });
}

fn bench_irlp(c: &mut Criterion) {
    c.bench_function("irlp_window_settle", |b| {
        b.iter(|| {
            let mut t = IrlpTracker::new(8);
            for i in 0..32u64 {
                t.open_window(BankId((i % 8) as u8), Cycle(i * 10), Cycle(i * 10 + 56));
                t.record_segment(BankId((i % 8) as u8), Cycle(i * 10), Cycle(i * 10 + 56));
            }
            t.settle(Cycle::MAX);
            t.mean()
        })
    });
}

fn bench_generator(c: &mut Criterion) {
    let wl = catalog::by_name("canneal").unwrap();
    c.bench_function("workload_stream_1000_ops", |b| {
        b.iter(|| {
            let mut g = CoreStream::new(&wl.per_core[0], 0, 1);
            for _ in 0..1000 {
                black_box(g.next_op());
            }
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_hamming, bench_line_codec, bench_layout, bench_irlp, bench_generator
}
criterion_main!(components);
