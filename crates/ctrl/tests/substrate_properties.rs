//! Property tests over the controller substrate: bus slot allocation and
//! drain hysteresis.

use pcmap_ctrl::{BusDir, ChannelBus, DrainPolicy, DrainState};
use pcmap_types::{Cycle, QueueParams, TimingParams};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bus_slots_never_overlap(dirs in proptest::collection::vec(any::<bool>(), 1..40)) {
        let p = TimingParams::paper_default();
        let mut bus = ChannelBus::new();
        let mut last_end = 0u64;
        for d in dirs {
            let dir = if d { BusDir::Read } else { BusDir::Write };
            let start = bus.reserve(dir, Cycle(0), &p);
            prop_assert!(start.0 >= last_end, "burst overlaps previous transfer");
            last_end = start.0 + p.burst;
        }
    }

    #[test]
    fn bus_earliest_is_honored(earliests in proptest::collection::vec(0u64..10_000, 1..30)) {
        let p = TimingParams::paper_default();
        let mut bus = ChannelBus::new();
        for e in earliests {
            let start = bus.reserve(BusDir::Read, Cycle(e), &p);
            prop_assert!(start.0 >= e);
        }
    }

    #[test]
    fn bus_turnaround_charged_exactly_on_direction_change(
        dirs in proptest::collection::vec(any::<bool>(), 2..30)
    ) {
        let p = TimingParams::paper_default();
        let mut bus = ChannelBus::new();
        let mut prev_dir: Option<BusDir> = None;
        let mut prev_end = 0u64;
        for d in dirs {
            let dir = if d { BusDir::Read } else { BusDir::Write };
            let start = bus.reserve(dir, Cycle(0), &p);
            if let Some(pd) = prev_dir {
                let gap = start.0 - prev_end;
                if pd == dir {
                    prop_assert_eq!(gap, 0, "same direction packs back-to-back");
                } else if pd == BusDir::Write {
                    prop_assert_eq!(gap, p.t_wtr, "write-to-read pays tWTR");
                } else {
                    prop_assert_eq!(gap, p.t_ccd, "read-to-write pays tCCD");
                }
            }
            prev_dir = Some(dir);
            prev_end = start.0 + p.burst;
        }
    }

    #[test]
    fn drain_policy_never_oscillates_within_band(
        lens in proptest::collection::vec(0usize..33, 1..100)
    ) {
        // Within (low, high) the state must never change — pure hysteresis.
        let q = QueueParams::paper_default();
        let mut d = DrainPolicy::new(&q);
        let mut prev = d.state();
        for len in lens {
            let next = d.update(len);
            if len > q.low_entries() && len < q.high_entries() {
                prop_assert_eq!(next, prev, "state changed inside the hysteresis band");
            }
            if len >= q.high_entries() {
                prop_assert_eq!(next, DrainState::Draining);
            }
            if len <= q.low_entries() {
                prop_assert_eq!(next, DrainState::Normal);
            }
            prev = next;
        }
    }

    #[test]
    fn drain_episode_count_is_monotone(lens in proptest::collection::vec(0usize..33, 1..100)) {
        let q = QueueParams::paper_default();
        let mut d = DrainPolicy::new(&q);
        let mut prev_count = 0;
        for len in lens {
            d.update(len);
            prop_assert!(d.drains_started() >= prev_count);
            prop_assert!(d.drains_started() <= prev_count + 1);
            prev_count = d.drains_started();
        }
    }
}
