//! Seeded illegal schedules the protocol checker must reject (DESIGN.md
//! §10): each test hand-constructs a schedule that breaks one paper
//! invariant and asserts the checker flags exactly that violation, plus
//! a green end-to-end run proving legal schedules validate clean.

use pcmap_ctrl::{
    BaselineController, Controller, InvariantKind, MemRequest, ProtocolChecker, ReqId, ReqKind,
};
use pcmap_device::timing::RankTiming;
use pcmap_types::{
    BankId, CacheLine, ChipId, ChipSet, CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams,
};

fn params() -> TimingParams {
    TimingParams::paper_default()
}

fn collecting() -> ProtocolChecker {
    ProtocolChecker::collecting(&params())
}

fn only_violation(c: &ProtocolChecker, kind: InvariantKind) {
    assert_eq!(c.violation_count(), 1, "{:?}", c.violations());
    assert_eq!(
        c.violations()[0].kind,
        kind,
        "{}",
        c.violations()[0].render()
    );
}

#[test]
fn command_to_busy_chip_is_rejected() {
    let mut c = collecting();
    let mut t = RankTiming::new(&MemOrg::tiny());
    // A write holds chips {2,3} for [0, 100).
    let mut write_set = ChipSet::empty();
    write_set.insert(2);
    write_set.insert(3);
    t.reserve(BankId(0), write_set, Cycle(0), Cycle(100));
    // A read to a busy chip without routing around it: illegal.
    let mut read_set = ChipSet::empty();
    read_set.insert(3);
    read_set.insert(4);
    c.command(&t, BankId(0), read_set, Cycle(10), Cycle(40), "read");
    only_violation(&c, InvariantKind::BusyChipCommand);
}

#[test]
fn wow_writes_on_overlapping_chips_are_rejected() {
    // §IV-D: concurrent writes must touch disjoint chips. The second
    // write's reservation overlapping the first is the same busy-chip
    // rule seen from the write side.
    let mut c = collecting();
    let mut t = RankTiming::new(&MemOrg::tiny());
    let first: ChipSet = [0usize, 1, 2].into_iter().collect();
    t.reserve(BankId(0), first, Cycle(0), Cycle(80));
    let second: ChipSet = [2usize, 5].into_iter().collect();
    c.command(
        &t,
        BankId(0),
        second,
        Cycle(20),
        Cycle(90),
        "write data chip",
    );
    only_violation(&c, InvariantKind::BusyChipCommand);
    // Disjoint chips at the same time are fine.
    let disjoint: ChipSet = [6usize, 7].into_iter().collect();
    c.command(
        &t,
        BankId(0),
        disjoint,
        Cycle(20),
        Cycle(90),
        "write data chip",
    );
    assert_eq!(c.violation_count(), 1);
}

#[test]
fn row_read_missing_word_without_pcc_plan_is_rejected() {
    let mut c = collecting();
    let word_chips = ChipSet::data_chips_fixed();
    // Chip 3 is busy, so it is skipped — but the PCC chip was not added
    // to the read set, so the line cannot be reconstructed.
    let mut read_set = word_chips;
    read_set.remove(3);
    c.row_read(BankId(0), Cycle(0), word_chips, read_set, ChipId(9));
    only_violation(&c, InvariantKind::RowWithoutPlan);
}

#[test]
fn row_read_with_pcc_plan_is_legal() {
    let mut c = collecting();
    let word_chips = ChipSet::data_chips_fixed();
    let mut read_set = word_chips;
    read_set.remove(3);
    read_set.insert(9); // PCC chip in place of the busy word chip
    c.row_read(BankId(0), Cycle(0), word_chips, read_set, ChipId(9));
    assert_eq!(c.violation_count(), 0);
}

#[test]
fn row_read_with_two_missing_words_is_rejected() {
    // §IV-B1: one parity chip reconstructs at most one missing word.
    let mut c = collecting();
    let word_chips = ChipSet::data_chips_fixed();
    let mut read_set = word_chips;
    read_set.remove(3);
    read_set.remove(5);
    read_set.insert(9);
    c.row_read(BankId(0), Cycle(0), word_chips, read_set, ChipId(9));
    only_violation(&c, InvariantKind::RowWithoutPlan);
}

#[test]
fn pcc_step2_reordered_from_step1_is_rejected() {
    let p = params();
    let mut c = collecting();
    let program_start = Cycle(100);
    // Legal: back-to-back at the worst-case step-1 end.
    c.write_steps(BankId(0), program_start, Cycle(100 + p.array_set));
    assert_eq!(c.violation_count(), 0);
    // Illegal: a gap after step 1 (or starting step 2 early).
    c.write_steps(BankId(0), program_start, Cycle(100 + p.array_set + 4));
    only_violation(&c, InvariantKind::PccStepGap);
}

#[test]
fn retire_before_deferred_verify_is_rejected() {
    let mut c = collecting();
    // Data handed to the core at cycle 200, deferred SECDED finishing
    // at 150: the speculation window would never be closed.
    c.retire(BankId(0), true, Cycle(200), Some(Cycle(150)));
    only_violation(&c, InvariantKind::RetireBeforeVerify);
}

#[test]
fn deferred_verify_on_non_row_read_is_rejected() {
    let mut c = collecting();
    c.retire(BankId(0), false, Cycle(200), Some(Cycle(260)));
    only_violation(&c, InvariantKind::RetireBeforeVerify);
    // The legal shapes: plain read with no verify, RoW with verify after.
    c.retire(BankId(0), false, Cycle(200), None);
    c.retire(BankId(0), true, Cycle(200), Some(Cycle(260)));
    assert_eq!(c.violation_count(), 1);
}

#[test]
fn rollback_without_deferred_check_is_rejected() {
    let mut c = collecting();
    c.rollback(BankId(0), Cycle(10), true, false);
    only_violation(&c, InvariantKind::RollbackWithoutFault);
    c.rollback(BankId(0), Cycle(11), true, true);
    assert_eq!(c.violation_count(), 1);
}

#[test]
fn wrong_status_poll_charge_is_rejected() {
    let p = params();
    let mut c = collecting();
    // Overlapped op must start exactly status_cmd cycles after the
    // decision (§IV-D1)…
    c.status_poll(BankId(0), Cycle(50), Cycle(50 + p.status_cmd), true);
    assert_eq!(c.violation_count(), 0);
    c.status_poll(BankId(0), Cycle(50), Cycle(50), true);
    only_violation(&c, InvariantKind::StatusPollCost);
    // …and a non-overlapped op pays nothing.
    c.status_poll(BankId(0), Cycle(50), Cycle(50 + p.status_cmd), false);
    assert_eq!(c.violation_count(), 2);
}

#[test]
fn speculation_on_degraded_rank_is_rejected() {
    // DESIGN.md §11: a rank demoted by its fault rate must fall back to
    // coarse scheduling — issuing RoW or WoW speculation against it is a
    // protocol violation.
    let mut c = collecting();
    c.speculative_on_degraded(BankId(0), Cycle(10), true, "RoW reconstruction");
    only_violation(&c, InvariantKind::RowOnDegraded);
    // A healthy rank speculates freely.
    c.speculative_on_degraded(BankId(0), Cycle(11), false, "WoW write");
    assert_eq!(c.violation_count(), 1);
}

#[test]
fn retry_beyond_budget_is_rejected() {
    let mut c = collecting();
    // Attempts 1..=3 stay inside a budget of 3.
    for attempt in 1..=3 {
        c.retry(BankId(0), Cycle(attempt as u64), attempt, 3);
    }
    assert_eq!(c.violation_count(), 0);
    // A fourth retry means the controller ignored its own budget and
    // never failed the request upward.
    c.retry(BankId(0), Cycle(4), 4, 3);
    only_violation(&c, InvariantKind::RetryOverBudget);
}

#[test]
fn watchdog_firing_before_deadline_is_rejected() {
    let mut c = collecting();
    let expected_end = Cycle(500);
    let deadline = 256;
    // Exactly at the deadline is the earliest legal trip.
    c.watchdog(BankId(0), Cycle(500 + 256), expected_end, deadline);
    assert_eq!(c.violation_count(), 0);
    // One cycle early: the chip might still legitimately finish.
    c.watchdog(BankId(0), Cycle(500 + 255), expected_end, deadline);
    only_violation(&c, InvariantKind::EarlyWatchdog);
}

#[test]
#[should_panic(expected = "protocol invariant violated")]
fn strict_checker_panics_at_the_violation_site() {
    let mut c = ProtocolChecker::strict(&params());
    let mut t = RankTiming::new(&MemOrg::tiny());
    t.reserve(BankId(0), ChipSet::single(0), Cycle(0), Cycle(100));
    c.command(
        &t,
        BankId(0),
        ChipSet::single(0),
        Cycle(0),
        Cycle(50),
        "read",
    );
}

#[test]
fn baseline_controller_validates_clean_end_to_end() {
    let org = MemOrg::tiny();
    let mut ctrl = BaselineController::new(org, params(), QueueParams::paper_default(), 7);
    let mut now = Cycle(0);
    for i in 0..40u64 {
        let addr = PhysAddr::new(i * 64 * 17);
        let kind = if i % 3 == 0 {
            ReqKind::Write {
                data: CacheLine::zeroed(),
            }
        } else {
            ReqKind::Read
        };
        let req = MemRequest {
            id: ReqId(i),
            kind,
            line: addr.line(),
            loc: org.decode(addr),
            core: CoreId((i % 8) as u8),
            arrival: now,
        };
        let _ = if req.kind.is_read() {
            ctrl.enqueue_read(req, now).map(|_| ())
        } else {
            ctrl.enqueue_write(req, now)
        };
        let _ = ctrl.step(now);
        now = ctrl.next_wake(now).unwrap_or(Cycle(now.0 + 1));
    }
    while ctrl.next_wake(now).is_some() {
        let _ = ctrl.step(now);
        now = ctrl.next_wake(now).unwrap_or(Cycle(now.0 + 1));
    }
    assert_eq!(ctrl.invariant_violations(), 0);
    if cfg!(debug_assertions) && std::env::var_os("PCMAP_CHECK").is_none() {
        assert!(ctrl.invariants_checked() > 0, "checker never ran");
    }
}
