//! Pins the controller's bounded retry + backoff ladder and the
//! stuck-busy watchdog to their exact contracts (DESIGN.md §11).
//!
//! These are the robustness invariants the serve tier (DESIGN.md §16)
//! leans on: a permanently-damaged line costs *exactly* the configured
//! retry budget — never one more attempt, never unbounded — with a
//! monotone exponential backoff, and a hung chip is force-freed at
//! precisely `expected_end + watchdog_deadline`, not a cycle early or
//! late.

use pcmap_ctrl::CtrlCore;
use pcmap_faults::FaultPlan;
use pcmap_types::{
    BankId, ColAddr, Cycle, FaultConfig, MemOrg, QueueParams, RowAddr, TimingParams,
};

/// A fault config whose plan exists (Status corruption armed) but whose
/// read stream never injects anything — the only damage present is what
/// the test plants, so the ladder's arithmetic is exact.
fn quiet_cfg(retry_budget: u32, retry_backoff: u64) -> FaultConfig {
    FaultConfig {
        status_corrupt_rate: 1.0,
        retry_budget,
        retry_backoff,
        watchdog_deadline: 256,
        ..FaultConfig::disabled()
    }
}

fn core_with(cfg: FaultConfig) -> CtrlCore {
    let mut core = CtrlCore::new(
        MemOrg::tiny(),
        TimingParams::paper_default(),
        QueueParams::paper_default(),
        7,
    );
    core.faults = FaultPlan::new(cfg, 0);
    assert!(core.faults.is_some(), "plan must be armed");
    core
}

/// Flips two stored bits in each of two words without touching ECC —
/// per-word SECDED sees a double-bit (uncorrectable) error in both
/// words on every read, and erasure reconstruction (single-word only)
/// cannot save it, so resolve_read has no way out but the retry ladder.
fn plant_two_word_damage(core: &mut CtrlCore, bank: BankId, row: RowAddr, col: ColAddr) {
    for (word, bit) in [(0, 3), (0, 17), (5, 42), (5, 9)] {
        core.rank
            .storage_mut()
            .inject_bit_error(bank, row, col, word, bit);
    }
}

#[test]
fn retries_never_exceed_the_budget() {
    for budget in [0u32, 1, 3, 7] {
        let backoff = 32u64;
        let mut core = core_with(quiet_cfg(budget, backoff));
        let (bank, row, col) = (BankId(0), RowAddr(0), ColAddr(0));
        plant_two_word_damage(&mut core, bank, row, col);

        let res = core.resolve_read(bank, row, col, Cycle(100), false);
        assert!(res.failed, "unrecoverable damage must fail upward");
        assert!(!res.corrupted);
        assert_eq!(
            core.stats.fault_retries,
            u64::from(budget),
            "budget {budget}: ladder must take exactly the budgeted retries"
        );
        assert_eq!(core.stats.reads_failed, 1);
        // Backoff sum: backoff * (2^budget - 1) — attempt k waits
        // backoff << k.
        let expected_backoff = backoff * ((1u64 << budget) - 1);
        assert_eq!(
            res.retry_extra.0, expected_backoff,
            "budget {budget}: exact exponential backoff total"
        );
        assert_eq!(res.reconstruct_extra.0, 0, "no erasure path for 2 words");
        assert_eq!(
            core.checker.violation_count(),
            0,
            "a ladder that stays inside its budget violates nothing"
        );
    }
}

#[test]
fn a_second_failed_read_restarts_the_ladder_fresh() {
    let mut core = core_with(quiet_cfg(3, 8));
    let (bank, row, col) = (BankId(0), RowAddr(0), ColAddr(0));
    plant_two_word_damage(&mut core, bank, row, col);

    let first = core.resolve_read(bank, row, col, Cycle(100), false);
    let second = core.resolve_read(bank, row, col, Cycle(5_000), false);
    assert!(first.failed && second.failed);
    assert_eq!(first.retry_extra.0, second.retry_extra.0);
    assert_eq!(core.stats.fault_retries, 6, "3 retries per failed read");
    assert_eq!(core.stats.reads_failed, 2);
}

#[test]
fn backoff_is_monotone_and_saturates() {
    let plan = FaultPlan::new(quiet_cfg(3, 16), 0).expect("armed plan");
    let mut prev = 0u64;
    for attempt in 0..40u32 {
        let d = plan.retry_delay(attempt);
        assert!(
            d >= prev,
            "backoff must be monotone: delay({attempt}) = {d} < {prev}"
        );
        prev = d;
    }
    assert_eq!(
        plan.retry_delay(16),
        plan.retry_delay(39),
        "shift saturates at 16 so the delay cannot overflow"
    );
    assert_eq!(plan.retry_delay(0), 16);
    assert_eq!(plan.retry_delay(3), 16 << 3);
}

#[test]
fn watchdog_fires_exactly_at_its_threshold_cycle() {
    let mut cfg = quiet_cfg(3, 8);
    cfg.chip_stuck_rate = 1.0; // every chip op hangs
    let deadline = cfg.watchdog_deadline;
    let mut core = core_with(cfg);

    let start = Cycle(1_000);
    let expected_end = Cycle(1_160);
    let got = core.apply_chip_fault(BankId(0), CtrlCore::coarse_read_set(), start, expected_end);
    assert_eq!(
        got, expected_end,
        "a stuck chip delivered its data on time; only occupancy hangs"
    );
    assert_eq!(core.watchdogs.len(), 1);
    let fire_at = core.watchdogs[0].fire_at;
    assert_eq!(fire_at, Cycle(expected_end.0 + deadline));

    // One cycle early: nothing may fire.
    core.service_watchdogs(Cycle(fire_at.0 - 1));
    assert_eq!(core.stats.watchdog_trips, 0, "fired a cycle early");
    assert_eq!(core.watchdogs.len(), 1);

    // Exactly at the threshold: exactly one trip.
    core.service_watchdogs(fire_at);
    assert_eq!(core.stats.watchdog_trips, 1, "must fire at the threshold");
    assert!(core.watchdogs.is_empty());

    // Long after: no double-count of a fired watchdog.
    core.service_watchdogs(Cycle(fire_at.0 + 10_000));
    assert_eq!(core.stats.watchdog_trips, 1);
    assert_eq!(
        core.checker.violation_count(),
        0,
        "an on-time watchdog violates nothing"
    );
}
