//! Intra-rank-level parallelism (IRLP) accounting.
//!
//! The paper's central metric (§I, footnote 2): *"the number of chips in
//! the rank that are actively serving some request during \[a write's
//! service\] period"*, out of a maximum of 8. We measure it exactly that
//! way: every write opens a *window* spanning its service interval on its
//! bank; every operation (including the write itself) contributes per-chip
//! *useful segments* for the chips serving data words — a write's essential
//! word chips, a read's eight word-supplying chips (the PCC chip counts
//! when it substitutes for a busy data chip under RoW). ECC/PCC bookkeeping
//! updates do not count, which keeps the baseline's IRLP equal to its mean
//! essential-word count and the maximum at 8, matching the paper's
//! definition. Concurrent chips above 8 (write + full RoW read = 9) are
//! capped at 8.
//!
//! Windows may be *extended* after opening: a PCMap write's service period
//! only ends when its serialized ECC/PCC chip updates finish, which is
//! known later than issue time.

use pcmap_types::{BankId, Cycle};

/// Cap on concurrently counted chips, per the paper's "out of 8.0".
const CHIP_CAP: u64 = 8;

/// Identifies an open window for [`IrlpTracker::extend_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowId(u64);

#[derive(Debug, Clone, Copy)]
struct Segment {
    start: Cycle,
    end: Cycle,
}

#[derive(Debug, Clone)]
struct Window {
    id: WindowId,
    start: Cycle,
    end: Cycle,
}

#[derive(Debug, Clone, Default)]
struct BankIrlp {
    windows: Vec<Window>,
    /// Raw segment log; pruned once no open or future window can see it.
    segs: Vec<Segment>,
}

/// Streaming IRLP tracker for one rank.
#[derive(Debug, Clone)]
pub struct IrlpTracker {
    banks: Vec<BankIrlp>,
    samples: Vec<f64>,
    /// `(window end, sample)` pairs, for windowed IRLP time-series.
    timed: Vec<(Cycle, f64)>,
    next_id: u64,
}

impl IrlpTracker {
    /// Creates a tracker for `banks` banks.
    pub fn new(banks: usize) -> Self {
        Self {
            banks: vec![BankIrlp::default(); banks],
            samples: Vec::new(),
            timed: Vec::new(),
            next_id: 0,
        }
    }

    /// Opens a write window on `bank` spanning `[start, end)` and returns a
    /// handle for later extension. Zero-length windows are recorded but
    /// produce no sample.
    pub fn open_window(&mut self, bank: BankId, start: Cycle, end: Cycle) -> WindowId {
        let id = WindowId(self.next_id);
        self.next_id += 1;
        self.banks[bank.index()]
            .windows
            .push(Window { id, start, end });
        id
    }

    /// Extends an open window's end (no-op if `new_end` is earlier or the
    /// window has already been finalized).
    pub fn extend_window(&mut self, bank: BankId, id: WindowId, new_end: Cycle) {
        if let Some(w) = self.banks[bank.index()]
            .windows
            .iter_mut()
            .find(|w| w.id == id)
        {
            if new_end > w.end {
                w.end = new_end;
            }
        }
    }

    /// Records one chip's useful data-serving interval `[start, end)` on
    /// `bank`. Call once per chip involved in serving data words.
    pub fn record_segment(&mut self, bank: BankId, start: Cycle, end: Cycle) {
        if end <= start {
            return;
        }
        self.banks[bank.index()].segs.push(Segment { start, end });
    }

    /// Finalizes all windows ending at or before `now` and prunes stale
    /// segments. Call periodically and once at end of simulation with
    /// [`Cycle::MAX`].
    ///
    /// Callers must not extend a window past `now` after settling at `now`,
    /// and must not open windows starting before a prior settle point.
    pub fn settle(&mut self, now: Cycle) {
        for b in &mut self.banks {
            let mut i = 0;
            while i < b.windows.len() {
                if b.windows[i].end <= now {
                    let w = b.windows.swap_remove(i);
                    if w.end > w.start {
                        let sample = window_irlp(&w, &b.segs);
                        self.samples.push(sample);
                        self.timed.push((w.end, sample));
                    }
                } else {
                    i += 1;
                }
            }
            // A segment is still needed if it can overlap an open window or
            // a window opened in the future (which starts at >= now).
            let keep_after = b.windows.iter().map(|w| w.start).min().unwrap_or(now);
            let keep_after = keep_after.max(Cycle(0)).min(now);
            b.segs.retain(|s| s.end > keep_after);
        }
    }

    /// Per-write IRLP samples finalized so far.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Finalized samples with the completion time of their window, for
    /// windowed IRLP time-series. Same order and length as [`Self::samples`].
    pub fn timed_samples(&self) -> &[(Cycle, f64)] {
        &self.timed
    }

    /// Mean IRLP over finalized write windows (0 if none).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum per-write IRLP observed (0 if none).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Sweep-line integration of chip-count over the window, capped at 8.
fn window_irlp(w: &Window, segs: &[Segment]) -> f64 {
    let span = (w.end.0 - w.start.0) as f64;
    let mut events: Vec<(u64, i64)> = Vec::new();
    for s in segs {
        if s.end > w.start && s.start < w.end {
            events.push((s.start.0.max(w.start.0), 1));
            events.push((s.end.0.min(w.end.0), -1));
        }
    }
    if events.is_empty() {
        return 0.0;
    }
    events.sort_unstable();
    let mut area = 0u64;
    let mut count: i64 = 0;
    let mut last = events[0].0;
    for (t, delta) in events {
        if t > last {
            area += (count as u64).min(CHIP_CAP) * (t - last);
            last = t;
        }
        count += delta;
    }
    area as f64 / span
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BankId = BankId(0);

    #[test]
    fn lone_write_with_two_essential_chips_scores_two() {
        let mut t = IrlpTracker::new(1);
        t.open_window(B, Cycle(0), Cycle(100));
        t.record_segment(B, Cycle(0), Cycle(100)); // chip a
        t.record_segment(B, Cycle(0), Cycle(100)); // chip b
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[2.0]);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.max(), 2.0);
    }

    #[test]
    fn partial_overlap_integrates_fractionally() {
        let mut t = IrlpTracker::new(1);
        t.open_window(B, Cycle(0), Cycle(100));
        t.record_segment(B, Cycle(0), Cycle(100)); // the write's own chip
        t.record_segment(B, Cycle(50), Cycle(100)); // a read in the 2nd half
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[1.5]);
    }

    #[test]
    fn segments_recorded_before_window_open_are_captured() {
        let mut t = IrlpTracker::new(1);
        t.record_segment(B, Cycle(0), Cycle(200)); // long-running op
        t.open_window(B, Cycle(100), Cycle(200)); // write starts later
        t.record_segment(B, Cycle(100), Cycle(200)); // the write itself
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[2.0]);
    }

    #[test]
    fn extension_captures_late_segments() {
        let mut t = IrlpTracker::new(1);
        let id = t.open_window(B, Cycle(0), Cycle(50));
        t.record_segment(B, Cycle(0), Cycle(50));
        // The write's PCC update pushes the window to 100; a read happens
        // in the extension.
        t.extend_window(B, id, Cycle(100));
        t.record_segment(B, Cycle(50), Cycle(100));
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[1.0]);
    }

    #[test]
    fn extension_never_shrinks() {
        let mut t = IrlpTracker::new(1);
        let id = t.open_window(B, Cycle(0), Cycle(100));
        t.extend_window(B, id, Cycle(10));
        t.record_segment(B, Cycle(0), Cycle(100));
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[1.0]);
    }

    #[test]
    fn cap_at_eight_chips() {
        let mut t = IrlpTracker::new(1);
        t.open_window(B, Cycle(0), Cycle(10));
        for _ in 0..9 {
            t.record_segment(B, Cycle(0), Cycle(10));
        }
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[8.0]);
    }

    #[test]
    fn zero_segment_windows_score_zero() {
        let mut t = IrlpTracker::new(1);
        t.open_window(B, Cycle(0), Cycle(10));
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[0.0]);
    }

    #[test]
    fn settle_is_incremental_and_prunes() {
        let mut t = IrlpTracker::new(2);
        t.open_window(B, Cycle(0), Cycle(10));
        t.record_segment(B, Cycle(0), Cycle(10));
        t.settle(Cycle(10));
        assert_eq!(t.samples().len(), 1);
        t.open_window(B, Cycle(20), Cycle(30));
        t.record_segment(B, Cycle(20), Cycle(30));
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[1.0, 1.0]);
    }

    #[test]
    fn banks_are_independent() {
        let mut t = IrlpTracker::new(2);
        t.open_window(BankId(0), Cycle(0), Cycle(10));
        t.record_segment(BankId(1), Cycle(0), Cycle(10)); // other bank
        t.settle(Cycle::MAX);
        assert_eq!(t.samples(), &[0.0]);
    }

    #[test]
    fn timed_samples_carry_window_ends() {
        let mut t = IrlpTracker::new(1);
        t.open_window(B, Cycle(0), Cycle(10));
        t.record_segment(B, Cycle(0), Cycle(10));
        t.open_window(B, Cycle(20), Cycle(40));
        t.settle(Cycle::MAX);
        let mut timed = t.timed_samples().to_vec();
        timed.sort_by_key(|(c, _)| *c);
        assert_eq!(timed, vec![(Cycle(10), 1.0), (Cycle(40), 0.0)]);
        assert_eq!(t.timed_samples().len(), t.samples().len());
    }

    #[test]
    fn zero_length_window_produces_no_sample() {
        let mut t = IrlpTracker::new(1);
        t.open_window(B, Cycle(5), Cycle(5));
        t.settle(Cycle::MAX);
        assert!(t.samples().is_empty());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn open_window_while_other_still_open_sees_shared_segments() {
        let mut t = IrlpTracker::new(1);
        t.open_window(B, Cycle(0), Cycle(100)); // write A
        t.record_segment(B, Cycle(0), Cycle(100)); // A's chip
        t.open_window(B, Cycle(20), Cycle(80)); // WoW write B
        t.record_segment(B, Cycle(20), Cycle(80)); // B's chip
        t.settle(Cycle::MAX);
        let mut s = t.samples().to_vec();
        s.sort_by(f64::total_cmp);
        // B's window sees both chips the whole time: 2.0.
        // A's window: 1.0 + 60/100 overlap = 1.6.
        assert_eq!(s, vec![1.6, 2.0]);
    }
}
