//! Memory-controller substrate for the PCMap simulator.
//!
//! This crate is the reproduction's equivalent of "DRAMSim2 modified for
//! PCM": per-channel controllers with separate read/write queues, the
//! read-over-write priority with an α = 80 % write-drain policy, FR-FCFS
//! scheduling, a DDR3-style shared data bus with turnaround penalties, and
//! cell-accurate PCM array timing (asymmetric SET/RESET writes).
//!
//! The [`Controller`] trait is implemented here by [`BaselineController`]
//! (the paper's *Baseline* system, where a write reserves every chip of its
//! bank for the full write latency) and in `pcmap-core` by the PCMap
//! controller (fine-grained writes, RoW, WoW, rotation).
//!
//! # Example
//!
//! ```
//! use pcmap_ctrl::{BaselineController, Controller, MemRequest, ReqId, ReqKind};
//! use pcmap_types::{CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams};
//!
//! let org = MemOrg::tiny();
//! let mut ctrl = BaselineController::new(
//!     org,
//!     TimingParams::paper_default(),
//!     QueueParams::paper_default(),
//!     0,
//! );
//! let addr = PhysAddr::new(0);
//! let req = MemRequest {
//!     id: ReqId(1),
//!     kind: ReqKind::Read,
//!     line: addr.line(),
//!     loc: org.decode(addr),
//!     core: CoreId(0),
//!     arrival: Cycle(0),
//! };
//! ctrl.enqueue_read(req, Cycle(0)).unwrap();
//! let completions = ctrl.step(Cycle(0));
//! assert_eq!(completions.len(), 1);
//! ```

#![warn(missing_docs)]
#![deny(unused_must_use)]

pub mod bus;
pub mod check;
pub mod controller;
pub mod irlp;
pub mod op;
pub mod queues;
pub mod request;
pub mod stats;

pub use bus::{BusDir, ChannelBus};
pub use check::{InvariantKind, ProtocolChecker, Violation};
pub use controller::{BaselineController, Controller, CtrlCore, PendingWatchdog, ReadResolution};
pub use irlp::{IrlpTracker, WindowId};
pub use queues::{DrainPolicy, DrainState, RequestQueue};
pub use request::{Completion, MemRequest, ReqId, ReqKind};
pub use stats::CtrlStats;
// Telemetry primitives now live in `pcmap-obs`; re-exported here for the
// controller call sites and backward compatibility.
pub use pcmap_obs::{
    ChipTrace, Event, EventKind, EventLog, EventSink, LatencyHistogram, TraceEvent,
};
