//! Latency building blocks for scheduled operations.
//!
//! The model follows the paper's abstraction: the PCM array access dominates
//! service time (60 ns sensing for reads, 50/120 ns RESET/SET programming
//! for writes, Table I), with column latency and burst transfer layered on
//! top. A write's per-chip service time depends on whether that chip's word
//! needs SET pulses ([`WriteKind::SetDominated`]) or only RESET
//! ([`WriteKind::ResetOnly`]); chips whose word did not change at all do no
//! array work ([`WriteKind::Silent`]).
//!
//! Note on Table I: the paper lists both "60 ns read" for the PCM cell and
//! `tRCD = 60 cycles`; taken literally the latter makes a row activation
//! 150 ns and breaks the paper's own 2× write:read ratio. We treat the
//! array sensing time (`array_read` = 24 cycles = 60 ns) as the activation
//! cost and keep the 2× ratio of §VI-E, documenting the deviation in
//! DESIGN.md.

use pcmap_device::rank::WriteKind;
use pcmap_types::{Duration, TimingParams};

/// Chip occupancy of a coarse (whole-line) read, excluding the data burst.
///
/// A row-buffer hit skips the array sensing and pays only the column
/// latency; a miss senses the row first.
#[must_use]
pub fn read_latency_to_transfer(row_hit: bool, p: &TimingParams) -> Duration {
    if row_hit {
        Duration(p.t_cl)
    } else {
        Duration(p.array_read + p.t_cl)
    }
}

/// Total chip occupancy of a coarse read including the burst.
#[must_use]
pub fn read_occupancy(row_hit: bool, p: &TimingParams) -> Duration {
    read_latency_to_transfer(row_hit, p) + Duration(p.burst)
}

/// Chip occupancy of one per-chip word write: write latency, lane burst,
/// then array programming.
#[must_use]
pub fn chip_write_occupancy(kind: WriteKind, p: &TimingParams) -> Duration {
    match kind {
        WriteKind::Silent => {
            // The in-chip differential write still reads-before-write.
            Duration(p.array_read)
        }
        k => Duration(p.t_wl + p.burst) + k.duration(p),
    }
}

/// Occupancy of an ECC- or PCC-chip update accompanying a write.
///
/// The check-chip delta is small — one check byte per modified word, one
/// parity word — and is programmed with the short RESET-class pulse train
/// (the controller transfers pre-conditioned check bytes, in the spirit of
/// PreSET's write-time asymmetry exploitation). Modeling the update at the
/// RESET latency makes the ECC/PCC chips a *partial* serialization point
/// for consecutive writes: enough contention that rotating them away
/// matters (the paper's RWoW-RDE gain), without fully serializing WoW.
#[must_use]
pub fn check_chip_write_occupancy(p: &TimingParams) -> Duration {
    Duration(p.t_wl + p.burst + p.array_reset)
}

/// Occupancy of the deferred-verify read RoW schedules on the previously
/// busy chip (a one-chip column read).
#[must_use]
pub fn verify_read_occupancy(p: &TimingParams) -> Duration {
    Duration(p.array_read + p.t_cl + p.burst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_hit_is_much_faster_than_miss() {
        let p = TimingParams::paper_default();
        let hit = read_occupancy(true, &p);
        let miss = read_occupancy(false, &p);
        assert_eq!(hit, Duration(p.t_cl + p.burst));
        assert_eq!(miss, Duration(p.array_read + p.t_cl + p.burst));
        assert!(miss.as_u64() > 3 * hit.as_u64());
    }

    #[test]
    fn set_write_is_roughly_twice_a_read() {
        let p = TimingParams::paper_default();
        let wr = chip_write_occupancy(WriteKind::SetDominated, &p);
        let rd = read_occupancy(false, &p);
        let ratio = wr.as_u64() as f64 / rd.as_u64() as f64;
        assert!((1.4..2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn reset_only_is_faster_than_set() {
        let p = TimingParams::paper_default();
        assert!(
            chip_write_occupancy(WriteKind::ResetOnly, &p)
                < chip_write_occupancy(WriteKind::SetDominated, &p)
        );
    }

    #[test]
    fn silent_write_costs_only_the_internal_read() {
        let p = TimingParams::paper_default();
        assert_eq!(
            chip_write_occupancy(WriteKind::Silent, &p),
            Duration(p.array_read)
        );
    }
}
