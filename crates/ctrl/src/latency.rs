//! Bounded-memory latency distribution tracking.
//!
//! Effective read latency is the paper's Figure 10 metric; means hide the
//! tail that drains create, so the controller also keeps a log-scaled
//! histogram cheap enough to run on every request (64 buckets, ~¼-decade
//! resolution), from which percentiles are interpolated.

/// A log₂-bucketed latency histogram with 4 sub-buckets per octave.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_seen: u64,
}

const SUB: u64 = 4;
const BUCKETS: usize = 64;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, max_seen: 0 }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as u64;
        let sub = (value >> (octave - 2)) & (SUB - 1);
        (((octave - 1) * SUB) + sub) as usize

    }

    /// Lower bound of `bucket`'s value range.
    fn bucket_floor(bucket: usize) -> u64 {
        let b = bucket as u64;
        if b < SUB {
            return b;
        }
        let octave = b / SUB + 1;
        let sub = b % SUB;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Records one latency sample (in cycles).
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_of(value).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max_seen = self.max_seen.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest sample seen.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// The approximate `p`-th percentile (0 < p ≤ 100); 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(i).min(self.max_seen);
            }
        }
        self.max_seen
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(37);
        }
        for p in [1.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!((32..=37).contains(&v), "p{p} = {v}");
        }
        assert_eq!(h.max(), 37);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 100, 500, 1000, 5000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max());
    }

    #[test]
    fn tail_is_visible() {
        // 99 fast samples and one very slow one: p50 small, p100 ~ max.
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(30);
        }
        h.record(10_000);
        assert!(h.percentile(50.0) <= 30);
        assert!(h.percentile(100.0) >= 8_192);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(100.0) >= 768);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn rejects_bad_percentile() {
        LatencyHistogram::new().percentile(0.0);
    }

    proptest! {
        #[test]
        fn prop_bucket_floor_is_sound(v in 0u64..1_000_000) {
            // Every value lands in a bucket whose floor does not exceed it
            // and whose next bucket's floor exceeds it (within range).
            let b = LatencyHistogram::bucket_of(v).min(BUCKETS - 1);
            prop_assert!(LatencyHistogram::bucket_floor(b) <= v);
            if b + 1 < BUCKETS {
                prop_assert!(LatencyHistogram::bucket_floor(b + 1) > v,
                    "v={v} b={b} next_floor={}", LatencyHistogram::bucket_floor(b + 1));
            }
        }

        #[test]
        fn prop_percentile_within_range(mut vs in proptest::collection::vec(1u64..100_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &v in &vs {
                h.record(v);
            }
            vs.sort_unstable();
            let p50 = h.percentile(50.0);
            // Within a factor of the bucket resolution of the true median.
            let true_median = vs[(vs.len() - 1) / 2];
            prop_assert!(p50 <= true_median.max(1) * 2 && p50 * 2 >= true_median / 2,
                "p50={p50} true={true_median}");
        }
    }
}
