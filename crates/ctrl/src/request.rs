//! Memory requests as seen by a channel's memory controller.

use pcmap_types::{CacheLine, CoreId, Cycle, LineAddr, MemLocation};

/// A unique, monotonically increasing request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl core::fmt::Display for ReqId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// What a request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Fetch a 64-byte line.
    Read,
    /// Write back a 64-byte line (the new contents travel with the request;
    /// the rank's differential write determines the essential words).
    Write {
        /// The new line contents.
        data: CacheLine,
    },
}

impl ReqKind {
    /// `true` for reads.
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, ReqKind::Read)
    }
}

/// A request queued at a memory controller.
#[derive(Debug, Clone, Copy)]
pub struct MemRequest {
    /// Unique id.
    pub id: ReqId,
    /// Read or write (+payload).
    pub kind: ReqKind,
    /// The line address (used by the rotation layouts).
    pub line: LineAddr,
    /// Decoded hardware coordinates.
    pub loc: MemLocation,
    /// Issuing core.
    pub core: CoreId,
    /// When the request reached the controller.
    pub arrival: Cycle,
}

/// A finished request, reported back to the CPU side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request this completes.
    pub id: ReqId,
    /// Issuing core.
    pub core: CoreId,
    /// `true` if this was a read.
    pub is_read: bool,
    /// When the request arrived at the controller.
    pub arrival: Cycle,
    /// When the data is available (reads) or the write is fully committed.
    pub done: Cycle,
    /// `true` if the read was served by RoW reconstruction (its SECDED
    /// check is deferred to `verify_done`).
    pub via_row: bool,
    /// For RoW reads: when the deferred verification completes.
    pub verify_done: Option<Cycle>,
    /// `true` if the read was forwarded from the write queue without
    /// touching PCM.
    pub forwarded: bool,
    /// `true` if the request exhausted its recovery retry budget and is
    /// reported as failed (the data in memory could not be recovered).
    pub failed: bool,
    /// `true` if the data handed to the CPU was later found corrupt by a
    /// deferred SECDED check — the CPU must roll back and re-fetch.
    pub corrupted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::{MemOrg, PhysAddr};

    #[test]
    fn req_kind_predicates() {
        assert!(ReqKind::Read.is_read());
        assert!(!ReqKind::Write {
            data: CacheLine::zeroed()
        }
        .is_read());
    }

    #[test]
    fn request_construction() {
        let org = MemOrg::tiny();
        let addr = PhysAddr::new(0x100);
        let req = MemRequest {
            id: ReqId(1),
            kind: ReqKind::Read,
            line: addr.line(),
            loc: org.decode(addr),
            core: CoreId(0),
            arrival: Cycle(5),
        };
        assert_eq!(req.line, addr.line());
        assert_eq!(ReqId(1).to_string(), "req1");
    }
}
