//! Controller-side statistics: latency, throughput, delay attribution.
//!
//! `CtrlStats` stays a plain-field struct on the hot path;
//! [`CtrlStats::snapshot`] lifts it into a mergeable
//! [`MetricsSnapshot`] (metric names documented in DESIGN.md) so the four
//! channels aggregate through the generic telemetry layer.

use crate::irlp::IrlpTracker;
use pcmap_obs::{GaugeRule, LatencyHistogram, MetricsSnapshot, WindowedSeries};
use pcmap_types::{Cycle, Duration};

/// Width (in memory cycles) of the windowed throughput/IRLP time-series
/// kept by every controller.
pub const SERIES_WINDOW: u64 = 8192;

/// Counters collected by a memory controller.
#[derive(Debug, Clone)]
pub struct CtrlStats {
    /// Reads completed (including forwarded ones).
    pub reads_done: u64,
    /// Reads answered from the write queue without touching PCM.
    pub reads_forwarded: u64,
    /// Reads served by RoW parity reconstruction.
    pub reads_via_row: u64,
    /// Writes fully committed.
    pub writes_done: u64,
    /// Writes that were entirely silent (no essential words).
    pub silent_writes: u64,
    /// Writes that overlapped at least one other write (WoW).
    pub wow_overlaps: u64,
    /// Sum of read service times (arrival → data ready), for mean latency.
    pub read_latency_sum: Duration,
    /// Reads whose service was delayed by an in-flight write on their bank
    /// or by a drain episode (Figure 1's numerator).
    pub reads_delayed_by_write: u64,
    /// Deferred RoW verifications performed.
    pub row_verifies: u64,
    /// Overlapped-read attempts blocked because two or more of the line's
    /// word chips were busy (not reconstructible).
    pub row_blocked_multi_busy: u64,
    /// Overlapped-read attempts blocked because the line's PCC chip was
    /// busy when reconstruction was needed.
    pub row_blocked_pcc_busy: u64,
    /// Write-issue attempts blocked on busy essential data chips.
    pub wr_blocked_data: u64,
    /// Write-issue attempts blocked on the line's ECC chip.
    pub wr_blocked_ecc: u64,
    /// Write-issue attempts blocked on the line's PCC chip.
    pub wr_blocked_pcc: u64,
    /// Reads served with deferred verification only (no reconstruction).
    pub reads_deferred_only: u64,
    /// Reads whose SECDED check corrected a single-bit error.
    pub ecc_corrected: u64,
    /// Reads whose SECDED check found an uncorrectable error.
    pub ecc_uncorrectable: u64,
    /// Injected faults of any class (transient flips, stuck cells, chip
    /// slow-downs, stuck-busy chips, Status-poll corruptions).
    pub faults_injected: u64,
    /// Transient double-bit flips injected (subset of `faults_injected`).
    pub faults_double_bit: u64,
    /// Wear-induced stuck-at cells planted in the backing store.
    pub faults_stuck_cells: u64,
    /// Chip operations that ran slow (extended array occupancy).
    pub faults_chip_slow: u64,
    /// Chip operations whose chip hung busy past its window.
    pub faults_chip_stuck: u64,
    /// Status polls whose response was corrupted (poll repeated).
    pub faults_status_poll: u64,
    /// Injected faults absorbed by inline SECDED correction.
    pub faults_corrected: u64,
    /// Uncorrectable reads recovered via PCC erasure reconstruction.
    pub faults_reconstructed: u64,
    /// Read retries taken on the bounded-retry recovery path.
    pub fault_retries: u64,
    /// Reads that exhausted the retry budget and failed upward.
    pub reads_failed: u64,
    /// Per-rank watchdog trips that force-freed a stuck-busy chip.
    pub watchdog_trips: u64,
    /// Transitions of this channel's rank into degraded scheduling.
    pub degraded_enters: u64,
    /// Transitions of this channel's rank back to full speculation.
    pub degraded_exits: u64,
    /// Total cycles this channel's rank spent degraded.
    pub degraded_cycles: u64,
    /// Deliveries whose data failed the post-recovery oracle check
    /// without being flagged failed/corrupted. Must stay zero.
    pub silent_corruptions: u64,
    /// RoW reads whose deferred check found the delivered data corrupt,
    /// forcing a CPU rollback.
    pub corruption_rollbacks: u64,
    /// Essential-word histogram over issued writes (index = word count).
    pub essential_histogram: [u64; 9],
    /// IRLP accounting.
    pub irlp: IrlpTracker,
    /// Distribution of effective read latencies.
    pub read_latency_hist: LatencyHistogram,
    /// Completion time of the last write (for throughput windows).
    pub last_write_done: Cycle,
    /// Writes completed per [`SERIES_WINDOW`]-cycle window (windowed
    /// throughput view).
    pub write_series: WindowedSeries,
}

impl CtrlStats {
    /// Creates zeroed statistics for a rank with `banks` banks.
    pub fn new(banks: usize) -> Self {
        Self {
            reads_done: 0,
            reads_forwarded: 0,
            reads_via_row: 0,
            writes_done: 0,
            silent_writes: 0,
            wow_overlaps: 0,
            read_latency_sum: Duration::ZERO,
            reads_delayed_by_write: 0,
            row_verifies: 0,
            row_blocked_multi_busy: 0,
            wr_blocked_data: 0,
            wr_blocked_ecc: 0,
            wr_blocked_pcc: 0,
            reads_deferred_only: 0,
            row_blocked_pcc_busy: 0,
            ecc_corrected: 0,
            ecc_uncorrectable: 0,
            faults_injected: 0,
            faults_double_bit: 0,
            faults_stuck_cells: 0,
            faults_chip_slow: 0,
            faults_chip_stuck: 0,
            faults_status_poll: 0,
            faults_corrected: 0,
            faults_reconstructed: 0,
            fault_retries: 0,
            reads_failed: 0,
            watchdog_trips: 0,
            degraded_enters: 0,
            degraded_exits: 0,
            degraded_cycles: 0,
            silent_corruptions: 0,
            corruption_rollbacks: 0,
            essential_histogram: [0; 9],
            irlp: IrlpTracker::new(banks),
            read_latency_hist: LatencyHistogram::new(),
            last_write_done: Cycle::ZERO,
            write_series: WindowedSeries::new(SERIES_WINDOW),
        }
    }

    /// Records a completed write at `done` into the aggregate counters and
    /// the windowed throughput series.
    pub fn record_write_done(&mut self, done: Cycle) {
        self.writes_done += 1;
        self.last_write_done = self.last_write_done.max(done);
        self.write_series.bump(done.0);
    }

    /// Mean effective read latency in cycles (0 if no reads finished).
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.read_latency_sum.as_u64() as f64 / self.reads_done as f64
        }
    }

    /// Fraction of completed reads that were delayed by writes.
    pub fn delayed_read_fraction(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.reads_delayed_by_write as f64 / self.reads_done as f64
        }
    }

    /// Write throughput in writes per kilo-cycle over `elapsed`.
    pub fn write_throughput(&self, elapsed: Duration) -> f64 {
        if elapsed.as_u64() == 0 {
            0.0
        } else {
            self.writes_done as f64 * 1000.0 / elapsed.as_u64() as f64
        }
    }

    /// Mean essential words per non-forwarded write.
    pub fn mean_essential_words(&self) -> f64 {
        let total: u64 = self.essential_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .essential_histogram
            .iter()
            .enumerate()
            .map(|(i, &n)| i as u64 * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Captures these statistics as a mergeable [`MetricsSnapshot`].
    ///
    /// Counters sum across channels; ratios are carried as sum + count
    /// pairs (`read_latency_sum` / `reads_done`, `irlp_sum` /
    /// `irlp_samples`) so the merged mean is exact; `irlp_max` and
    /// `last_write_done` merge by max; the read-latency distribution
    /// merges bucket-wise.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.set_counter("reads_done", self.reads_done);
        s.set_counter("reads_forwarded", self.reads_forwarded);
        s.set_counter("reads_via_row", self.reads_via_row);
        s.set_counter("writes_done", self.writes_done);
        s.set_counter("silent_writes", self.silent_writes);
        s.set_counter("wow_overlaps", self.wow_overlaps);
        s.set_counter("read_latency_sum", self.read_latency_sum.as_u64());
        s.set_counter("reads_delayed_by_write", self.reads_delayed_by_write);
        s.set_counter("row_verifies", self.row_verifies);
        s.set_counter("row_blocked_multi_busy", self.row_blocked_multi_busy);
        s.set_counter("row_blocked_pcc_busy", self.row_blocked_pcc_busy);
        s.set_counter("wr_blocked_data", self.wr_blocked_data);
        s.set_counter("wr_blocked_ecc", self.wr_blocked_ecc);
        s.set_counter("wr_blocked_pcc", self.wr_blocked_pcc);
        s.set_counter("reads_deferred_only", self.reads_deferred_only);
        s.set_counter("ecc_corrected", self.ecc_corrected);
        s.set_counter("ecc_uncorrectable", self.ecc_uncorrectable);
        s.set_counter("faults_injected", self.faults_injected);
        s.set_counter("faults_double_bit", self.faults_double_bit);
        s.set_counter("faults_stuck_cells", self.faults_stuck_cells);
        s.set_counter("faults_chip_slow", self.faults_chip_slow);
        s.set_counter("faults_chip_stuck", self.faults_chip_stuck);
        s.set_counter("faults_status_poll", self.faults_status_poll);
        s.set_counter("faults_corrected", self.faults_corrected);
        s.set_counter("faults_reconstructed", self.faults_reconstructed);
        s.set_counter("fault_retries", self.fault_retries);
        s.set_counter("reads_failed", self.reads_failed);
        s.set_counter("watchdog_trips", self.watchdog_trips);
        s.set_counter("degraded_enters", self.degraded_enters);
        s.set_counter("degraded_exits", self.degraded_exits);
        s.set_counter("degraded_cycles", self.degraded_cycles);
        s.set_counter("silent_corruptions", self.silent_corruptions);
        s.set_counter("corruption_rollbacks", self.corruption_rollbacks);
        for (i, &n) in self.essential_histogram.iter().enumerate() {
            s.set_counter(&format!("essential_words_{i}"), n);
        }
        s.set_counter("irlp_samples", self.irlp.samples().len() as u64);
        s.set_gauge("irlp_sum", GaugeRule::Sum, self.irlp.samples().iter().sum());
        s.set_gauge("irlp_max", GaugeRule::Max, self.irlp.max());
        s.set_gauge(
            "last_write_done",
            GaugeRule::Max,
            self.last_write_done.0 as f64,
        );
        s.set_histogram("read_latency", self.read_latency_hist.clone());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_have_safe_means() {
        let s = CtrlStats::new(8);
        assert_eq!(s.mean_read_latency(), 0.0);
        assert_eq!(s.delayed_read_fraction(), 0.0);
        assert_eq!(s.write_throughput(Duration::ZERO), 0.0);
        assert_eq!(s.mean_essential_words(), 0.0);
    }

    #[test]
    fn mean_read_latency_divides() {
        let mut s = CtrlStats::new(8);
        s.reads_done = 4;
        s.read_latency_sum = Duration(200);
        assert_eq!(s.mean_read_latency(), 50.0);
    }

    #[test]
    fn essential_mean_is_weighted() {
        let mut s = CtrlStats::new(8);
        s.essential_histogram[1] = 2;
        s.essential_histogram[4] = 2;
        assert_eq!(s.mean_essential_words(), 2.5);
    }

    #[test]
    fn throughput_per_kilocycle() {
        let mut s = CtrlStats::new(8);
        s.writes_done = 10;
        assert_eq!(s.write_throughput(Duration(1000)), 10.0);
    }

    #[test]
    fn record_write_done_feeds_series() {
        let mut s = CtrlStats::new(8);
        s.record_write_done(Cycle(10));
        s.record_write_done(Cycle(SERIES_WINDOW + 1));
        assert_eq!(s.writes_done, 2);
        assert_eq!(s.last_write_done, Cycle(SERIES_WINDOW + 1));
        assert_eq!(s.write_series.windows().count(), 2);
    }

    #[test]
    fn snapshot_reconciles_with_fields() {
        let mut s = CtrlStats::new(8);
        s.reads_done = 7;
        s.reads_delayed_by_write = 3;
        s.read_latency_sum = Duration(700);
        s.read_latency_hist.record(100);
        s.essential_histogram[2] = 5;
        s.wr_blocked_ecc = 2;
        let snap = s.snapshot();
        assert_eq!(snap.counter("reads_done"), 7);
        assert_eq!(snap.counter("reads_delayed_by_write"), 3);
        assert_eq!(snap.counter("read_latency_sum"), 700);
        assert_eq!(snap.counter("essential_words_2"), 5);
        assert_eq!(snap.counter("wr_blocked_ecc"), 2);
        assert_eq!(snap.histogram("read_latency").unwrap().count(), 1);
        // Derived mean from the snapshot equals the struct's own method.
        let mean = snap.counter("read_latency_sum") as f64 / snap.counter("reads_done") as f64;
        assert_eq!(mean, s.mean_read_latency());
    }

    #[test]
    fn snapshots_merge_like_one_channel() {
        let mut a = CtrlStats::new(8);
        a.reads_done = 2;
        a.read_latency_sum = Duration(100);
        let mut b = CtrlStats::new(8);
        b.reads_done = 3;
        b.read_latency_sum = Duration(500);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("reads_done"), 5);
        assert_eq!(merged.counter("read_latency_sum"), 600);
    }
}
