//! The channel data bus: burst slots and turnaround.
//!
//! Coarse (whole-line) transfers occupy all lanes of the 80-bit channel for
//! one burst; consecutive transfers respect the column-to-column gap and a
//! write→read turnaround penalty (tWTR). PCMap's fine-grained per-chip
//! writes use only their own 8-bit lane of the sub-ranked bus and are not
//! serialized here (§IV-D1 — the bus is physically split into ten logic
//! buses); only coarse transfers contend.

use pcmap_types::{Cycle, Duration, TimingParams};

/// Transfer direction, for turnaround accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusDir {
    /// Memory → controller.
    Read,
    /// Controller → memory.
    Write,
}

/// One channel's shared data bus.
#[derive(Debug, Clone)]
pub struct ChannelBus {
    free_at: Cycle,
    last_dir: Option<BusDir>,
}

impl Default for ChannelBus {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelBus {
    /// Creates an idle bus.
    pub fn new() -> Self {
        Self {
            free_at: Cycle::ZERO,
            last_dir: None,
        }
    }

    /// Earliest cycle a transfer in `dir` could begin, at or after
    /// `earliest`.
    #[must_use]
    pub fn next_slot(&self, dir: BusDir, earliest: Cycle, params: &TimingParams) -> Cycle {
        let mut t = self.free_at;
        if let Some(last) = self.last_dir {
            if last == BusDir::Write && dir == BusDir::Read {
                t += Duration(params.t_wtr);
            } else if last != dir {
                // read→write turnaround is cheaper; model as one CCD gap.
                t += Duration(params.t_ccd);
            }
        }
        t.max(earliest)
    }

    /// Reserves a burst beginning no earlier than `earliest`; returns the
    /// actual start cycle.
    pub fn reserve(&mut self, dir: BusDir, earliest: Cycle, params: &TimingParams) -> Cycle {
        let start = self.next_slot(dir, earliest, params);
        self.free_at = start + Duration(params.burst);
        self.last_dir = Some(dir);
        start
    }

    /// When the bus next goes idle.
    #[must_use]
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::paper_default()
    }

    #[test]
    fn back_to_back_same_direction_packs_bursts() {
        let p = params();
        let mut bus = ChannelBus::new();
        let a = bus.reserve(BusDir::Read, Cycle(0), &p);
        let b = bus.reserve(BusDir::Read, Cycle(0), &p);
        assert_eq!(a, Cycle(0));
        assert_eq!(b, Cycle(p.burst)); // immediately after the first burst
    }

    #[test]
    fn write_to_read_pays_twtr() {
        let p = params();
        let mut bus = ChannelBus::new();
        bus.reserve(BusDir::Write, Cycle(0), &p);
        let r = bus.reserve(BusDir::Read, Cycle(0), &p);
        assert_eq!(r, Cycle(p.burst + p.t_wtr));
    }

    #[test]
    fn read_to_write_pays_ccd_gap() {
        let p = params();
        let mut bus = ChannelBus::new();
        bus.reserve(BusDir::Read, Cycle(0), &p);
        let w = bus.reserve(BusDir::Write, Cycle(0), &p);
        assert_eq!(w, Cycle(p.burst + p.t_ccd));
    }

    #[test]
    fn earliest_is_respected_when_bus_is_idle() {
        let p = params();
        let mut bus = ChannelBus::new();
        let s = bus.reserve(BusDir::Read, Cycle(100), &p);
        assert_eq!(s, Cycle(100));
        assert_eq!(bus.free_at(), Cycle(100 + p.burst));
    }
}
