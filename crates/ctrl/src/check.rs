//! Runtime protocol invariant checker (DESIGN.md §10).
//!
//! The scheduler's preconditions — chips free before a command, RoW
//! reads carrying a PCC reconstruction plan, step-2 PCC updates
//! back-to-back with step 1, deferred SECDED verified after the data
//! transfer, rollback only with a deferred verify outstanding — are
//! enforced implicitly by the issue logic. This module re-checks them
//! *explicitly* at every issue point, against the real [`RankTiming`]
//! state, so an aggressive hot-path refactor that breaks the paper's
//! RoW (§IV-B) or WoW (§IV-D) rules fails loudly instead of silently
//! producing wrong figures.
//!
//! The checker is read-only with respect to simulation state: it never
//! reserves, never advances time, and therefore cannot perturb the
//! byte-identical serial-vs-parallel contract (DESIGN.md §9).
//!
//! Enablement: on (and strict — violations panic) in debug builds and
//! whenever the `PCMAP_CHECK` environment variable is set to anything
//! but `0`; `PCMAP_CHECK=0` force-disables it. Release experiment runs
//! opt in via `PCMAP_CHECK=1` (`cargo xtask check`).

use pcmap_device::timing::RankTiming;
use pcmap_types::{BankId, ChipId, ChipSet, Cycle, Duration, TimingParams};

/// The invariants the checker enforces, mapped to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A command reserved a chip that is not free for its whole window
    /// (§IV-D: concurrent WoW writes and RoW reads must touch disjoint
    /// chips; subsumes "no command to a busy chip").
    BusyChipCommand,
    /// A read was issued that cannot produce the full line: more than
    /// one data word missing from its chip set, or one missing without
    /// the PCC chip to reconstruct it (§IV-B RoW).
    RowWithoutPlan,
    /// A write's step-2 PCC update was not scheduled back-to-back with
    /// the end of the worst-case step-1 data phase (§IV-C, Fig. 5(b)).
    PccStepGap,
    /// A speculative (RoW) read's deferred SECDED verify was scheduled
    /// to finish before its data transfer, or a verify time was
    /// attached to a non-RoW read (§IV-B2).
    RetireBeforeVerify,
    /// Rollback was signalled for a read with no deferred SECDED check
    /// outstanding (§IV-B3: only a failed deferred check rolls back).
    RollbackWithoutFault,
    /// An operation overlapped onto a bank with in-flight work was not
    /// charged exactly the configured `Status` poll cost (§IV-D1).
    StatusPollCost,
    /// A speculative (RoW/WoW) operation was issued to a rank that the
    /// fault layer has demoted to coarse scheduling (DESIGN.md §11:
    /// degraded ranks trade throughput for certainty, never speculate).
    RowOnDegraded,
    /// An uncorrectable read was retried beyond the configured
    /// fault-recovery retry budget instead of being failed upward.
    RetryOverBudget,
    /// The rank watchdog force-freed a stuck chip before the configured
    /// deadline past the operation's expected end had elapsed.
    EarlyWatchdog,
}

impl InvariantKind {
    /// Kebab-case identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::BusyChipCommand => "busy-chip-command",
            InvariantKind::RowWithoutPlan => "row-without-plan",
            InvariantKind::PccStepGap => "pcc-step-gap",
            InvariantKind::RetireBeforeVerify => "retire-before-verify",
            InvariantKind::RollbackWithoutFault => "rollback-without-fault",
            InvariantKind::StatusPollCost => "status-poll-cost",
            InvariantKind::RowOnDegraded => "row-on-degraded",
            InvariantKind::RetryOverBudget => "retry-over-budget",
            InvariantKind::EarlyWatchdog => "early-watchdog",
        }
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant was broken.
    pub kind: InvariantKind,
    /// The bank the offending command targeted.
    pub bank: BankId,
    /// When the offending command was issued.
    pub at: Cycle,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// One-line rendering for panics and reports.
    pub fn render(&self) -> String {
        format!(
            "[{}] bank {} @ cycle {}: {}",
            self.kind.name(),
            self.bank.0,
            self.at.0,
            self.detail
        )
    }
}

/// Violations kept verbatim; beyond this only the count grows.
const MAX_KEPT: usize = 64;

/// The protocol state-machine validator. One per controller; all check
/// methods are no-ops when disabled.
#[derive(Debug)]
pub struct ProtocolChecker {
    enabled: bool,
    /// Strict mode panics on the first violation (debug builds and
    /// `PCMAP_CHECK` runs); collecting mode records for inspection.
    strict: bool,
    /// Expected `Status` poll cost (tracks the controller's ablation
    /// setting).
    status_poll: Duration,
    /// Worst-case step-1 duration after program start (`array_set`).
    array_set: Duration,
    checked: u64,
    violation_count: u64,
    violations: Vec<Violation>,
}

impl ProtocolChecker {
    /// Checker configured from the environment: strict in debug builds
    /// and under `PCMAP_CHECK` (unless `PCMAP_CHECK=0`).
    pub fn from_env(t: &TimingParams) -> Self {
        // pcmap-lint: allow(nondet-taint, reason = "PCMAP_CHECK only toggles assertion strictness; it gates whether violations panic, never what schedule the controller produces")
        let on = match std::env::var("PCMAP_CHECK") {
            Ok(v) => v != "0",
            Err(_) => cfg!(debug_assertions),
        };
        Self::with_mode(t, on, on)
    }

    /// Enabled, non-panicking checker that records every violation
    /// (illegal-schedule tests).
    pub fn collecting(t: &TimingParams) -> Self {
        Self::with_mode(t, true, false)
    }

    /// Enabled checker that panics on the first violation.
    pub fn strict(t: &TimingParams) -> Self {
        Self::with_mode(t, true, true)
    }

    fn with_mode(t: &TimingParams, enabled: bool, strict: bool) -> Self {
        Self {
            enabled,
            strict,
            status_poll: Duration(t.status_cmd),
            array_set: Duration(t.array_set),
            checked: 0,
            violation_count: 0,
            violations: Vec::new(),
        }
    }

    /// `true` when check methods actually validate.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of invariant checks performed.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Number of violations observed.
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// The recorded violations (capped at an internal limit).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Keeps the expected `Status` cost in sync with the controller's
    /// ablation setting.
    pub fn set_expected_status_poll(&mut self, cycles: u64) {
        self.status_poll = Duration(cycles);
    }

    fn violate(&mut self, kind: InvariantKind, bank: BankId, at: Cycle, detail: String) {
        let v = Violation {
            kind,
            bank,
            at,
            detail,
        };
        if self.strict {
            panic!("protocol invariant violated: {}", v.render());
        }
        self.violation_count += 1;
        if self.violations.len() < MAX_KEPT {
            self.violations.push(v);
        }
    }

    /// Validates a command about to reserve `set` on `bank` over
    /// `[start, end)`: every chip must be free for the whole window.
    /// This is the bank/chip legality rule — it also enforces WoW
    /// disjointness, since a second write overlapping an in-flight
    /// write's chips fails here.
    pub fn command(
        &mut self,
        timing: &RankTiming,
        bank: BankId,
        set: ChipSet,
        start: Cycle,
        end: Cycle,
        what: &str,
    ) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        if !timing.set_free_during(bank, set, start, end) {
            let busy: Vec<u8> = set
                .chips()
                .filter(|&c| !timing.chip(bank, c).is_free_during(start, end))
                .map(|c| c.0)
                .collect();
            self.violate(
                InvariantKind::BusyChipCommand,
                bank,
                start,
                format!("{what} [{},{}) hits busy chip(s) {busy:?}", start.0, end.0),
            );
        }
    }

    /// Validates a read's chip plan: the chips actually read
    /// (`read_set`) must cover every data word of the line
    /// (`word_chips`), except that exactly one word may be missing if
    /// the PCC chip is read in its place for XOR reconstruction
    /// (§IV-B1). Two or more missing words are unreconstructable.
    pub fn row_read(
        &mut self,
        bank: BankId,
        at: Cycle,
        word_chips: ChipSet,
        read_set: ChipSet,
        pcc_chip: ChipId,
    ) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        let missing: Vec<u8> = word_chips
            .chips()
            .filter(|&c| !read_set.contains_chip(c))
            .map(|c| c.0)
            .collect();
        match missing.len() {
            0 => {}
            1 if read_set.contains_chip(pcc_chip) => {}
            1 => self.violate(
                InvariantKind::RowWithoutPlan,
                bank,
                at,
                format!(
                    "word chip {} skipped but PCC chip {} not in the read set",
                    missing[0], pcc_chip.0
                ),
            ),
            _ => self.violate(
                InvariantKind::RowWithoutPlan,
                bank,
                at,
                format!(
                    "read cannot reconstruct {} missing words {missing:?}",
                    missing.len()
                ),
            ),
        }
    }

    /// Validates a fine write's two-step schedule: the PCC update
    /// (step 2) must start exactly at the end of the worst-case data
    /// phase, `program_start + array_set` (§IV-C, Fig. 5(b)).
    pub fn write_steps(&mut self, bank: BankId, program_start: Cycle, step2_start: Cycle) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        let expected = program_start + self.array_set;
        if step2_start != expected {
            self.violate(
                InvariantKind::PccStepGap,
                bank,
                step2_start,
                format!(
                    "step-2 PCC write starts at {} but step 1 ends at {}",
                    step2_start.0, expected.0
                ),
            );
        }
    }

    /// Validates the `Status` poll charge: an operation overlapping
    /// in-flight work on its bank starts exactly `status_poll` cycles
    /// after the decision; a non-overlapped one starts immediately.
    pub fn status_poll(&mut self, bank: BankId, now: Cycle, start: Cycle, overlapped: bool) {
        self.status_poll_n(bank, now, start, overlapped, 1);
    }

    /// Like [`Self::status_poll`], for an overlapped issue whose poll
    /// had to be repeated `polls` times (a corrupted/lost Status
    /// response is re-polled, multiplying the bus charge — DESIGN.md
    /// §11).
    pub fn status_poll_n(
        &mut self,
        bank: BankId,
        now: Cycle,
        start: Cycle,
        overlapped: bool,
        polls: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        let expected = if overlapped {
            now + Duration(self.status_poll.0 * polls)
        } else {
            now
        };
        if start != expected {
            self.violate(
                InvariantKind::StatusPollCost,
                bank,
                now,
                format!(
                    "overlapped={overlapped}: start {} but expected {} \
                     ({polls} poll(s) at cost {})",
                    start.0, expected.0, self.status_poll.0
                ),
            );
        }
    }

    /// Validates that a speculative (RoW/WoW) issue only happens on a
    /// healthy rank: the fault layer's degraded mode forbids
    /// speculation until the rank re-promotes (DESIGN.md §11).
    pub fn speculative_on_degraded(&mut self, bank: BankId, at: Cycle, degraded: bool, what: &str) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        if degraded {
            self.violate(
                InvariantKind::RowOnDegraded,
                bank,
                at,
                format!("{what} issued while the rank is degraded"),
            );
        }
    }

    /// Validates an uncorrectable-read retry: `attempt` is 1-based and
    /// must never exceed the configured budget.
    pub fn retry(&mut self, bank: BankId, at: Cycle, attempt: u32, budget: u32) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        if attempt > budget {
            self.violate(
                InvariantKind::RetryOverBudget,
                bank,
                at,
                format!("retry attempt {attempt} exceeds budget {budget}"),
            );
        }
    }

    /// Validates a watchdog trip: the stuck chip may only be
    /// force-freed once `deadline` cycles have passed beyond the
    /// operation's expected end.
    pub fn watchdog(&mut self, bank: BankId, at: Cycle, expected_end: Cycle, deadline: u64) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        if at < expected_end + Duration(deadline) {
            self.violate(
                InvariantKind::EarlyWatchdog,
                bank,
                at,
                format!(
                    "watchdog fired at {} but deadline is {} + {deadline}",
                    at.0, expected_end.0
                ),
            );
        }
    }

    /// Validates a read completion's retire ordering: a deferred
    /// SECDED verify must finish at or after the data transfer, and
    /// only RoW-path reads may carry one (§IV-B2).
    pub fn retire(&mut self, bank: BankId, via_row: bool, done: Cycle, verify_done: Option<Cycle>) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        match verify_done {
            Some(vd) if !via_row => self.violate(
                InvariantKind::RetireBeforeVerify,
                bank,
                done,
                format!("non-RoW read carries a deferred verify at {}", vd.0),
            ),
            Some(vd) if vd < done => self.violate(
                InvariantKind::RetireBeforeVerify,
                bank,
                done,
                format!(
                    "deferred verify ends at {} before the data transfer at {}",
                    vd.0, done.0
                ),
            ),
            _ => {}
        }
    }

    /// Validates a rollback trigger: rollback is only legal for a RoW
    /// read whose deferred SECDED check was outstanding (§IV-B3).
    pub fn rollback(&mut self, bank: BankId, at: Cycle, via_row: bool, had_deferred: bool) {
        if !self.enabled {
            return;
        }
        self.checked += 1;
        if !(via_row && had_deferred) {
            self.violate(
                InvariantKind::RollbackWithoutFault,
                bank,
                at,
                format!("rollback signalled with via_row={via_row}, deferred={had_deferred}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::MemOrg;

    fn checker() -> ProtocolChecker {
        ProtocolChecker::collecting(&TimingParams::paper_default())
    }

    #[test]
    fn disabled_checker_counts_nothing() {
        let mut c = ProtocolChecker::with_mode(&TimingParams::paper_default(), false, false);
        let t = RankTiming::new(&MemOrg::tiny());
        c.command(&t, BankId(0), ChipSet::full(), Cycle(0), Cycle(10), "x");
        c.rollback(BankId(0), Cycle(0), false, false);
        assert_eq!(c.checked(), 0);
        assert_eq!(c.violation_count(), 0);
    }

    #[test]
    fn clean_command_passes() {
        let mut c = checker();
        let t = RankTiming::new(&MemOrg::tiny());
        c.command(&t, BankId(0), ChipSet::full(), Cycle(0), Cycle(10), "read");
        assert_eq!(c.checked(), 1);
        assert_eq!(c.violation_count(), 0);
    }

    #[test]
    fn violation_cap_keeps_counting() {
        let mut c = checker();
        for i in 0..(MAX_KEPT as u64 + 10) {
            c.rollback(BankId(0), Cycle(i), false, false);
        }
        assert_eq!(c.violation_count(), MAX_KEPT as u64 + 10);
        assert_eq!(c.violations().len(), MAX_KEPT);
    }

    #[test]
    #[should_panic(expected = "protocol invariant violated")]
    fn strict_mode_panics() {
        let mut c = ProtocolChecker::strict(&TimingParams::paper_default());
        c.rollback(BankId(0), Cycle(0), false, false);
    }

    #[test]
    fn repeated_status_polls_price_correctly() {
        let mut c = checker();
        let poll = TimingParams::paper_default().status_cmd;
        // A corrupted poll re-polled once: cost doubles.
        c.status_poll_n(BankId(0), Cycle(100), Cycle(100 + 2 * poll), true, 2);
        assert_eq!(c.violation_count(), 0);
        // Charging only a single poll for a repeated one is a violation.
        c.status_poll_n(BankId(0), Cycle(100), Cycle(100 + poll), true, 2);
        assert_eq!(c.violation_count(), 1);
    }

    #[test]
    fn speculation_on_degraded_rank_fires() {
        let mut c = checker();
        c.speculative_on_degraded(BankId(1), Cycle(5), false, "row read");
        assert_eq!(c.violation_count(), 0);
        c.speculative_on_degraded(BankId(1), Cycle(6), true, "row read");
        assert_eq!(c.violation_count(), 1);
        assert_eq!(c.violations()[0].kind, InvariantKind::RowOnDegraded);
    }

    #[test]
    fn retry_budget_is_enforced() {
        let mut c = checker();
        c.retry(BankId(0), Cycle(1), 3, 3);
        assert_eq!(c.violation_count(), 0);
        c.retry(BankId(0), Cycle(2), 4, 3);
        assert_eq!(c.violation_count(), 1);
        assert_eq!(c.violations()[0].kind, InvariantKind::RetryOverBudget);
    }

    #[test]
    fn watchdog_must_wait_for_deadline() {
        let mut c = checker();
        c.watchdog(BankId(0), Cycle(356), Cycle(100), 256);
        assert_eq!(c.violation_count(), 0);
        c.watchdog(BankId(0), Cycle(355), Cycle(100), 256);
        assert_eq!(c.violation_count(), 1);
        assert_eq!(c.violations()[0].kind, InvariantKind::EarlyWatchdog);
    }
}
