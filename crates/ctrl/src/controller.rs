//! The memory-controller abstraction and the baseline (non-PCMap)
//! controller.
//!
//! [`CtrlCore`] bundles the plumbing every controller variant shares —
//! queues, drain policy, bus, rank, statistics — plus the issue helpers for
//! coarse reads and baseline whole-rank writes. [`BaselineController`] is
//! the paper's *Baseline* system: reads prioritized over writes with an
//! α = 80 % drain policy, FR-FCFS ordering, and writes that keep every chip
//! of the bank reserved for the full write latency even though only the
//! essential-word chips do useful work.

use crate::bus::{BusDir, ChannelBus};
use crate::check::ProtocolChecker;
use crate::op;
use crate::queues::{DrainPolicy, DrainState, RequestQueue};
use crate::request::{Completion, MemRequest, ReqId, ReqKind};
use crate::stats::CtrlStats;
use pcmap_device::PcmRank;
use pcmap_ecc::line::LineCheck;
use pcmap_faults::{ChipFault, FaultPlan};
use pcmap_obs::{
    Event, EventKind, EventLog, EventSink, LifecycleTracer, RecoveryKind, Resource, WaitCause,
};
use pcmap_types::{
    BankId, ChipId, ChipSet, ColAddr, Cycle, Duration, MemOrg, QueueParams, RowAddr, TimingParams,
};

/// Latency of answering a read straight from the write queue.
const FORWARD_LATENCY: Duration = Duration(2);

/// A stuck-busy chip being monitored by the per-rank watchdog.
#[derive(Debug, Clone, Copy)]
pub struct PendingWatchdog {
    /// Bank of the hung operation.
    pub bank: BankId,
    /// The chip that hung busy.
    pub chip: ChipId,
    /// When the operation should have released the chip.
    pub expected_end: Cycle,
    /// When the watchdog may force-free the chip.
    pub fire_at: Cycle,
    /// The configured deadline (kept for the invariant checker).
    pub deadline: u64,
}

/// Outcome of the functional-read + SECDED recovery pipeline
/// ([`CtrlCore::resolve_read`]).
#[derive(Debug, Clone, Copy)]
pub struct ReadResolution {
    /// Extra latency spent on PCC reconstruction and bounded retries.
    pub extra: Duration,
    /// Share of `extra` spent on PCC erasure reconstruction (recovery
    /// ladder attribution for the lifecycle tracer).
    pub reconstruct_extra: Duration,
    /// Share of `extra` spent waiting out retry backoff.
    pub retry_extra: Duration,
    /// The read exhausted its retry budget and failed upward.
    pub failed: bool,
    /// The data was handed to the CPU before its deferred SECDED check;
    /// the check will find it corrupt and force a rollback.
    pub corrupted: bool,
}

impl ReadResolution {
    /// A clean resolution: no extra latency, no failure, no corruption.
    pub const CLEAN: Self = Self {
        extra: Duration::ZERO,
        reconstruct_extra: Duration::ZERO,
        retry_extra: Duration::ZERO,
        failed: false,
        corrupted: false,
    };
}

/// A channel memory controller.
///
/// One controller owns one channel: its request queues, its bus and its
/// rank. The simulator drives it through this trait; the baseline and the
/// PCMap controllers are interchangeable implementations.
///
/// Enqueue methods hand the request back in the `Err` variant when the
/// queue is full so the caller can retry without cloning — the 136-byte
/// payload is intentional (`clippy::result_large_err` is waived).
///
/// `Send` is a supertrait: a channel's whole state (queues, bus, rank,
/// wear, RNG stream, event log) is channel-private, which is what lets
/// the parallel engine advance each controller on its own worker thread
/// between CPU↔memory barriers.
#[allow(clippy::result_large_err)]
pub trait Controller: Send {
    /// Offers a read request at time `now`.
    ///
    /// Returns `Ok(Some(completion))` if the read was forwarded from the
    /// write queue, `Ok(None)` if it was queued.
    ///
    /// # Errors
    ///
    /// Returns the request back if the read queue is full.
    fn enqueue_read(
        &mut self,
        req: MemRequest,
        now: Cycle,
    ) -> Result<Option<Completion>, MemRequest>;

    /// Offers a write request at time `now`.
    ///
    /// # Errors
    ///
    /// Returns the request back if the write queue is full.
    fn enqueue_write(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest>;

    /// Makes all issue decisions possible at `now`; returns completions
    /// scheduled during this step (their `done` times are in the future).
    ///
    /// Event-engine contract (DESIGN.md §14): a call at a `now` before the
    /// cached [`Self::next_tick`] horizon is a structural no-op — the
    /// controller returns without mutating any state — so both engines
    /// perform identical work regardless of how many cycles they visit.
    fn step(&mut self, now: Cycle) -> Vec<Completion>;

    /// The cached event horizon: the earliest cycle at which the next
    /// [`Self::step`] call can make progress, or `None` when no work is
    /// pending. Recomputed at the end of every non-skipped step body and
    /// reset to [`Cycle::ZERO`] ("due immediately") by every enqueue, so
    /// it is a pure function of simulation state — never of how often the
    /// engine polled.
    fn next_tick(&self) -> Option<Cycle>;

    /// The next time this controller could make progress, if any work is
    /// pending: [`Self::next_tick`] clamped to the future of `now`.
    fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        self.next_tick()
            .map(|w| if w <= now { Cycle(now.0 + 1) } else { w })
    }

    /// Queued reads.
    fn read_q_len(&self) -> usize;
    /// Queued writes.
    fn write_q_len(&self) -> usize;
    /// Write-queue capacity (for CPU-side back-pressure).
    fn write_q_capacity(&self) -> usize;
    /// Statistics.
    fn stats(&self) -> &CtrlStats;
    /// The rank behind this channel.
    fn rank(&self) -> &PcmRank;
    /// Mutable rank access (fault injection, inspection).
    fn rank_mut(&mut self) -> &mut PcmRank;
    /// The request-lifecycle event log (chip-occupancy timelines are the
    /// [`pcmap_obs::ChipTrace`] view over it).
    fn events(&self) -> &EventLog;
    /// Enables or disables lifecycle event recording.
    fn set_trace(&mut self, enabled: bool);
    /// The per-request causal-timeline tracer (disabled by default; see
    /// [`pcmap_obs::LifecycleTracer`] and DESIGN.md §13).
    fn lifetrace(&self) -> &LifecycleTracer;
    /// Enables or disables causal lifecycle tracing.
    fn set_lifetrace(&mut self, enabled: bool);
    /// Finalizes metric windows up to `now` (pass [`Cycle::MAX`] at the end
    /// of simulation).
    fn settle(&mut self, now: Cycle);

    /// Number of write-drain episodes started so far.
    fn drains_started(&self) -> u64;

    /// Number of protocol invariant checks performed (0 when the
    /// checker is disabled — see [`crate::check::ProtocolChecker`]).
    fn invariants_checked(&self) -> u64;

    /// Number of protocol invariant violations observed.
    fn invariant_violations(&self) -> u64;

    /// Reports a CPU-side rollback trigger to the invariant checker:
    /// rollback is only legal for a RoW read whose deferred SECDED
    /// check was outstanding.
    fn note_rollback(&mut self, at: Cycle, via_row: bool, had_deferred: bool);

    /// Installs (or clears) this channel's deterministic fault plan.
    /// With `None` (the default) every fault hook is inert and draws no
    /// random numbers, so fault-free runs are byte-identical to builds
    /// predating fault injection.
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>);
}

/// Shared controller state and issue helpers.
#[derive(Debug)]
pub struct CtrlCore {
    /// Memory organization.
    pub org: MemOrg,
    /// Timing parameters.
    pub t: TimingParams,
    /// The channel's rank.
    pub rank: PcmRank,
    /// Pending reads.
    pub read_q: RequestQueue,
    /// Pending writes, one queue per bank (Table I / §V: "separate write
    /// and read queues ... for banks"). Per-bank buffering is what makes
    /// drains produce deep same-bank write bursts — the regime WoW
    /// consolidates.
    pub write_qs: Vec<RequestQueue>,
    /// Write-drain state machine, per bank.
    pub drains: Vec<DrainPolicy>,
    /// The shared channel data bus (coarse transfers only).
    pub bus: ChannelBus,
    /// Statistics.
    pub stats: CtrlStats,
    /// Lifecycle event log (disabled by default).
    pub events: EventLog,
    /// Per-request causal timelines: every simulated cycle of a traced
    /// request attributed to a wait cause or service phase (disabled by
    /// default; DESIGN.md §13).
    pub lifetrace: LifecycleTracer,
    /// Per-bank completion time of the most recent write (delay
    /// attribution for Figure 1).
    pub last_write_end: Vec<Cycle>,
    /// When the controller last left drain mode.
    pub last_drain_exit: Cycle,
    /// Last cycle with read activity, if any: opportunistic writes wait
    /// for a read-idle window rather than leaking out the moment the read
    /// queue is instantaneously empty.
    pub last_read_activity: Option<Cycle>,
    /// Runtime protocol invariant checker (read-only w.r.t. the
    /// simulation; enabled in debug builds and under `PCMAP_CHECK`).
    pub checker: ProtocolChecker,
    /// Deterministic fault injector for this channel (`None` ⇒ every
    /// fault hook is inert and the fault-free path is untouched).
    pub faults: Option<FaultPlan>,
    /// Stuck-busy chips awaiting their watchdog deadline.
    pub watchdogs: Vec<PendingWatchdog>,
    /// Cached event horizon ([`Controller::next_tick`]): earliest cycle at
    /// which the next step body can make progress; `None` when idle.
    /// Every enqueue resets it to `Some(Cycle::ZERO)` ("due immediately");
    /// [`Self::compute_wake`] recomputes it at the end of each step body.
    pub wake: Option<Cycle>,
    /// Scratch: earliest retry hint noted by a blocked issue branch during
    /// the current step-body pass ([`Self::note_hint`]). Reset at the top
    /// of each inner scheduling pass so only the final (non-issuing)
    /// pass's hints survive into [`Self::compute_wake`].
    pub retry_hint: Option<Cycle>,
}

impl CtrlCore {
    /// Creates controller state for one channel.
    pub fn new(org: MemOrg, t: TimingParams, q: QueueParams, seed: u64) -> Self {
        let checker = ProtocolChecker::from_env(&t);
        Self {
            org,
            t,
            rank: PcmRank::with_seed(org, seed),
            read_q: RequestQueue::new(q.read_q),
            write_qs: (0..org.banks)
                .map(|_| RequestQueue::new(q.write_q))
                .collect(),
            drains: (0..org.banks).map(|_| DrainPolicy::new(&q)).collect(),
            bus: ChannelBus::new(),
            stats: CtrlStats::new(org.banks as usize),
            events: EventLog::disabled(),
            lifetrace: LifecycleTracer::disabled(),
            last_write_end: vec![Cycle::ZERO; org.banks as usize],
            last_drain_exit: Cycle::ZERO,
            last_read_activity: None,
            checker,
            faults: None,
            watchdogs: Vec::new(),
            wake: None,
            retry_hint: None,
        }
    }

    /// `true` when the cached event horizon has been reached — i.e. the
    /// step body must run at `now`. A step call while this is `false` is
    /// the event-engine equivalence contract's structural no-op.
    #[must_use]
    pub fn step_due(&self, now: Cycle) -> bool {
        self.wake.is_some_and(|w| w <= now)
    }

    /// Notes that a blocked issue branch could retry at `t` (the earliest
    /// cycle the branch's feasibility window clears of *current*
    /// reservations). Hints may be early — an early wake just runs one
    /// extra no-progress body identically in both engines — but must
    /// never be later than the true unblock time of the work they cover.
    pub fn note_hint(&mut self, t: Cycle) {
        self.retry_hint = Some(match self.retry_hint {
            Some(h) => h.min(t),
            None => t,
        });
    }

    /// Starts one inner scheduling pass of a step body: clears the hint
    /// scratch so stale hints from passes that then issued work don't
    /// linger. The final pass of a body issues nothing and re-scans every
    /// queued request, so it leaves the complete hint set.
    pub fn begin_pass(&mut self) {
        self.retry_hint = None;
    }

    /// Recomputes the cached event horizon at the end of a step body:
    /// min over watchdog deadlines, accumulated blocked-branch retry
    /// hints, the read-idle expiry that releases opportunistic writes,
    /// and the fault plan's degradation re-promotion boundary — clamped
    /// strictly past `now`; `None` when no work is pending.
    pub fn compute_wake(&mut self, now: Cycle) {
        let has_work =
            !self.read_q.is_empty() || self.write_q_len_total() > 0 || !self.watchdogs.is_empty();
        if !has_work {
            self.wake = None;
            self.retry_hint = None;
            return;
        }
        let mut wake = Cycle::MAX;
        for w in &self.watchdogs {
            wake = wake.min(w.fire_at);
        }
        if let Some(h) = self.retry_hint.take() {
            wake = wake.min(h);
        }
        // Writes parked behind read priority unblock when the read-idle
        // window expires (reads queued later re-arm the horizon via the
        // enqueue hook).
        if self.read_q.is_empty()
            && self.write_q_len_total() > 0
            && !self.any_draining()
            && !self.read_idle(now)
        {
            if let Some(t) = self.last_read_activity {
                wake = wake.min(Cycle(t.0 + Self::READ_IDLE_WINDOW));
            }
        }
        // A degraded rank re-promotes (and regains WoW/RoW) at a known
        // boundary; wake then so scheduling fidelity matches per-cycle
        // stepping.
        if let Some(t) = self.faults.as_ref().and_then(|p| p.next_tick(now)) {
            wake = wake.min(t);
        }
        self.wake = Some(if wake <= now || wake == Cycle::MAX {
            // Defensive fallback: work is pending but no branch produced a
            // hint — poll the next cycle rather than stall (matches the
            // pre-event-engine per-cycle behaviour at worst).
            Cycle(now.0 + 1)
        } else {
            wake
        });
    }

    /// Cycles of read silence required before writes issue
    /// opportunistically (outside drains).
    pub const READ_IDLE_WINDOW: u64 = 64;

    /// `true` if the read path has been quiet long enough for
    /// opportunistic writes.
    pub fn read_idle(&self, now: Cycle) -> bool {
        self.read_q.is_empty()
            && match self.last_read_activity {
                None => true,
                Some(t) => now.0 >= t.0 + Self::READ_IDLE_WINDOW,
            }
    }

    /// The chips a coarse (whole-line) read occupies in the fixed layout:
    /// all data chips plus the ECC chip.
    pub fn coarse_read_set() -> ChipSet {
        let mut s = ChipSet::data_chips_fixed();
        s.insert_chip(ChipId::ECC);
        s
    }

    /// The chips a baseline write reserves: the whole bank across data and
    /// ECC chips (no sub-ranking in the baseline).
    pub fn baseline_write_set() -> ChipSet {
        Self::coarse_read_set()
    }

    /// Common enqueue-read path with write-queue forwarding.
    #[allow(clippy::result_large_err)] // request handed back by value on a full queue
    pub fn enqueue_read_common(
        &mut self,
        req: MemRequest,
        now: Cycle,
    ) -> Result<Option<Completion>, MemRequest> {
        // Any read arrival moves the read-idle expiry event (even a
        // forwarded or rejected one), so the cached horizon must be
        // recomputed: mark the controller due immediately.
        self.wake = Some(Cycle::ZERO);
        self.last_read_activity = Some(self.last_read_activity.unwrap_or(Cycle::ZERO).max(now));
        self.events.record(Event {
            at: now,
            req: req.id.0,
            bank: req.loc.bank,
            kind: EventKind::Arrival { is_write: false },
        });
        if self.write_qs[req.loc.bank.index()]
            .newest_to_line(req.line)
            .is_some()
        {
            let done = now + FORWARD_LATENCY;
            self.stats.reads_done += 1;
            self.stats.reads_forwarded += 1;
            self.stats.read_latency_sum += done.since(req.arrival);
            self.stats
                .read_latency_hist
                .record(done.since(req.arrival).as_u64());
            if self.events.is_enabled() {
                self.events.record(Event {
                    at: now,
                    req: req.id.0,
                    bank: req.loc.bank,
                    kind: EventKind::Forwarded,
                });
                self.events.record(Event {
                    at: done,
                    req: req.id.0,
                    bank: req.loc.bank,
                    kind: EventKind::Complete {
                        is_write: false,
                        latency: done.since(req.arrival),
                    },
                });
            }
            self.lifetrace.forwarded(req.id.0, req.arrival, done);
            return Ok(Some(Completion {
                id: req.id,
                core: req.core,
                is_read: true,
                arrival: req.arrival,
                done,
                via_row: false,
                verify_done: None,
                forwarded: true,
                failed: false,
                corrupted: false,
            }));
        }
        let (id, arrival) = (req.id.0, req.arrival);
        self.read_q.push(req)?;
        self.lifetrace.arrival(id, arrival, false);
        Ok(None)
    }

    /// Updates one bank's drain state machine, tracking exits for delay
    /// attribution.
    pub fn update_drain(&mut self, bank: BankId, now: Cycle) -> DrainState {
        let backlog = self.write_qs[bank.index()].len();
        let d = &mut self.drains[bank.index()];
        let before = d.state();
        let after = d.update(backlog);
        if before == DrainState::Normal && after == DrainState::Draining {
            self.events.record(Event {
                at: now,
                req: pcmap_obs::NO_REQ,
                bank,
                kind: EventKind::DrainStart { backlog },
            });
        }
        if before == DrainState::Draining && after == DrainState::Normal {
            self.last_drain_exit = now;
            self.events.record(Event {
                at: now,
                req: pcmap_obs::NO_REQ,
                bank,
                kind: EventKind::DrainEnd,
            });
        }
        after
    }

    /// Total queued writes across banks.
    pub fn write_q_len_total(&self) -> usize {
        self.write_qs.iter().map(|q| q.len()).sum()
    }

    /// Enqueues a write into its bank's queue.
    ///
    /// # Errors
    ///
    /// Returns the request back if that bank's queue is full.
    #[allow(clippy::result_large_err)] // request handed back by value on a full queue
    pub fn enqueue_write_common(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let (at, id, bank) = (req.arrival, req.id.0, req.loc.bank);
        self.write_qs[req.loc.bank.index()].push(req)?;
        // Fresh work: mark the controller due immediately so the next
        // step body runs and recomputes the event horizon.
        self.wake = Some(Cycle::ZERO);
        self.events.record(Event {
            at,
            req: id,
            bank,
            kind: EventKind::Arrival { is_write: true },
        });
        self.lifetrace.arrival(id, at, true);
        Ok(())
    }

    /// Total drain episodes started across banks.
    pub fn drains_started_total(&self) -> u64 {
        self.drains.iter().map(|d| d.drains_started()).sum()
    }

    /// `true` while any bank is draining writes — the channel bus is
    /// turned to the write direction (§II-B), so ordinary reads wait.
    pub fn any_draining(&self) -> bool {
        self.drains
            .iter()
            .any(|d| d.state() == DrainState::Draining)
    }

    /// Whether serving a read *now* that arrived at `arrival` counts as
    /// delayed by write activity (Figure 1's numerator): some write was
    /// running on its bank, or a drain episode intervened, since arrival.
    pub fn read_was_delayed(&self, bank: BankId, arrival: Cycle, now: Cycle) -> bool {
        now > arrival
            && (self.last_write_end[bank.index()] > arrival
                || self.drains[bank.index()].state() == DrainState::Draining
                || self.last_drain_exit > arrival)
    }

    /// Picks the best issueable read at `now` under FR-FCFS: row hits
    /// first, then oldest, among reads whose chips are free. While any
    /// bank drains, the bus is in write mode and no read issues at all.
    pub fn pick_coarse_read(&mut self, now: Cycle) -> Option<ReqId> {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::CtrlSchedule);
        pcmap_prof::bump(pcmap_prof::Counter::QueueScans);
        if self.any_draining() {
            if self.lifetrace.enabled() {
                for req in self.read_q.iter() {
                    self.lifetrace.blocked(
                        req.id.0,
                        now,
                        WaitCause::Drain,
                        Some(Resource::bank(req.loc.bank)),
                    );
                }
            }
            return None;
        }
        let set = Self::coarse_read_set();
        let mut best: Option<(bool, u64, ReqId)> = None; // (row_hit, age_key, id)
        for (age, req) in self.read_q.iter().enumerate() {
            let bank = req.loc.bank;
            pcmap_prof::bump(pcmap_prof::Counter::ConstraintChecks);
            let chips_free = self.rank.timing().free_at(bank, set, now);
            if chips_free > now {
                // Event horizon: this read becomes issueable once every
                // chip of the coarse set has drained its reservations.
                // (Direct field update: `self.read_q` is borrowed by the
                // iteration, so the `note_hint` method can't be called.)
                self.retry_hint = Some(match self.retry_hint {
                    Some(h) => h.min(chips_free),
                    None => chips_free,
                });
                if self.lifetrace.enabled() {
                    // Attribute the busy window: a write still programming
                    // the bank, or (otherwise) another read on its chips.
                    let cause = if self.last_write_end[bank.index()] > now {
                        WaitCause::WriteInFlight
                    } else {
                        WaitCause::MultiBusy
                    };
                    self.lifetrace
                        .blocked(req.id.0, now, cause, Some(Resource::bank(bank)));
                }
                continue;
            }
            let hit = self
                .rank
                .timing()
                .chips_needing_activate(bank, set, req.loc.row)
                .is_empty();
            let key = (hit, age as u64, req.id);
            best = match best {
                None => Some(key),
                Some((bhit, bage, bid)) => {
                    if (hit && !bhit) || (hit == bhit && (age as u64) < bage) {
                        Some(key)
                    } else {
                        Some((bhit, bage, bid))
                    }
                }
            };
        }
        best.map(|(_, _, id)| id)
    }

    /// Issues a coarse read at `now`. The chips must be free (checked by
    /// [`Self::pick_coarse_read`]).
    pub fn issue_coarse_read(&mut self, id: ReqId, now: Cycle) -> Completion {
        pcmap_prof::bump(pcmap_prof::Counter::CommandsIssued);
        let req = self.read_q.remove(id).expect("picked read must be queued");
        let bank = req.loc.bank;
        let set = Self::coarse_read_set();
        let row_hit = self
            .rank
            .timing()
            .chips_needing_activate(bank, set, req.loc.row)
            .is_empty();

        let to_transfer = op::read_latency_to_transfer(row_hit, &self.t);
        let transfer = self.bus.reserve(BusDir::Read, now + to_transfer, &self.t);
        let data_ready = transfer + Duration(self.t.burst);

        self.checker.command(
            self.rank.timing(),
            bank,
            set,
            now,
            data_ready,
            "coarse read",
        );
        self.rank.timing_mut().reserve(bank, set, now, data_ready);
        self.rank.timing_mut().open_row(bank, set, req.loc.row);

        // Chip slow-down / stuck-busy faults extend occupancy past the
        // nominal window (inert without a fault plan).
        let data_ready = self.apply_chip_fault(bank, set, now, data_ready);

        // Functional read + SECDED check (free on a coarse read) and, under
        // fault injection, the correction/reconstruction/retry pipeline.
        self.rank.energy_mut().record_read(9 * 64); // 8 data words + ECC word
        let res = self.resolve_read(bank, req.loc.row, req.loc.col, now, false);
        let service_end = data_ready;
        let data_ready = data_ready + res.extra;

        if self.lifetrace.enabled() {
            self.lifetrace.issue(req.id.0, now, now, service_end);
            for chip in set.chips() {
                self.lifetrace
                    .chip_service(req.id.0, chip, now, service_end);
            }
            if res.reconstruct_extra.0 > 0 {
                self.lifetrace.recovery(
                    req.id.0,
                    RecoveryKind::Reconstruct,
                    service_end + res.reconstruct_extra,
                );
            }
            if res.retry_extra.0 > 0 {
                self.lifetrace
                    .recovery(req.id.0, RecoveryKind::Retry, data_ready);
            }
            if res.failed {
                self.lifetrace.failed(req.id.0);
            }
            self.lifetrace.complete(req.id.0, data_ready);
        }

        if self.read_was_delayed(bank, req.arrival, now) {
            self.stats.reads_delayed_by_write += 1;
        }
        self.stats.reads_done += 1;
        self.stats.read_latency_sum += data_ready.since(req.arrival);
        self.stats
            .read_latency_hist
            .record(data_ready.since(req.arrival).as_u64());

        self.events.record(Event {
            at: now,
            req: req.id.0,
            bank,
            kind: EventKind::Issue { is_write: false },
        });
        // IRLP: eight data-word-serving chips.
        for chip in ChipSet::data_chips_fixed().chips() {
            self.stats.irlp.record_segment(bank, now, data_ready);
            self.events
                .chip_occupy(req.id.0, bank, chip, now, data_ready, || {
                    format!("Rd-{}", req.id.0)
                });
        }
        self.events.record(Event {
            at: data_ready,
            req: req.id.0,
            bank,
            kind: EventKind::Complete {
                is_write: false,
                latency: data_ready.since(req.arrival),
            },
        });

        Completion {
            id: req.id,
            core: req.core,
            is_read: true,
            arrival: req.arrival,
            done: data_ready,
            via_row: false,
            verify_done: None,
            forwarded: false,
            failed: res.failed,
            corrupted: false,
        }
    }

    /// Picks the oldest issueable write of `bank` at `now`, preserving
    /// same-address write order (a newer write to a line may not jump an
    /// older blocked one).
    pub fn pick_baseline_write(&mut self, bank: BankId, now: Cycle) -> Option<ReqId> {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::CtrlSchedule);
        pcmap_prof::bump(pcmap_prof::Counter::QueueScans);
        let set = Self::baseline_write_set();
        let mut skipped: Vec<pcmap_types::LineAddr> = Vec::new();
        for req in self.write_qs[bank.index()].iter() {
            if skipped.contains(&req.line) {
                continue;
            }
            pcmap_prof::bump(pcmap_prof::Counter::ConstraintChecks);
            let chips_free = self.rank.timing().free_at(req.loc.bank, set, now);
            if chips_free <= now {
                return Some(req.id);
            }
            // Event horizon: the write becomes issueable once its bank's
            // chips drain (the bus never blocks issue, only shifts start).
            // (Direct field update: `self.write_qs` is borrowed by the
            // iteration, so the `note_hint` method can't be called.)
            self.retry_hint = Some(match self.retry_hint {
                Some(h) => h.min(chips_free),
                None => chips_free,
            });
            if self.lifetrace.enabled() {
                self.lifetrace.blocked(
                    req.id.0,
                    now,
                    WaitCause::WriteInFlight,
                    Some(Resource::bank(bank)),
                );
            }
            skipped.push(req.line);
        }
        None
    }

    /// Issues a baseline (whole-rank) write at `now`: every chip of the
    /// bank is reserved until the slowest essential chip finishes.
    pub fn issue_baseline_write(&mut self, id: ReqId, now: Cycle) -> Completion {
        pcmap_prof::bump(pcmap_prof::Counter::CommandsIssued);
        let bank0 = self
            .write_qs
            .iter()
            .position(|q| q.iter().any(|r| r.id == id))
            .expect("picked write must be queued");
        let req = self.write_qs[bank0]
            .remove(id)
            .expect("picked write must be queued");
        let ReqKind::Write { data } = req.kind else {
            panic!("write queue held a read")
        };
        let bank = req.loc.bank;

        let outcome = self.rank.write_words(
            bank,
            req.loc.row,
            req.loc.col,
            data,
            pcmap_types::WordMask::full(),
        );
        self.stats.essential_histogram[outcome.essential.count()] += 1;
        if outcome.silent {
            self.stats.silent_writes += 1;
        }

        // Full-bus transfer of the line, then in-chip differential writes.
        let transfer = self
            .bus
            .reserve(BusDir::Write, now + Duration(self.t.t_wl), &self.t);
        let program_start = transfer + Duration(self.t.burst);

        self.events.record(Event {
            at: now,
            req: req.id.0,
            bank,
            kind: EventKind::Issue { is_write: true },
        });
        let mut done = program_start + Duration(self.t.array_read); // compare-only chips
        for i in outcome.essential.iter() {
            let end = program_start + outcome.kinds[i].duration(&self.t);
            done = done.max(end);
            // IRLP + wear for the essential chips (identity layout).
            let chip = ChipId(i as u8);
            self.stats.irlp.record_segment(bank, now, end);
            self.rank.wear_mut().record(chip, outcome.bits_per_word[i]);
            self.events.chip_occupy(req.id.0, bank, chip, now, end, || {
                format!("Wr-{}", req.id.0)
            });
        }
        if !outcome.silent {
            // The ECC chip is rewritten alongside (not counted in IRLP).
            let ecc_end = program_start + Duration(self.t.array_set);
            done = done.max(ecc_end);
            self.rank.wear_mut().record(ChipId::ECC, 8);
            self.rank.energy_mut().record_write(4, 4);
            self.events
                .chip_occupy(req.id.0, bank, ChipId::ECC, now, ecc_end, || {
                    format!("We-{}", req.id.0)
                });
        }

        let set = Self::baseline_write_set();
        self.checker
            .command(self.rank.timing(), bank, set, now, done, "baseline write");
        self.rank.timing_mut().reserve(bank, set, now, done);

        // Fault hooks: this write may burn out a cell (stuck-at wear) or
        // hit a slow / stuck-busy chip. Inert without a fault plan.
        self.plant_wear_fault(bank, req.loc.row, req.loc.col, now);
        let done = self.apply_chip_fault(bank, set, now, done);

        if self.lifetrace.enabled() {
            self.lifetrace.issue(req.id.0, now, now, done);
            for i in outcome.essential.iter() {
                let end = program_start + outcome.kinds[i].duration(&self.t);
                self.lifetrace
                    .chip_service(req.id.0, ChipId(i as u8), now, end);
            }
            self.lifetrace.complete(req.id.0, done);
        }

        self.stats.irlp.open_window(bank, now, done);
        // Re-record the write's own segments into the fresh window: the
        // window must see them even though they were recorded above.
        // (record_segment already clips into open windows; since the window
        // opened after, we record the essential segments again via the
        // tracker's active list — which `open_window` consults. Nothing to
        // do here.)

        self.stats.record_write_done(done);
        self.last_write_end[bank.index()] = self.last_write_end[bank.index()].max(done);
        self.events.record(Event {
            at: done,
            req: req.id.0,
            bank,
            kind: EventKind::Complete {
                is_write: true,
                latency: done.since(req.arrival),
            },
        });

        Completion {
            id: req.id,
            core: req.core,
            is_read: false,
            arrival: req.arrival,
            done,
            via_row: false,
            verify_done: None,
            forwarded: false,
            failed: false,
            corrupted: false,
        }
    }

    /// Conservative wake estimate shared by controller variants: the
    /// earliest time any pending request's chips could free up, or the bus.
    pub fn next_wake_common(&self, now: Cycle) -> Option<Cycle> {
        if self.read_q.is_empty() && self.write_q_len_total() == 0 && self.watchdogs.is_empty() {
            return None;
        }
        let mut wake = Cycle::MAX;
        for w in &self.watchdogs {
            wake = Cycle(wake.0.min(w.fire_at.0));
        }
        let coarse = Self::coarse_read_set();
        for req in self
            .read_q
            .iter()
            .chain(self.write_qs.iter().flat_map(|q| q.iter()))
        {
            let t = self.rank.timing().free_at(req.loc.bank, coarse, now);
            wake = Cycle(wake.0.min(t.0));
        }
        if self.bus.free_at() > now {
            wake = Cycle(wake.0.min(self.bus.free_at().0));
        }
        Some(if wake <= now { Cycle(now.0 + 1) } else { wake })
    }

    /// Performs the functional read of `(bank, row, col)` and runs the
    /// SECDED/recovery pipeline against it.
    ///
    /// Without a fault plan this is exactly the pre-fault behaviour: one
    /// verify, correction/uncorrectable counters, no extra latency. With
    /// a plan, transient flips are drawn onto the read-out copy (storage
    /// stays ground truth), then:
    ///
    /// 1. clean or SECDED-corrected reads proceed (counted);
    /// 2. uncorrectable reads with a single bad word are rebuilt from the
    ///    other seven words plus the PCC parity word (erasure
    ///    reconstruction, §III-C), costing one extra array read;
    /// 3. anything else retries with exponential backoff until the retry
    ///    budget is exhausted, then fails upward.
    ///
    /// With `deferred` (a RoW read whose SECDED check is outstanding) the
    /// data has already been handed to the CPU, so a faulty read is
    /// reported as `corrupted` — the deferred check will catch it and
    /// force a rollback — instead of being retried.
    pub fn resolve_read(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        now: Cycle,
        deferred: bool,
    ) -> ReadResolution {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::CtrlResolve);
        let stored = self.rank.read_line(bank, row, col);
        let codec = self.rank.storage().codec();
        let Some(plan) = self.faults.as_mut() else {
            // Fault injection off: the original single check.
            match codec.verify(&stored.data, stored.ecc) {
                c if c.is_clean() => {}
                LineCheck::Corrected { .. } => self.stats.ecc_corrected += 1,
                _ => self.stats.ecc_uncorrectable += 1,
            }
            return ReadResolution::CLEAN;
        };
        let budget = plan.retry_budget();
        let mut extra = Duration::ZERO;
        let mut recon = Duration::ZERO;
        let mut backoff = Duration::ZERO;
        let mut attempt: u32 = 0;
        loop {
            let mut data = stored.data;
            let fault = plan.on_line_read();
            if fault.is_fault() {
                self.stats.faults_injected += 1;
                if matches!(fault, pcmap_faults::ReadFault::DoubleBit { .. }) {
                    self.stats.faults_double_bit += 1;
                }
                fault.apply(&mut data);
            }
            let check = codec.verify(&data, stored.ecc);
            if deferred {
                // The (possibly corrupt) words are already on their way to
                // the CPU; only the deferred check can flag them.
                if fault.is_fault() || !check.is_clean() {
                    match check {
                        LineCheck::Corrected { .. } => self.stats.ecc_corrected += 1,
                        LineCheck::Uncorrectable { .. } => self.stats.ecc_uncorrectable += 1,
                        LineCheck::Clean => {}
                    }
                    self.stats.corruption_rollbacks += 1;
                    plan.record_fault(now);
                    return ReadResolution {
                        extra,
                        reconstruct_extra: recon,
                        retry_extra: backoff,
                        failed: false,
                        corrupted: true,
                    };
                }
                return ReadResolution::CLEAN;
            }
            match check {
                LineCheck::Clean => {
                    return ReadResolution {
                        extra,
                        reconstruct_extra: recon,
                        retry_extra: backoff,
                        failed: false,
                        corrupted: false,
                    };
                }
                LineCheck::Corrected { .. } => {
                    self.stats.ecc_corrected += 1;
                    if fault.is_fault() {
                        self.stats.faults_corrected += 1;
                    }
                    plan.record_fault(now);
                    // Oracle: the corrected line must verify clean — a
                    // miscorrection here would be a silent corruption.
                    match check.recovered(&data) {
                        Some(fixed) if codec.verify(&fixed, stored.ecc).is_clean() => {}
                        _ => self.stats.silent_corruptions += 1,
                    }
                    return ReadResolution {
                        extra,
                        reconstruct_extra: recon,
                        retry_extra: backoff,
                        failed: false,
                        corrupted: false,
                    };
                }
                LineCheck::Uncorrectable { words } => {
                    self.stats.ecc_uncorrectable += 1;
                    plan.record_fault(now);
                    if words.count() == 1 {
                        // Erasure reconstruction: treat the bad word's chip
                        // as erased and rebuild it from the PCC word. Costs
                        // one extra array read (the PCC chip).
                        let missing = words.iter().next().expect("count == 1");
                        let rebuilt = codec.reconstruct(&data, missing, stored.pcc);
                        if codec.verify(&rebuilt, stored.ecc).is_clean() {
                            self.stats.faults_reconstructed += 1;
                            extra += Duration(self.t.array_read);
                            recon += Duration(self.t.array_read);
                            return ReadResolution {
                                extra,
                                reconstruct_extra: recon,
                                retry_extra: backoff,
                                failed: false,
                                corrupted: false,
                            };
                        }
                    }
                    // Multi-word damage (or a stale PCC word): bounded
                    // retry with exponential backoff, then fail upward.
                    attempt += 1;
                    if attempt > budget {
                        self.stats.reads_failed += 1;
                        return ReadResolution {
                            extra,
                            reconstruct_extra: recon,
                            retry_extra: backoff,
                            failed: true,
                            corrupted: false,
                        };
                    }
                    self.checker.retry(bank, now, attempt, budget);
                    self.stats.fault_retries += 1;
                    extra += Duration(plan.retry_delay(attempt - 1));
                    backoff += Duration(plan.retry_delay(attempt - 1));
                }
            }
        }
    }

    /// Draws the wear outcome for a completed line write: with a plan
    /// installed, an unlucky write burns out one cell of the line, which
    /// stays frozen at its current value from now on.
    pub fn plant_wear_fault(&mut self, bank: BankId, row: RowAddr, col: ColAddr, now: Cycle) {
        let Some(plan) = self.faults.as_mut() else {
            return;
        };
        let _span = pcmap_prof::span(pcmap_prof::SpanId::FaultInject);
        if let Some(bit) = plan.on_word_write() {
            let word = plan.pick(pcmap_types::WORDS_PER_LINE as u64) as usize;
            self.rank.storage_mut().stick_bit(bank, row, col, word, bit);
            self.stats.faults_injected += 1;
            self.stats.faults_stuck_cells += 1;
            plan.record_fault(now);
        }
    }

    /// Draws a chip fault for an array operation on `set` whose base
    /// reservation `[start, expected_end)` has already been placed, and
    /// applies its timing consequences:
    ///
    /// - `Slow` extends one victim chip's occupancy and delays the
    ///   operation's data-ready time by the same amount;
    /// - `StuckBusy` hangs the victim past its window; the per-rank
    ///   watchdog force-frees it at `expected_end + deadline`.
    ///
    /// Returns the (possibly extended) data-ready time. Inert without a
    /// fault plan; an extension that would collide with an existing
    /// reservation is skipped rather than double-booking the chip.
    pub fn apply_chip_fault(
        &mut self,
        bank: BankId,
        set: ChipSet,
        start: Cycle,
        expected_end: Cycle,
    ) -> Cycle {
        let Some(plan) = self.faults.as_mut() else {
            return expected_end;
        };
        let _span = pcmap_prof::span(pcmap_prof::SpanId::FaultInject);
        let outcome = plan.on_chip_op();
        if matches!(outcome, ChipFault::None) {
            return expected_end;
        }
        let idx = plan.pick(set.count() as u64) as usize;
        let victim = set.chips().nth(idx).expect("index below set count");
        let mut vset = ChipSet::empty();
        vset.insert_chip(victim);
        match outcome {
            ChipFault::None => expected_end,
            ChipFault::Slow(extra_cycles) => {
                let slow_end = expected_end + Duration(extra_cycles);
                if !self
                    .rank
                    .timing()
                    .set_free_during(bank, vset, expected_end, slow_end)
                {
                    return expected_end;
                }
                self.rank
                    .timing_mut()
                    .reserve(bank, vset, expected_end, slow_end);
                self.stats.faults_injected += 1;
                self.stats.faults_chip_slow += 1;
                plan.record_fault(start);
                slow_end
            }
            ChipFault::StuckBusy => {
                let deadline = plan.watchdog_deadline();
                let fire_at = expected_end + Duration(deadline);
                // The hang would outlive even the watchdog if nothing
                // tripped it; the force-free at `fire_at` truncates it.
                let hang_end = fire_at + Duration(deadline.max(1));
                if !self
                    .rank
                    .timing()
                    .set_free_during(bank, vset, expected_end, hang_end)
                {
                    return expected_end;
                }
                self.rank
                    .timing_mut()
                    .reserve(bank, vset, expected_end, hang_end);
                self.watchdogs.push(PendingWatchdog {
                    bank,
                    chip: victim,
                    expected_end,
                    fire_at,
                    deadline,
                });
                self.stats.faults_injected += 1;
                self.stats.faults_chip_stuck += 1;
                plan.record_fault(start);
                // The chip delivered its data before hanging — only its
                // occupancy, not this operation's latency, is affected.
                expected_end
            }
        }
    }

    /// Fires every due watchdog: checks the deadline invariant, force-frees
    /// the hung chip, and counts the trip.
    pub fn service_watchdogs(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.watchdogs.len() {
            let w = self.watchdogs[i];
            if w.fire_at <= now {
                self.checker
                    .watchdog(w.bank, w.fire_at, w.expected_end, w.deadline);
                self.rank.timing_mut().force_free(w.bank, w.chip, w.fire_at);
                self.stats.watchdog_trips += 1;
                self.watchdogs.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Copies the fault plan's degradation counters into the statistics
    /// (called once per `step` so snapshots stay current).
    pub fn sync_fault_stats(&mut self, now: Cycle) {
        if let Some(plan) = self.faults.as_ref() {
            let d = plan.degrade();
            self.stats.degraded_enters = d.enters();
            self.stats.degraded_exits = d.exits();
            self.stats.degraded_cycles = d.degraded_cycles(now);
        }
    }
}

/// The paper's baseline PCM memory controller.
#[derive(Debug)]
pub struct BaselineController {
    core: CtrlCore,
}

impl BaselineController {
    /// Creates a baseline controller for one channel.
    pub fn new(org: MemOrg, t: TimingParams, q: QueueParams, seed: u64) -> Self {
        Self {
            core: CtrlCore::new(org, t, q, seed),
        }
    }
}

impl Controller for BaselineController {
    fn enqueue_read(
        &mut self,
        req: MemRequest,
        now: Cycle,
    ) -> Result<Option<Completion>, MemRequest> {
        self.core.enqueue_read_common(req, now)
    }

    fn enqueue_write(&mut self, req: MemRequest, _now: Cycle) -> Result<(), MemRequest> {
        self.core.enqueue_write_common(req)
    }

    fn step(&mut self, now: Cycle) -> Vec<Completion> {
        if !self.core.step_due(now) {
            // Not due yet: a step here is defined to be a no-op, which is
            // what lets the event engine skip it entirely.
            return Vec::new();
        }
        let _span = pcmap_prof::span(pcmap_prof::SpanId::CtrlStep);
        let mut out = Vec::new();
        let banks = self.core.org.banks;
        self.core.service_watchdogs(now);
        let mut tagged_parked = false;
        loop {
            let mut issued = false;
            self.core.begin_pass();
            // Refresh per-bank drain states before scheduling.
            for b in 0..banks {
                self.core.update_drain(BankId(b), now);
            }
            // Reads first (their banks must not be draining).
            if let Some(id) = self.core.pick_coarse_read(now) {
                out.push(self.core.issue_coarse_read(id, now));
                issued = true;
            }
            // Writes: while the bus is turned around (any drain active)
            // every bank may drain, and opportunistically after a
            // read-idle window.
            let bus_write_mode = self.core.any_draining() || self.core.read_idle(now);
            for b in 0..banks {
                let bank = BankId(b);
                if bus_write_mode {
                    if let Some(id) = self.core.pick_baseline_write(bank, now) {
                        out.push(self.core.issue_baseline_write(id, now));
                        issued = true;
                    }
                } else if self.core.lifetrace.enabled() && !tagged_parked {
                    // Writes parked behind read priority: attribute the
                    // wait once per step, not once per inner iteration.
                    for req in self.core.write_qs[bank.index()].iter() {
                        self.core.lifetrace.blocked(
                            req.id.0,
                            now,
                            WaitCause::ReadPriority,
                            Some(Resource::bank(bank)),
                        );
                    }
                }
            }
            tagged_parked = true;
            if !issued {
                break;
            }
        }
        self.core.stats.irlp.settle(now);
        self.core.rank.timing_mut().prune(now);
        self.core.sync_fault_stats(now);
        self.core.compute_wake(now);
        out
    }

    fn next_tick(&self) -> Option<Cycle> {
        self.core.wake
    }

    fn read_q_len(&self) -> usize {
        self.core.read_q.len()
    }

    fn write_q_len(&self) -> usize {
        self.core.write_q_len_total()
    }

    fn write_q_capacity(&self) -> usize {
        self.core.write_qs[0].capacity()
    }

    fn stats(&self) -> &CtrlStats {
        &self.core.stats
    }

    fn rank(&self) -> &PcmRank {
        &self.core.rank
    }

    fn rank_mut(&mut self) -> &mut PcmRank {
        &mut self.core.rank
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn set_trace(&mut self, enabled: bool) {
        self.core.events.set_enabled(enabled);
    }

    fn lifetrace(&self) -> &LifecycleTracer {
        &self.core.lifetrace
    }

    fn set_lifetrace(&mut self, enabled: bool) {
        self.core.lifetrace.set_enabled(enabled);
    }

    fn settle(&mut self, now: Cycle) {
        self.core.stats.irlp.settle(now);
    }

    fn drains_started(&self) -> u64 {
        self.core.drains_started_total()
    }

    fn invariants_checked(&self) -> u64 {
        self.core.checker.checked()
    }

    fn invariant_violations(&self) -> u64 {
        self.core.checker.violation_count()
    }

    fn note_rollback(&mut self, at: Cycle, via_row: bool, had_deferred: bool) {
        // The baseline never serves speculative (RoW) reads, so any
        // rollback report is a violation by construction.
        self.core
            .checker
            .rollback(BankId(0), at, via_row, had_deferred);
    }

    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.core.faults = plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::{CacheLine, CoreId, PhysAddr};

    fn ctrl() -> BaselineController {
        BaselineController::new(
            MemOrg::tiny(),
            TimingParams::paper_default(),
            QueueParams::paper_default(),
            7,
        )
    }

    fn read_req(id: u64, addr: u64, now: Cycle) -> MemRequest {
        let org = MemOrg::tiny();
        let a = PhysAddr::new(addr);
        MemRequest {
            id: ReqId(id),
            kind: ReqKind::Read,
            line: a.line(),
            loc: org.decode(a),
            core: CoreId(0),
            arrival: now,
        }
    }

    fn write_req(
        c: &BaselineController,
        id: u64,
        addr: u64,
        words: &[usize],
        now: Cycle,
    ) -> MemRequest {
        let org = MemOrg::tiny();
        let a = PhysAddr::new(addr);
        let loc = org.decode(a);
        let old = c.rank().read_line(loc.bank, loc.row, loc.col).data;
        let mut data = old;
        for &w in words {
            data.set_word(w, !old.word(w));
        }
        MemRequest {
            id: ReqId(id),
            kind: ReqKind::Write { data },
            line: a.line(),
            loc,
            core: CoreId(0),
            arrival: now,
        }
    }

    #[test]
    fn lone_read_completes_with_miss_latency() {
        let mut c = ctrl();
        c.enqueue_read(read_req(1, 0, Cycle(0)), Cycle(0)).unwrap();
        let done = c.step(Cycle(0));
        assert_eq!(done.len(), 1);
        let t = TimingParams::paper_default();
        // miss: array_read + t_cl, then burst on the bus.
        assert_eq!(done[0].done, Cycle(t.array_read + t.t_cl + t.burst));
        assert!(done[0].is_read);
    }

    #[test]
    fn second_read_to_same_row_hits() {
        let mut c = ctrl();
        c.enqueue_read(read_req(1, 0, Cycle(0)), Cycle(0)).unwrap();
        let first = c.step(Cycle(0))[0].done;
        // Same row, next line over (tiny org: same bank/row for addr 0 and 512).
        let req = read_req(2, 0, Cycle(first.0));
        c.enqueue_read(req, first).unwrap();
        let second = c.step(first);
        let t = TimingParams::paper_default();
        assert_eq!(second[0].done.since(first), Duration(t.t_cl + t.burst));
    }

    #[test]
    fn read_blocked_by_ongoing_write_is_counted_delayed() {
        let mut c = ctrl();
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        // No reads pending → opportunistic write issues at 0.
        let wd = c.step(Cycle(0));
        assert_eq!(wd.len(), 1);
        assert!(!wd[0].is_read);
        let write_done = wd[0].done;
        // A read to the same bank arrives mid-write.
        c.enqueue_read(read_req(2, 64, Cycle(5)), Cycle(5)).unwrap();
        assert!(c.step(Cycle(5)).is_empty(), "bank busy: read must wait");
        let wake = c.next_wake(Cycle(5)).unwrap();
        assert!(wake <= write_done);
        let done = c.step(write_done);
        assert_eq!(done.len(), 1);
        assert!(done[0].done > write_done);
        assert_eq!(c.stats().reads_delayed_by_write, 1);
        assert_eq!(c.stats().delayed_read_fraction(), 1.0);
    }

    #[test]
    fn write_essential_histogram_records_diff() {
        let mut c = ctrl();
        let w = write_req(&c, 1, 0, &[1, 4, 6], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        assert_eq!(c.stats().essential_histogram[3], 1);
        assert_eq!(c.stats().silent_writes, 0);
    }

    #[test]
    fn silent_write_detected() {
        let mut c = ctrl();
        let org = MemOrg::tiny();
        let a = PhysAddr::new(0);
        let loc = org.decode(a);
        let old = c.rank().read_line(loc.bank, loc.row, loc.col).data;
        let req = MemRequest {
            id: ReqId(1),
            kind: ReqKind::Write { data: old },
            line: a.line(),
            loc,
            core: CoreId(0),
            arrival: Cycle(0),
        };
        c.enqueue_write(req, Cycle(0)).unwrap();
        c.step(Cycle(0));
        assert_eq!(c.stats().silent_writes, 1);
        assert_eq!(c.stats().essential_histogram[0], 1);
    }

    #[test]
    fn forwarding_from_write_queue() {
        let mut c = ctrl();
        let w = write_req(&c, 1, 0, &[2], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        // Read to the same line forwards instantly (no step needed).
        let fwd = c.enqueue_read(read_req(2, 0, Cycle(1)), Cycle(1)).unwrap();
        let comp = fwd.expect("must forward");
        assert!(comp.forwarded);
        assert_eq!(comp.done, Cycle(1) + FORWARD_LATENCY);
        assert_eq!(c.stats().reads_forwarded, 1);
        assert_eq!(c.read_q_len(), 0);
    }

    #[test]
    fn drain_starts_at_high_watermark_and_blocks_reads() {
        let mut c = ctrl();
        // Fill write queue past high watermark (26 of 32).
        for i in 0..26 {
            let w = write_req(&c, i, i * 4096, &[0], Cycle(0));
            c.enqueue_write(w, Cycle(0)).unwrap();
        }
        c.enqueue_read(read_req(100, 64, Cycle(0)), Cycle(0))
            .unwrap();
        let comps = c.step(Cycle(0));
        // During drain, writes issue (to both banks) but the read must not.
        assert!(
            comps.iter().all(|x| !x.is_read),
            "reads blocked during drain"
        );
        assert!(!comps.is_empty());
    }

    #[test]
    fn irlp_of_baseline_single_word_write_is_one() {
        let mut c = ctrl();
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        c.settle(Cycle::MAX);
        let samples = c.stats().irlp.samples();
        assert_eq!(samples.len(), 1);
        // One essential chip busy ~86% of the window (transfer preamble).
        assert!(
            samples[0] > 0.5 && samples[0] <= 1.0,
            "irlp = {}",
            samples[0]
        );
    }

    #[test]
    fn read_queue_full_returns_request() {
        let mut c = ctrl();
        // Occupy the bank so reads stay queued.
        let w = write_req(&c, 900, 0, &[0], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        let mut rejected = 0;
        for i in 0..20 {
            let r = read_req(i, 64 + i * 4096, Cycle(1));
            if c.enqueue_read(r, Cycle(1)).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0);
        assert_eq!(c.read_q_len(), QueueParams::paper_default().read_q);
    }

    #[test]
    fn event_log_captures_read_lifecycle() {
        let mut c = ctrl();
        c.set_trace(true);
        c.enqueue_read(read_req(1, 0, Cycle(0)), Cycle(0)).unwrap();
        let done = c.step(Cycle(0))[0].done;
        let kinds: Vec<&EventKind> = c.events().events().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Arrival { is_write: false }));
        assert!(matches!(kinds[1], EventKind::Issue { is_write: false }));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, EventKind::ChipOccupy { .. })));
        match kinds.last().unwrap() {
            EventKind::Complete {
                is_write: false,
                latency,
            } => {
                assert_eq!(*latency, done.since(Cycle(0)));
            }
            other => panic!("last event should be Complete, got {other:?}"),
        }
    }

    #[test]
    fn chip_trace_view_reproduces_occupancy() {
        let mut c = ctrl();
        c.set_trace(true);
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        let trace = pcmap_obs::ChipTrace::from_events(c.events());
        assert!(trace.events().iter().any(|e| e.label.starts_with("Wr-")));
        // The gantt glyph is the label's last character: '1' for "Wr-1".
        let gantt = trace.render_gantt(BankId(0), 8);
        assert!(
            gantt
                .lines()
                .any(|l| l.starts_with("ch3") && l.contains('1')),
            "gantt:\n{gantt}"
        );
    }

    #[test]
    fn disabled_event_log_stays_empty() {
        let mut c = ctrl();
        c.enqueue_read(read_req(1, 0, Cycle(0)), Cycle(0)).unwrap();
        c.step(Cycle(0));
        assert!(c.events().is_empty());
    }

    #[test]
    fn drain_transitions_are_logged() {
        let mut c = ctrl();
        c.set_trace(true);
        for i in 0..26 {
            let w = write_req(&c, i, i * 4096, &[0], Cycle(0));
            c.enqueue_write(w, Cycle(0)).unwrap();
        }
        c.step(Cycle(0));
        assert!(c
            .events()
            .events()
            .any(|e| matches!(e.kind, EventKind::DrainStart { backlog } if backlog > 0)));
    }

    #[test]
    fn functional_write_really_lands_in_storage() {
        let mut c = ctrl();
        let org = MemOrg::tiny();
        let a = PhysAddr::new(0);
        let loc = org.decode(a);
        let mut data = c.rank().read_line(loc.bank, loc.row, loc.col).data;
        data.set_word(0, 0x1234);
        let req = MemRequest {
            id: ReqId(1),
            kind: ReqKind::Write { data },
            line: a.line(),
            loc,
            core: CoreId(0),
            arrival: Cycle(0),
        };
        c.enqueue_write(req, Cycle(0)).unwrap();
        c.step(Cycle(0));
        assert_eq!(c.rank().read_line(loc.bank, loc.row, loc.col).data, data);
        let _ = CacheLine::zeroed();
    }
}
