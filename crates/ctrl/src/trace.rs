//! Optional chip-occupancy tracing for timeline (Gantt) rendering.
//!
//! Used to regenerate Figure 5 of the paper: a chip × time diagram of which
//! chip serves which request when. Tracing is off by default; enable it for
//! short demonstration runs only (it records every chip reservation).

use pcmap_types::{BankId, ChipId, Cycle};

/// One chip reservation, labeled for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Bank the operation targeted.
    pub bank: BankId,
    /// Chip occupied.
    pub chip: ChipId,
    /// Occupation interval start.
    pub start: Cycle,
    /// Occupation interval end.
    pub end: Cycle,
    /// Display label, e.g. `"Wr-A"`, `"Rd-B"`, `"Upd-PCC-A"`.
    pub label: String,
}

/// Recorder for chip reservations.
#[derive(Debug, Clone, Default)]
pub struct ChipTrace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl ChipTrace {
    /// Creates a disabled trace (recording is a no-op).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Self { enabled: true, events: Vec::new() }
    }

    /// Returns `true` if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a reservation if enabled.
    pub fn record(&mut self, bank: BankId, chip: ChipId, start: Cycle, end: Cycle, label: &str) {
        if self.enabled {
            self.events.push(TraceEvent { bank, chip, start, end, label: label.to_owned() });
        }
    }

    /// All recorded events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders an ASCII Gantt chart for `bank`, one row per chip, using
    /// `cycles_per_cell` cycles per character cell.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_cell` is zero.
    pub fn render_gantt(&self, bank: BankId, cycles_per_cell: u64) -> String {
        assert!(cycles_per_cell > 0, "cycles_per_cell must be positive");
        let evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.bank == bank).collect();
        let horizon = evs.iter().map(|e| e.end.0).max().unwrap_or(0);
        let width = (horizon.div_ceil(cycles_per_cell)) as usize;
        let mut out = String::new();
        for chip in 0..ChipId::TOTAL_CHIPS {
            let name = match chip {
                8 => "ECC ".to_owned(),
                9 => "PCC ".to_owned(),
                n => format!("ch{n}  "),
            };
            let mut row = vec!['.'; width];
            for e in evs.iter().filter(|e| e.chip.index() == chip) {
                let from = (e.start.0 / cycles_per_cell) as usize;
                let to = ((e.end.0.div_ceil(cycles_per_cell)) as usize).min(width);
                let glyph = e.label.chars().last().unwrap_or('#');
                for cell in row.iter_mut().take(to).skip(from) {
                    *cell = glyph;
                }
            }
            out.push_str(&name);
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = ChipTrace::disabled();
        t.record(BankId(0), ChipId(0), Cycle(0), Cycle(10), "Wr-A");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = ChipTrace::enabled();
        t.record(BankId(0), ChipId(3), Cycle(0), Cycle(10), "Wr-A");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].chip, ChipId(3));
    }

    #[test]
    fn gantt_renders_rows_for_all_ten_chips() {
        let mut t = ChipTrace::enabled();
        t.record(BankId(0), ChipId(3), Cycle(0), Cycle(8), "Wr-A");
        t.record(BankId(0), ChipId(8), Cycle(0), Cycle(8), "Upd-E");
        let g = t.render_gantt(BankId(0), 4);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines[3].contains("AA"));
        assert!(lines[8].starts_with("ECC"));
        assert!(lines[8].contains("EE"));
        // Other bank filtered out.
        let empty = t.render_gantt(BankId(1), 4);
        assert!(!empty.contains('A'));
    }
}
