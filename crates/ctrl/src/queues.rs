//! Read/write request queues and the write-drain policy.
//!
//! The controller buffers writes (they are off the critical path) and
//! prioritizes reads until the write queue fills past the α = 80 % high
//! watermark; it then *drains* writes until the low watermark is reached
//! (§II-B of the paper). The hysteresis lives in [`DrainPolicy`].

use crate::request::{MemRequest, ReqId};
use pcmap_types::QueueParams;

/// A bounded FIFO request queue that supports out-of-order removal
/// (FR-FCFS picks by row-hit status, not strictly head-of-line).
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    entries: Vec<MemRequest>,
    capacity: usize,
}

impl RequestQueue {
    /// Creates a queue bounded at `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Attempts to append a request.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full (by value, so the
    /// caller can retry without cloning).
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        if self.entries.len() >= self.capacity {
            return Err(req);
        }
        self.entries.push(req);
        Ok(())
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if no more requests fit.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over queued requests in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &MemRequest> {
        self.entries.iter()
    }

    /// Removes and returns the request with `id`.
    pub fn remove(&mut self, id: ReqId) -> Option<MemRequest> {
        let pos = self.entries.iter().position(|r| r.id == id)?;
        Some(self.entries.remove(pos))
    }

    /// Finds the oldest request satisfying `pred`.
    pub fn oldest_where<F: Fn(&MemRequest) -> bool>(&self, pred: F) -> Option<&MemRequest> {
        self.entries.iter().find(|r| pred(r))
    }

    /// The newest write to `line`, if any — used for read forwarding.
    pub fn newest_to_line(&self, line: pcmap_types::LineAddr) -> Option<&MemRequest> {
        self.entries.iter().rev().find(|r| r.line == line)
    }
}

/// Write-drain hysteresis: `Normal` (serve reads) ⇄ `Draining` (serve
/// writes) with high/low watermarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainState {
    /// Reads have priority; writes issue only opportunistically.
    Normal,
    /// The bus has turned around; writes drain until the low watermark.
    Draining,
}

/// The drain policy state machine.
#[derive(Debug, Clone)]
pub struct DrainPolicy {
    state: DrainState,
    high: usize,
    low: usize,
    drains_started: u64,
}

impl DrainPolicy {
    /// Builds the policy from queue parameters.
    pub fn new(params: &QueueParams) -> Self {
        Self {
            state: DrainState::Normal,
            high: params.high_entries(),
            low: params.low_entries(),
            drains_started: 0,
        }
    }

    /// Updates the state machine given the current write-queue length and
    /// returns the (possibly new) state.
    pub fn update(&mut self, write_q_len: usize) -> DrainState {
        match self.state {
            DrainState::Normal if write_q_len >= self.high => {
                self.state = DrainState::Draining;
                self.drains_started += 1;
            }
            DrainState::Draining if write_q_len <= self.low => {
                self.state = DrainState::Normal;
            }
            _ => {}
        }
        self.state
    }

    /// Current state without updating.
    pub fn state(&self) -> DrainState {
        self.state
    }

    /// How many drain episodes have started.
    pub fn drains_started(&self) -> u64 {
        self.drains_started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqId, ReqKind};
    use pcmap_types::{CoreId, Cycle, MemOrg, PhysAddr};

    fn req(id: u64, addr: u64) -> MemRequest {
        let org = MemOrg::tiny();
        let a = PhysAddr::new(addr);
        MemRequest {
            id: ReqId(id),
            kind: ReqKind::Read,
            line: a.line(),
            loc: org.decode(a),
            core: CoreId(0),
            arrival: Cycle(id),
        }
    }

    #[test]
    fn push_until_full() {
        let mut q = RequestQueue::new(2);
        assert!(q.push(req(1, 0)).is_ok());
        assert!(q.push(req(2, 64)).is_ok());
        assert!(q.is_full());
        let rejected = q.push(req(3, 128));
        assert_eq!(rejected.unwrap_err().id, ReqId(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_out_of_order() {
        let mut q = RequestQueue::new(4);
        q.push(req(1, 0)).unwrap();
        q.push(req(2, 64)).unwrap();
        q.push(req(3, 128)).unwrap();
        assert_eq!(q.remove(ReqId(2)).unwrap().id, ReqId(2));
        assert_eq!(q.len(), 2);
        assert!(q.remove(ReqId(2)).is_none());
        // FIFO order preserved for the rest.
        let ids: Vec<_> = q.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn oldest_where_respects_arrival_order() {
        let mut q = RequestQueue::new(4);
        q.push(req(1, 0)).unwrap();
        q.push(req(2, 64)).unwrap();
        let r = q.oldest_where(|r| r.id.0 > 1).unwrap();
        assert_eq!(r.id, ReqId(2));
    }

    #[test]
    fn newest_to_line_finds_latest_write() {
        let mut q = RequestQueue::new(4);
        q.push(req(1, 0)).unwrap();
        q.push(req(2, 0)).unwrap(); // same line as id 1
        q.push(req(3, 64)).unwrap();
        assert_eq!(
            q.newest_to_line(PhysAddr::new(0).line()).unwrap().id,
            ReqId(2)
        );
        assert!(q.newest_to_line(PhysAddr::new(4096).line()).is_none());
    }

    #[test]
    fn drain_hysteresis() {
        let params = QueueParams {
            read_q: 8,
            write_q: 10,
            drain_high: 0.8,
            drain_low: 0.2,
        };
        let mut p = DrainPolicy::new(&params);
        assert_eq!(p.state(), DrainState::Normal);
        assert_eq!(p.update(7), DrainState::Normal);
        assert_eq!(p.update(8), DrainState::Draining); // hits high = 8
        assert_eq!(p.update(5), DrainState::Draining); // hysteresis: stays
        assert_eq!(p.update(2), DrainState::Normal); // low = 2
        assert_eq!(p.drains_started(), 1);
    }
}
