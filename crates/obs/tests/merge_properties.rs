//! Cross-snapshot merge properties: accumulating one metric stream through
//! N per-channel registries and merging their snapshots must equal
//! accumulating the whole stream in a single registry — in any merge
//! order. This is what lets the simulator report rank-wide totals from
//! four independent channel controllers.

use pcmap_obs::{GaugeRule, MetricRegistry, MetricsSnapshot, Value};
use proptest::prelude::*;

/// Feeds `samples` into one registry, maintaining the same counters,
/// histogram, and gauges a channel controller would.
fn accumulate(samples: &[u64]) -> MetricsSnapshot {
    let mut r = MetricRegistry::new();
    let n = r.counter("n");
    let sum = r.counter("sum");
    let lat = r.histogram("lat");
    let max = r.gauge("max", GaugeRule::Max);
    let total = r.gauge("total", GaugeRule::Sum);
    for &v in samples {
        r.inc(n);
        r.add(sum, v);
        r.observe(lat, v);
    }
    r.set_gauge(max, samples.iter().copied().max().unwrap_or(0) as f64);
    r.set_gauge(total, samples.iter().map(|&v| v as f64).sum());
    let mut s = r.snapshot();
    s.set_gauge(
        "min",
        GaugeRule::Min,
        samples.iter().copied().min().unwrap_or(u64::MAX) as f64,
    );
    s
}

proptest! {
    #[test]
    fn prop_sharded_merge_equals_single_stream(
        vs in proptest::collection::vec(1u64..1_000_000, 1..200),
        shards in 1usize..6,
    ) {
        // Deal the stream round-robin across `shards` channels.
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
        for (i, &v) in vs.iter().enumerate() {
            per_shard[i % shards].push(v);
        }
        let snaps: Vec<MetricsSnapshot> = per_shard
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| accumulate(s))
            .collect();
        let whole = accumulate(&vs);

        let mut forward = MetricsSnapshot::new();
        for s in &snaps {
            forward.merge(s);
        }
        prop_assert_eq!(&forward, &whole);

        // Merge order must not matter.
        let mut backward = MetricsSnapshot::new();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&backward, &whole);
    }

    /// Commutativity: merging per-channel shards in *any* order — not just
    /// forward/backward, but an arbitrary permutation — yields the same
    /// snapshot. The parallel sweep pool relies on this: workers complete
    /// in nondeterministic order, yet the merged totals must not move.
    #[test]
    fn prop_merge_is_commutative_over_shuffled_shards(
        vs in proptest::collection::vec(1u64..1_000_000, 1..160),
        keys in proptest::collection::vec(0u64..u64::MAX, 8..9),
        shards in 2usize..8,
    ) {
        let chunk = vs.len().div_ceil(shards).max(1);
        let snaps: Vec<MetricsSnapshot> = vs.chunks(chunk).map(accumulate).collect();

        // The shim has no shuffle strategy; derive a permutation by
        // sorting shard indices under generated sort keys.
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        order.sort_by_key(|&i| (keys[i % keys.len()], i));

        let mut in_order = MetricsSnapshot::new();
        for s in &snaps {
            in_order.merge(s);
        }
        let mut shuffled = MetricsSnapshot::new();
        for &i in &order {
            shuffled.merge(&snaps[i]);
        }
        prop_assert_eq!(&shuffled, &in_order);
        prop_assert_eq!(&in_order, &accumulate(&vs));
    }

    /// Associativity: the stream re-chunked at any granularity — and the
    /// chunk snapshots merged in any tree shape — equals the single-stream
    /// snapshot. This is what makes an epoch-merged parallel run agree
    /// with a serial one regardless of how work was partitioned.
    #[test]
    fn prop_merge_is_associative_under_rechunking(
        vs in proptest::collection::vec(1u64..1_000_000, 3..160),
        a in 1usize..10,
        b in 1usize..10,
    ) {
        let whole = accumulate(&vs);
        let fold_chunks = |size: usize| {
            let mut acc = MetricsSnapshot::new();
            for c in vs.chunks(size) {
                acc.merge(&accumulate(c));
            }
            acc
        };
        prop_assert_eq!(&fold_chunks(a), &whole);
        prop_assert_eq!(&fold_chunks(b), &whole);

        // Tree shapes: ((s0 ⊔ s1) ⊔ s2) == (s0 ⊔ (s1 ⊔ s2)).
        let snaps: Vec<MetricsSnapshot> = vs.chunks(a).map(accumulate).collect();
        if snaps.len() >= 3 {
            let mut left = snaps[0].clone();
            left.merge(&snaps[1]);
            left.merge(&snaps[2]);
            let mut tail = snaps[1].clone();
            tail.merge(&snaps[2]);
            let mut right = snaps[0].clone();
            right.merge(&tail);
            prop_assert_eq!(&left, &right);
        }
    }

    #[test]
    fn prop_snapshot_json_round_trips(vs in proptest::collection::vec(1u64..1_000_000, 1..100)) {
        let snap = accumulate(&vs);
        let text = snap.to_json().to_json_string();
        let parsed = pcmap_obs::json::parse(&text).expect("snapshot JSON parses");
        for (name, v) in snap.counters() {
            prop_assert_eq!(
                parsed.get("counters").and_then(|c| c.get(name)),
                Some(&Value::U64(v))
            );
        }
        for (name, v) in snap.gauges() {
            prop_assert_eq!(
                parsed.get("gauges").and_then(|g| g.get(name)),
                Some(&Value::F64(v))
            );
        }
        let hist = parsed.get("histograms").and_then(|h| h.get("lat")).expect("lat histogram");
        prop_assert_eq!(hist.get("count"), Some(&Value::U64(vs.len() as u64)));
    }
}
