//! Cross-snapshot merge properties: accumulating one metric stream through
//! N per-channel registries and merging their snapshots must equal
//! accumulating the whole stream in a single registry — in any merge
//! order. This is what lets the simulator report rank-wide totals from
//! four independent channel controllers.

use pcmap_obs::{GaugeRule, MetricRegistry, MetricsSnapshot, Value};
use proptest::prelude::*;

/// Feeds `samples` into one registry, maintaining the same counters,
/// histogram, and gauges a channel controller would.
fn accumulate(samples: &[u64]) -> MetricsSnapshot {
    let mut r = MetricRegistry::new();
    let n = r.counter("n");
    let sum = r.counter("sum");
    let lat = r.histogram("lat");
    let max = r.gauge("max", GaugeRule::Max);
    let total = r.gauge("total", GaugeRule::Sum);
    for &v in samples {
        r.inc(n);
        r.add(sum, v);
        r.observe(lat, v);
    }
    r.set_gauge(max, samples.iter().copied().max().unwrap_or(0) as f64);
    r.set_gauge(total, samples.iter().map(|&v| v as f64).sum());
    let mut s = r.snapshot();
    s.set_gauge(
        "min",
        GaugeRule::Min,
        samples.iter().copied().min().unwrap_or(u64::MAX) as f64,
    );
    s
}

proptest! {
    #[test]
    fn prop_sharded_merge_equals_single_stream(
        vs in proptest::collection::vec(1u64..1_000_000, 1..200),
        shards in 1usize..6,
    ) {
        // Deal the stream round-robin across `shards` channels.
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
        for (i, &v) in vs.iter().enumerate() {
            per_shard[i % shards].push(v);
        }
        let snaps: Vec<MetricsSnapshot> = per_shard
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| accumulate(s))
            .collect();
        let whole = accumulate(&vs);

        let mut forward = MetricsSnapshot::new();
        for s in &snaps {
            forward.merge(s);
        }
        prop_assert_eq!(&forward, &whole);

        // Merge order must not matter.
        let mut backward = MetricsSnapshot::new();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&backward, &whole);
    }

    #[test]
    fn prop_snapshot_json_round_trips(vs in proptest::collection::vec(1u64..1_000_000, 1..100)) {
        let snap = accumulate(&vs);
        let text = snap.to_json().to_json_string();
        let parsed = pcmap_obs::json::parse(&text).expect("snapshot JSON parses");
        for (name, v) in snap.counters() {
            prop_assert_eq!(
                parsed.get("counters").and_then(|c| c.get(name)),
                Some(&Value::U64(v))
            );
        }
        for (name, v) in snap.gauges() {
            prop_assert_eq!(
                parsed.get("gauges").and_then(|g| g.get(name)),
                Some(&Value::F64(v))
            );
        }
        let hist = parsed.get("histograms").and_then(|h| h.get("lat")).expect("lat histogram");
        prop_assert_eq!(hist.get("count"), Some(&Value::U64(vs.len() as u64)));
    }
}
