//! Bounded-memory latency distribution tracking.
//!
//! Effective read latency is the paper's Figure 10 metric; means hide the
//! tail that drains create, so the controller also keeps a log-scaled
//! histogram cheap enough to run on every request (64 buckets, ~¼-decade
//! resolution), from which percentiles are interpolated.
//!
//! This type originated in `pcmap-ctrl` and moved here so every layer (and
//! the metric registry) can share one percentile implementation;
//! `pcmap_ctrl::LatencyHistogram` re-exports it.

use crate::json::Value;

/// A log₂-bucketed latency histogram with 4 sub-buckets per octave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_seen: u64,
}

/// Sub-buckets per octave.
pub const SUB: u64 = 4;
/// Total bucket count.
pub const BUCKETS: usize = 64;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            max_seen: 0,
        }
    }

    /// The bucket index `value` falls into (may exceed `BUCKETS - 1` for
    /// huge values; `record` clamps).
    pub fn bucket_of(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as u64;
        let sub = (value >> (octave - 2)) & (SUB - 1);
        (((octave - 1) * SUB) + sub) as usize
    }

    /// Lower bound of `bucket`'s value range.
    pub fn bucket_floor(bucket: usize) -> u64 {
        let b = bucket as u64;
        if b < SUB {
            return b;
        }
        let octave = b / SUB + 1;
        let sub = b % SUB;
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Records one latency sample (in cycles).
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_of(value).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max_seen = self.max_seen.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest sample seen.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// The approximate `p`-th percentile (0 < p ≤ 100); 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(i).min(self.max_seen);
            }
        }
        self.max_seen
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
    }

    /// A JSON object summarizing the distribution: count, max, p50/p95/p99,
    /// and the non-empty buckets.
    pub fn to_json(&self) -> Value {
        let mut obj = Value::obj();
        obj.set("count", Value::U64(self.total));
        obj.set("max", Value::U64(self.max_seen));
        if self.total > 0 {
            obj.set("p50", Value::U64(self.percentile(50.0)));
            obj.set("p95", Value::U64(self.percentile(95.0)));
            obj.set("p99", Value::U64(self.percentile(99.0)));
        }
        obj.set(
            "buckets",
            Value::Arr(
                self.buckets()
                    .map(|(floor, count)| Value::Arr(vec![Value::U64(floor), Value::U64(count)]))
                    .collect(),
            ),
        );
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(37);
        }
        for p in [1.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!((32..=37).contains(&v), "p{p} = {v}");
        }
        assert_eq!(h.max(), 37);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 100, 500, 1000, 5000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max());
    }

    #[test]
    fn tail_is_visible() {
        // 99 fast samples and one very slow one: p50 small, p100 ~ max.
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(30);
        }
        h.record(10_000);
        assert!(h.percentile(50.0) <= 30);
        assert!(h.percentile(100.0) >= 8_192);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(100.0) >= 768);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn rejects_bad_percentile() {
        LatencyHistogram::new().percentile(0.0);
    }

    #[test]
    fn bucket_edges_first_octaves_are_exact() {
        // Values below SUB are their own buckets: percentile is exact.
        for v in 0..SUB {
            assert_eq!(LatencyHistogram::bucket_of(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_edges_power_of_two_boundaries() {
        // At every octave boundary the value must start a fresh bucket whose
        // floor is itself, and value-1 must land in the previous bucket.
        for shift in 2..62u64 {
            let v = 1u64 << shift;
            let b = LatencyHistogram::bucket_of(v);
            assert_eq!(LatencyHistogram::bucket_floor(b), v, "floor at 2^{shift}");
            let prev = LatencyHistogram::bucket_of(v - 1);
            assert_eq!(prev + 1, b, "2^{shift}-1 is in the preceding bucket");
        }
    }

    #[test]
    fn bucket_edges_sub_bucket_boundaries() {
        // Within an octave, each of the 4 sub-buckets starts exactly at
        // floor + k * octave/4.
        for shift in 2..30u64 {
            let base = 1u64 << shift;
            let step = base / SUB;
            for k in 0..SUB {
                let edge = base + k * step;
                let b = LatencyHistogram::bucket_of(edge);
                assert_eq!(LatencyHistogram::bucket_floor(b), edge);
                if k > 0 {
                    assert_eq!(LatencyHistogram::bucket_of(edge - 1) + 1, b);
                }
            }
        }
    }

    #[test]
    fn percentile_at_bucket_edge_returns_edge_floor() {
        let mut h = LatencyHistogram::new();
        // 100 samples exactly at a sub-bucket edge: every percentile is the
        // edge itself (floor == value == max).
        for _ in 0..100 {
            h.record(1280); // 1024 + 1*256: sub-bucket edge of octave 10
        }
        for p in [1.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 1280);
        }
    }

    #[test]
    fn percentile_clamps_to_max_within_final_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1281); // just past the edge: bucket floor 1280 < max 1281
        assert_eq!(h.percentile(100.0), 1280);
        h.record(1500); // same bucket region, larger max
        assert!(h.percentile(100.0) <= 1500);
    }

    #[test]
    fn huge_values_clamp_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        // The sample lands in the last bucket; its reported percentile is
        // that bucket's floor, never above the observed maximum.
        let p100 = h.percentile(100.0);
        assert!(p100 > 0 && p100 <= h.max());
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn json_summary_has_percentiles_and_buckets() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 10, 500] {
            h.record(v);
        }
        let j = h.to_json();
        assert_eq!(j.get("count"), Some(&Value::U64(3)));
        assert!(j.get("p50").is_some());
        match j.get("buckets") {
            Some(Value::Arr(b)) => assert_eq!(b.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    proptest! {
        #[test]
        fn prop_bucket_floor_is_sound(v in 0u64..1_000_000) {
            // Every value lands in a bucket whose floor does not exceed it
            // and whose next bucket's floor exceeds it (within range).
            let b = LatencyHistogram::bucket_of(v).min(BUCKETS - 1);
            prop_assert!(LatencyHistogram::bucket_floor(b) <= v);
            if b + 1 < BUCKETS {
                prop_assert!(LatencyHistogram::bucket_floor(b + 1) > v,
                    "v={v} b={b} next_floor={}", LatencyHistogram::bucket_floor(b + 1));
            }
        }

        #[test]
        fn prop_percentile_within_range(mut vs in proptest::collection::vec(1u64..100_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &v in &vs {
                h.record(v);
            }
            vs.sort_unstable();
            let p50 = h.percentile(50.0);
            // Within a factor of the bucket resolution of the true median.
            let true_median = vs[(vs.len() - 1) / 2];
            prop_assert!(p50 <= true_median.max(1) * 2 && p50 * 2 >= true_median / 2,
                "p50={p50} true={true_median}");
        }

        #[test]
        fn prop_merge_equals_single_stream(vs in proptest::collection::vec(1u64..1_000_000, 1..100), split in 0usize..100) {
            let cut = split.min(vs.len());
            let mut left = LatencyHistogram::new();
            let mut right = LatencyHistogram::new();
            let mut whole = LatencyHistogram::new();
            for (i, &v) in vs.iter().enumerate() {
                if i < cut { left.record(v) } else { right.record(v) }
                whole.record(v);
            }
            left.merge(&right);
            prop_assert_eq!(left, whole);
        }
    }
}
