//! Minimal RFC-4180-style CSV writing (and a parser for round-trip tests).

/// Escapes one field: quoted iff it contains a comma, quote, or newline.
pub fn escape_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

/// Renders one CSV row (no trailing newline).
pub fn format_row<S: AsRef<str>>(fields: &[S]) -> String {
    fields
        .iter()
        .map(|f| escape_field(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a header plus rows as a CSV document (with trailing newline).
pub fn format_table<S: AsRef<str>, R: AsRef<[String]>>(headers: &[S], rows: &[R]) -> String {
    let mut out = format_row(headers);
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row.as_ref()));
        out.push('\n');
    }
    out
}

/// Parses a CSV document back into rows of fields (used by round-trip
/// tests; handles quoted fields and embedded newlines).
pub fn parse(input: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                c => field.push(c),
            }
        }
    }
    if saw_any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        assert_eq!(format_row(&["a", "b", "c"]), "a,b,c");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(
            format_row(&["a,b", "c\"d", "e\nf"]),
            "\"a,b\",\"c\"\"d\",\"e\nf\""
        );
    }

    #[test]
    fn round_trip() {
        let rows = vec![
            vec!["plain".to_owned(), "with,comma".to_owned()],
            vec!["with \"quotes\"".to_owned(), "multi\nline".to_owned()],
        ];
        let text = format_table(&["h1", "h2"], &rows);
        let parsed = parse(&text);
        assert_eq!(parsed[0], vec!["h1", "h2"]);
        assert_eq!(parsed[1..], rows[..]);
    }

    #[test]
    fn empty_input_has_no_rows() {
        assert!(parse("").is_empty());
    }
}
