//! Structured request-lifecycle events: the sink trait and the bounded
//! ring-buffer implementation.
//!
//! Every stage a request passes through in a controller — arrival, queueing,
//! issue, per-chip occupancy, RoW parity reconstruction, deferred
//! verification, completion or rollback, and drain-mode transitions — is one
//! [`Event`] in a shared stream. Consumers derive views from the stream
//! instead of owning bespoke recorders; the Figure 5 chip-timeline
//! ([`ChipTrace`](crate::trace::ChipTrace)) is one such consumer.
//!
//! Recording is off by default and a disabled sink rejects events before
//! any allocation, so always-on code paths pay one branch.

use pcmap_types::{BankId, ChipId, Cycle, Duration};
use std::collections::VecDeque;

/// What happened at one lifecycle stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A request entered the controller's queues.
    Arrival {
        /// `true` for writes, `false` for reads.
        is_write: bool,
    },
    /// A read was answered from the write queue without touching PCM.
    Forwarded,
    /// A request left a queue and started on the chips.
    Issue {
        /// `true` for writes, `false` for reads.
        is_write: bool,
    },
    /// One chip is busy on behalf of the request from `Event::at` to `end`.
    ChipOccupy {
        /// The chip reserved.
        chip: ChipId,
        /// Reservation end (start is the event timestamp).
        end: Cycle,
        /// Display label, e.g. `"Wr-3"`, `"Rd-7"`, `"Upd-P"`.
        label: String,
    },
    /// A read served by RoW: the busy chip's word was rebuilt from parity.
    RowReconstruct {
        /// The chip whose word was reconstructed.
        missing: ChipId,
    },
    /// A read issued with ECC verification deferred to a later idle slot.
    DeferredVerify,
    /// The request finished.
    Complete {
        /// `true` for writes, `false` for reads.
        is_write: bool,
        /// Arrival-to-completion service time.
        latency: Duration,
    },
    /// A deferred verification failed and the consuming core squashed.
    Rollback,
    /// The controller entered write-drain mode.
    DrainStart {
        /// Write-queue backlog that triggered the drain.
        backlog: usize,
    },
    /// The controller left write-drain mode.
    DrainEnd,
}

/// One timestamped lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When it happened (memory cycles).
    pub at: Cycle,
    /// Request id within the controller (`u64::MAX` for events not tied to
    /// one request, e.g. drain transitions).
    pub req: u64,
    /// Bank the request targets.
    pub bank: BankId,
    /// The stage.
    pub kind: EventKind,
}

/// Request id used for controller-level events not tied to a request.
pub const NO_REQ: u64 = u64::MAX;

/// Anything that can consume lifecycle events.
pub trait EventSink {
    /// Whether events are currently being consumed. Producers may (and the
    /// controllers do) skip building labels when this is `false`.
    fn is_enabled(&self) -> bool;

    /// Consumes one event.
    fn record(&mut self, event: Event);
}

/// A bounded in-memory event ring: the default [`EventSink`].
///
/// When full, the oldest event is dropped and counted, so enabling tracing
/// on a long run degrades to a sliding window instead of growing without
/// bound.
#[derive(Debug, Clone)]
pub struct EventLog {
    enabled: bool,
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

/// Default ring capacity (events), enough for the Figure 5 demonstrations
/// and short diagnostic runs.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Default for EventLog {
    fn default() -> Self {
        Self::disabled()
    }
}

impl EventLog {
    /// A disabled log: `record` is a no-op and nothing allocates.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: DEFAULT_CAPACITY,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// An enabled log with the default capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled log holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        Self {
            enabled: true,
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Turns recording on or off (existing events are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Convenience: records a chip reservation if enabled (the hot-path
    /// shape the controllers use; the label closure only runs when
    /// recording).
    #[inline]
    pub fn chip_occupy(
        &mut self,
        req: u64,
        bank: BankId,
        chip: ChipId,
        start: Cycle,
        end: Cycle,
        label: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.record(Event {
                at: start,
                req,
                bank,
                kind: EventKind::ChipOccupy {
                    chip,
                    end,
                    label: label(),
                },
            });
        }
    }
}

impl EventSink for EventLog {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn record(&mut self, event: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind) -> Event {
        Event {
            at: Cycle(at),
            req: 1,
            bank: BankId(0),
            kind,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.record(ev(0, EventKind::Forwarded));
        log.chip_occupy(
            1,
            BankId(0),
            ChipId(0),
            Cycle(0),
            Cycle(8),
            || unreachable!(),
        );
        assert!(log.is_empty());
        assert!(!log.is_enabled());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn enabled_log_keeps_order() {
        let mut log = EventLog::enabled();
        log.record(ev(5, EventKind::Arrival { is_write: false }));
        log.record(ev(9, EventKind::Issue { is_write: false }));
        let ats: Vec<u64> = log.events().map(|e| e.at.0).collect();
        assert_eq!(ats, vec![5, 9]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5u64 {
            log.record(ev(i, EventKind::Forwarded));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.events().next().unwrap().at, Cycle(2));
    }

    #[test]
    fn chip_occupy_builds_label_lazily() {
        let mut log = EventLog::enabled();
        log.chip_occupy(7, BankId(1), ChipId(3), Cycle(10), Cycle(18), || {
            "Wr-7".to_owned()
        });
        let e = log.events().next().unwrap();
        assert_eq!(e.req, 7);
        match &e.kind {
            EventKind::ChipOccupy { chip, end, label } => {
                assert_eq!(*chip, ChipId(3));
                assert_eq!(*end, Cycle(18));
                assert_eq!(label, "Wr-7");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn toggling_enabled_keeps_history() {
        let mut log = EventLog::enabled();
        log.record(ev(1, EventKind::Forwarded));
        log.set_enabled(false);
        log.record(ev(2, EventKind::Forwarded));
        assert_eq!(log.len(), 1);
        log.set_enabled(true);
        log.record(ev(3, EventKind::Forwarded));
        assert_eq!(log.len(), 2);
    }
}
