//! Unified telemetry for the PCMap simulator.
//!
//! Every figure and table in the paper is an observability claim — IRLP,
//! read-latency percentiles, rollback rates, chip-occupancy timelines —
//! so this crate makes those first-class instead of scattering ad-hoc
//! recorders through the stack:
//!
//! - [`metric`] — a registry with typed counter/gauge/histogram handles,
//!   near-zero-cost when disabled, and [`MetricsSnapshot`]s that merge
//!   across the four channels' controllers.
//! - [`event`] — the request-lifecycle event stream (arrival → queue →
//!   issue → chip occupancy → RoW reconstruction / deferred verify →
//!   completion or rollback) behind the [`EventSink`] trait, with the
//!   bounded [`EventLog`] ring buffer as the default sink.
//! - [`trace`] — the Figure 5 chip-timeline Gantt view, derived from the
//!   event stream.
//! - [`hist`] — the log-bucketed [`LatencyHistogram`] (p50/p95/p99),
//!   shared by controllers and reports.
//! - [`series`] — windowed throughput / IRLP time-series.
//! - [`stall`] — stall-attribution breakdown reconciling the controller
//!   counters.
//! - [`tenant`] — dense per-tenant outcome/SLO rows for the serve tier,
//!   merging commutatively across shards with bounded top-K export
//!   (DESIGN.md §16).
//! - [`lifecycle`] — per-request causal timelines: every simulated cycle
//!   of a traced request attributed to a [`lifecycle::WaitCause`] or
//!   service phase, with a conservation invariant and a critical-path
//!   reducer (DESIGN.md §13).
//! - [`json`] / [`csv`] / [`export`] — machine-readable exporters used by
//!   the bench binaries to write `results/*.json` and `results/*.csv`.
//!
//! The crate is dependency-light by design: `std` plus `pcmap-types` only.

#![warn(missing_docs)]

pub mod csv;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod lifecycle;
pub mod metric;
pub mod series;
pub mod stall;
pub mod tenant;
pub mod trace;

pub use event::{Event, EventKind, EventLog, EventSink, NO_REQ};
pub use hist::LatencyHistogram;
pub use json::Value;
pub use lifecycle::{
    CausalSummary, LifecycleReport, LifecycleTracer, Phase, RecoveryKind, ReqTimeline, Resource,
    Segment, WaitCause,
};
pub use metric::{CounterId, GaugeId, GaugeRule, HistogramId, MetricRegistry, MetricsSnapshot};
pub use series::{Window, WindowedSeries};
pub use stall::StallBreakdown;
pub use tenant::{TenantStats, TenantTable};
pub use trace::{ChipTrace, TraceEvent};
