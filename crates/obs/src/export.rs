//! File exporters: write JSON documents and CSV tables under `results/`.

use crate::json::Value;
use std::io;
use std::path::Path;

/// Writes `value` as pretty-printed JSON to `path`, creating parent
/// directories as needed.
pub fn write_json(path: impl AsRef<Path>, value: &Value) -> io::Result<()> {
    write_text(path, &value.to_json_pretty())
}

/// Writes already-rendered text (e.g. a CSV document) to `path`, creating
/// parent directories as needed.
pub fn write_text(path: impl AsRef<Path>, text: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_into_fresh_directory() {
        let dir = std::env::temp_dir().join(format!("pcmap-obs-test-{}", std::process::id()));
        let path = dir.join("nested/out.json");
        let mut v = Value::obj();
        v.set("ok", Value::Bool(true));
        write_json(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::json::parse(&text).unwrap(), v);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
