//! A small JSON document model with a writer and a strict parser.
//!
//! The build environment cannot fetch `serde`, so exporters build
//! [`Value`] trees by hand and render them with [`Value::to_json_string`].
//! Objects preserve insertion order (readable diffs in `results/*.json`);
//! the parser exists so round-trip tests and downstream tooling can read
//! exports back without external crates.

use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers distinguish `U64`/`I64` (exact) from `F64` so counters survive a
/// round trip bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (rendered without decimal point).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (rendered via Rust's shortest round-trip representation;
    /// NaN and infinities render as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Value) {
        match self {
            Value::Obj(entries) => {
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_owned(), value));
                }
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Compact JSON serialization.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same f64 — valid JSON for finite values.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (strict: one value, trailing whitespace only).
///
/// Integral numbers without sign/exponent/fraction parse as [`Value::U64`]
/// (or [`Value::I64`] when negative); everything else numeric is
/// [`Value::F64`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // writer (it never emits them); reject cleanly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Value::Null.to_json_string(), "null");
        assert_eq!(Value::Bool(true).to_json_string(), "true");
        assert_eq!(Value::U64(42).to_json_string(), "42");
        assert_eq!(Value::I64(-7).to_json_string(), "-7");
        assert_eq!(Value::F64(0.5).to_json_string(), "0.5");
        assert_eq!(Value::F64(f64::NAN).to_json_string(), "null");
        assert_eq!(Value::Str("a\"b\n".into()).to_json_string(), r#""a\"b\n""#);
    }

    #[test]
    fn object_preserves_order_and_replaces() {
        let mut o = Value::obj();
        o.set("z", Value::U64(1));
        o.set("a", Value::U64(2));
        o.set("z", Value::U64(3));
        assert_eq!(o.to_json_string(), r#"{"z":3,"a":2}"#);
    }

    #[test]
    fn parses_what_it_writes() {
        let mut o = Value::obj();
        o.set("count", Value::U64(u64::MAX));
        o.set("neg", Value::I64(-12));
        o.set("ratio", Value::F64(0.1234567890123));
        o.set("name", Value::Str("p50/µs \"quoted\"".into()));
        o.set("list", Value::Arr(vec![Value::Bool(false), Value::Null]));
        o.set("nested", {
            let mut n = Value::obj();
            n.set("empty_arr", Value::Arr(vec![]));
            n.set("empty_obj", Value::obj());
            n
        });
        for text in [o.to_json_string(), o.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), o, "round-trip of {text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn parses_control_escapes() {
        assert_eq!(parse(r#""A\t""#).unwrap(), Value::Str("A\t".into()));
    }

    #[test]
    fn number_variants() {
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse("2.5e3").unwrap(), Value::F64(2500.0));
    }
}
