//! Request lifecycle tracing: per-request, per-cycle causal attribution.
//!
//! The aggregate counters ([`crate::stall::StallBreakdown`]) say how many
//! scheduling attempts were blocked; this module says *where every cycle
//! of every traced request went*. Each traced request carries a timeline
//! of contiguous [`Segment`]s — queued, blocked on a diagnosed
//! [`WaitCause`] (with the concrete blocking resource), Status-poll
//! pricing, chip service, and the recovery ladder — that **exactly
//! partitions** `retire − arrival`. The partition is the conservation
//! invariant: it is enforced at finalize time (debug assert + a violation
//! counter surfaced in reports, `ProtocolChecker`-style) and re-checked
//! from the exported structures by the `pcmap_explain --smoke` CI gate.
//!
//! Like [`crate::event::EventLog`], the tracer is disabled by default and
//! near-free when off (one branch per hook). Completed timelines are kept
//! up to a capacity; overflow increments [`LifecycleTracer::dropped`]
//! instead of growing without bound, and the drop counter is surfaced in
//! `RunReport` JSON so silent truncation cannot masquerade as coverage.
//!
//! Determinism: recording happens in the controller's own step order and
//! all aggregation uses `BTreeMap`, so the tracer's output is a pure,
//! input-order-deterministic function of the simulated schedule — byte-
//! identical at any `--jobs N` — and tracing never feeds back into the
//! simulation (see DESIGN.md §13).

use crate::json::Value;
use pcmap_types::{BankId, ChipId, Cycle};
use std::collections::BTreeMap;

/// Default cap on retained completed timelines (per channel).
pub const DEFAULT_TIMELINE_CAPACITY: usize = 1 << 16;

/// Hard cap on segments per request; beyond it new intervals merge into
/// the last segment (conservation stays exact, attribution coarsens).
pub const MAX_SEGMENTS_PER_REQUEST: usize = 1 << 12;

/// Why a scheduling attempt could not issue the request — the structured
/// cause taxonomy of DESIGN.md §13. Read causes and write causes share
/// the enum; [`LifecycleTracer`] tallies them per direction so each
/// controller counter reconciles exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitCause {
    /// Target chips busy under an in-flight write (no overlap possible).
    WriteInFlight,
    /// A write-drain episode owns the bus/bank.
    Drain,
    /// The line's PCC chip is busy (RoW reconstruction read, or a write's
    /// step-2 parity update).
    PccBusy,
    /// Two or more data chips busy: RoW can rebuild at most one word.
    MultiBusy,
    /// The line's ECC chip is busy (write step 1).
    EccBusy,
    /// Essential data chips busy: WoW found no disjoint chip set.
    WowSetConflict,
    /// Recovery retry backoff after an uncorrectable read.
    RetryBackoff,
    /// Rank demoted to coarse scheduling; speculation denied.
    RankDemoted,
    /// Write parked because reads currently have bus priority.
    ReadPriority,
}

impl WaitCause {
    /// Stable label used in JSON/CSV exports and reconciliation tests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WaitCause::WriteInFlight => "write_in_flight",
            WaitCause::Drain => "drain",
            WaitCause::PccBusy => "pcc_busy",
            WaitCause::MultiBusy => "multi_busy",
            WaitCause::EccBusy => "ecc_busy",
            WaitCause::WowSetConflict => "wow_set_conflict",
            WaitCause::RetryBackoff => "retry_backoff",
            WaitCause::RankDemoted => "rank_demoted",
            WaitCause::ReadPriority => "read_priority",
        }
    }
}

/// Recovery-ladder interval kinds (attribution of `resolve_read` extras).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryKind {
    /// PCC erasure reconstruction of an uncorrectable word.
    Reconstruct,
    /// A bounded recovery retry (backoff included).
    Retry,
}

/// The concrete resource a blocked attempt waited on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Resource {
    /// Bank holding the contended chips.
    pub bank: BankId,
    /// The specific blocking chip, when the scheduler diagnosed one.
    pub chip: Option<ChipId>,
    /// The blocking request's id, when known (e.g. the in-flight write).
    pub blocker: Option<u64>,
}

impl Resource {
    /// A bank-only resource (no chip diagnosed).
    #[must_use]
    pub fn bank(bank: BankId) -> Self {
        Self {
            bank,
            chip: None,
            blocker: None,
        }
    }

    /// A bank + chip resource.
    #[must_use]
    pub fn chip(bank: BankId, chip: ChipId) -> Self {
        Self {
            bank,
            chip: Some(chip),
            blocker: None,
        }
    }

    /// Attaches the blocking request id.
    #[must_use]
    pub fn blocked_by(mut self, req: u64) -> Self {
        self.blocker = Some(req);
        self
    }

    /// Stable resource key for per-resource attribution
    /// (`"bank3"` / `"bank3/chip9"`).
    #[must_use]
    pub fn key(&self) -> String {
        match self.chip {
            Some(c) => format!("bank{}/chip{}", self.bank.0, c.0),
            None => format!("bank{}", self.bank.0),
        }
    }
}

/// What a timeline interval was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Queued with no blocked attempt diagnosed yet.
    Queued,
    /// Waiting behind the diagnosed cause since the last attempt.
    Blocked(WaitCause),
    /// Status-poll pricing between the issue decision and chip start.
    StatusPoll,
    /// On the chips (transfer + array access, through data-ready).
    Service,
    /// Recovery-ladder extension after the base service window.
    Recovery(RecoveryKind),
}

impl Phase {
    /// Stable label used in JSON exports and attribution buckets.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Blocked(c) => c.label(),
            Phase::StatusPoll => "status_poll",
            Phase::Service => "service",
            Phase::Recovery(RecoveryKind::Reconstruct) => "recovery_reconstruct",
            Phase::Recovery(RecoveryKind::Retry) => "recovery_retry",
        }
    }
}

/// One half-open interval `[start, end)` of a request's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// What the interval was spent on.
    pub phase: Phase,
    /// Interval start (inclusive).
    pub start: Cycle,
    /// Interval end (exclusive).
    pub end: Cycle,
    /// The blocking resource, for `Blocked` intervals where diagnosed.
    pub resource: Option<Resource>,
}

impl Segment {
    /// Interval length in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.end.0.saturating_sub(self.start.0)
    }
}

/// A completed request's full causal timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqTimeline {
    /// Request id.
    pub req: u64,
    /// `true` for writes.
    pub is_write: bool,
    /// Served inline from a write queue (forwarding fast path).
    pub forwarded: bool,
    /// The request exhausted its recovery budget and failed upward.
    pub failed: bool,
    /// Arrival at the controller.
    pub arrival: Cycle,
    /// Retirement (data-ready for reads, program completion for writes).
    pub retire: Cycle,
    /// Contiguous segments exactly partitioning `[arrival, retire)`.
    pub segments: Vec<Segment>,
    /// Per-chip service windows from the reservation commit point
    /// (annotations — overlapping, not part of the partition).
    pub chip_service: Vec<(ChipId, Cycle, Cycle)>,
    /// Deferred-verify window, when the read retired before its SECDED
    /// check (may end after `retire`; annotation, not partition).
    pub verify: Option<(Cycle, Cycle)>,
}

impl ReqTimeline {
    /// Total latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.retire.0.saturating_sub(self.arrival.0)
    }

    /// The conservation invariant: segments are contiguous from `arrival`
    /// to `retire` and their lengths sum to exactly `latency()`.
    #[must_use]
    pub fn conserves(&self) -> bool {
        let mut cursor = self.arrival;
        for s in &self.segments {
            if s.start != cursor || s.end < s.start {
                return false;
            }
            cursor = s.end;
        }
        cursor == self.retire
            && self.segments.iter().map(Segment::cycles).sum::<u64>() == self.latency()
    }

    /// JSON rendering of the full timeline.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("req", Value::U64(self.req));
        o.set(
            "kind",
            Value::Str(if self.is_write { "write" } else { "read" }.to_owned()),
        );
        o.set("forwarded", Value::Bool(self.forwarded));
        o.set("failed", Value::Bool(self.failed));
        o.set("arrival", Value::U64(self.arrival.0));
        o.set("retire", Value::U64(self.retire.0));
        o.set("latency", Value::U64(self.latency()));
        o.set("conserves", Value::Bool(self.conserves()));
        let segs: Vec<Value> = self
            .segments
            .iter()
            .map(|s| {
                let mut seg = Value::obj();
                seg.set("phase", Value::Str(s.phase.label().to_owned()));
                seg.set("start", Value::U64(s.start.0));
                seg.set("end", Value::U64(s.end.0));
                if let Some(r) = &s.resource {
                    seg.set("resource", Value::Str(r.key()));
                    if let Some(b) = r.blocker {
                        seg.set("blocker", Value::U64(b));
                    }
                }
                seg
            })
            .collect();
        o.set("segments", Value::Arr(segs));
        if !self.chip_service.is_empty() {
            let chips: Vec<Value> = self
                .chip_service
                .iter()
                .map(|&(chip, s, e)| {
                    let mut c = Value::obj();
                    c.set("chip", Value::U64(u64::from(chip.0)));
                    c.set("start", Value::U64(s.0));
                    c.set("end", Value::U64(e.0));
                    c
                })
                .collect();
            o.set("chip_service", Value::Arr(chips));
        }
        if let Some((vs, ve)) = self.verify {
            let mut v = Value::obj();
            v.set("start", Value::U64(vs.0));
            v.set("end", Value::U64(ve.0));
            o.set("verify", v);
        }
        o
    }
}

/// An in-flight request being traced.
#[derive(Debug, Clone)]
struct OpenReq {
    is_write: bool,
    arrival: Cycle,
    /// Everything before `cursor` is closed into `segments`.
    cursor: Cycle,
    /// The cause governing `[cursor, next event)`, set by the latest
    /// blocked attempt; `None` means plain queue wait.
    pending: Option<(WaitCause, Option<Resource>)>,
    segments: Vec<Segment>,
    chip_service: Vec<(ChipId, Cycle, Cycle)>,
    verify: Option<(Cycle, Cycle)>,
    failed: bool,
}

impl OpenReq {
    /// Appends `[self.cursor.max(start), end)` as `phase`, coalescing
    /// with the previous segment when phase and resource match. Clamping
    /// to the cursor keeps the partition exact even when windows the
    /// controller reports overlap (split writes).
    fn push(&mut self, phase: Phase, end: Cycle, resource: Option<Resource>) {
        if end <= self.cursor {
            return;
        }
        let start = self.cursor;
        self.cursor = end;
        let coalesce = match self.segments.last() {
            Some(last) => {
                (last.phase == phase && last.resource == resource && last.end == start)
                    || self.segments.len() >= MAX_SEGMENTS_PER_REQUEST
            }
            None => false,
        };
        if coalesce {
            self.segments.last_mut().expect("non-empty").end = end;
            return;
        }
        self.segments.push(Segment {
            phase,
            start,
            end,
            resource,
        });
    }

    /// Closes the pre-event wait `[cursor, at)` under the pending cause.
    fn close_wait(&mut self, at: Cycle) {
        let phase = match self.pending {
            Some((cause, _)) => Phase::Blocked(cause),
            None => Phase::Queued,
        };
        let resource = self.pending.and_then(|(_, r)| r);
        self.push(phase, at, resource);
    }
}

/// The per-channel request lifecycle tracer (see module docs).
#[derive(Debug)]
pub struct LifecycleTracer {
    enabled: bool,
    capacity: usize,
    open: BTreeMap<u64, OpenReq>,
    done: Vec<ReqTimeline>,
    dropped: u64,
    violations: u64,
    /// Blocked-attempt tallies keyed by (cause, is_write) — kept exact
    /// (never coalesced) so each controller counter reconciles 1:1.
    attempts: BTreeMap<(WaitCause, bool), u64>,
}

impl Default for LifecycleTracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl LifecycleTracer {
    /// A tracer that records nothing until [`Self::set_enabled`].
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: DEFAULT_TIMELINE_CAPACITY,
            open: BTreeMap::new(),
            done: Vec::new(),
            dropped: 0,
            violations: 0,
            attempts: BTreeMap::new(),
        }
    }

    /// A disabled tracer with a custom completed-timeline capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Self::disabled()
        }
    }

    /// Turns recording on or off; history is kept either way.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// `true` when hooks record.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Completed timelines discarded over capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Conservation violations detected at finalize time.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Completed timelines, in completion order.
    #[must_use]
    pub fn timelines(&self) -> &[ReqTimeline] {
        &self.done
    }

    /// Blocked-attempt tally for `cause` on the read path.
    #[must_use]
    pub fn read_attempts(&self, cause: WaitCause) -> u64 {
        self.attempts.get(&(cause, false)).copied().unwrap_or(0)
    }

    /// Blocked-attempt tally for `cause` on the write path.
    #[must_use]
    pub fn write_attempts(&self, cause: WaitCause) -> u64 {
        self.attempts.get(&(cause, true)).copied().unwrap_or(0)
    }

    /// A request entered the controller.
    pub fn arrival(&mut self, req: u64, at: Cycle, is_write: bool) {
        if !self.enabled {
            return;
        }
        self.open.insert(
            req,
            OpenReq {
                is_write,
                arrival: at,
                cursor: at,
                pending: None,
                segments: Vec::new(),
                chip_service: Vec::new(),
                verify: None,
                failed: false,
            },
        );
    }

    /// A read served inline from the write queue: one-segment timeline.
    pub fn forwarded(&mut self, req: u64, at: Cycle, done: Cycle) {
        if !self.enabled {
            return;
        }
        self.retain(ReqTimeline {
            req,
            is_write: false,
            forwarded: true,
            failed: false,
            arrival: at,
            retire: done,
            segments: vec![Segment {
                phase: Phase::Service,
                start: at,
                end: done,
                resource: None,
            }],
            chip_service: Vec::new(),
            verify: None,
        });
    }

    /// A scheduling attempt at `at` found the request blocked by `cause`.
    pub fn blocked(&mut self, req: u64, at: Cycle, cause: WaitCause, resource: Option<Resource>) {
        if !self.enabled {
            return;
        }
        let Some(open) = self.open.get_mut(&req) else {
            return;
        };
        open.close_wait(at);
        open.pending = Some((cause, resource));
        *self.attempts.entry((cause, open.is_write)).or_insert(0) += 1;
    }

    /// The request issued: decision at `decided`, chips busy from `start`
    /// (Status-poll pricing fills `[decided, start)`) through `end`.
    pub fn issue(&mut self, req: u64, decided: Cycle, start: Cycle, end: Cycle) {
        if !self.enabled {
            return;
        }
        let Some(open) = self.open.get_mut(&req) else {
            return;
        };
        open.close_wait(decided);
        open.pending = None;
        open.push(Phase::StatusPoll, start, None);
        open.push(Phase::Service, end, None);
    }

    /// A recovery-ladder extension `[from, to)` after base service.
    /// Retries also tally as `RetryBackoff` blocked attempts.
    pub fn recovery(&mut self, req: u64, kind: RecoveryKind, to: Cycle) {
        if !self.enabled {
            return;
        }
        let Some(open) = self.open.get_mut(&req) else {
            return;
        };
        open.push(Phase::Recovery(kind), to, None);
        if kind == RecoveryKind::Retry {
            *self
                .attempts
                .entry((WaitCause::RetryBackoff, open.is_write))
                .or_insert(0) += 1;
        }
    }

    /// Per-chip service window from the reservation commit point.
    pub fn chip_service(&mut self, req: u64, chip: ChipId, start: Cycle, end: Cycle) {
        if !self.enabled {
            return;
        }
        if let Some(open) = self.open.get_mut(&req) {
            open.chip_service.push((chip, start, end));
        }
    }

    /// Deferred-verify window annotation.
    pub fn verify(&mut self, req: u64, start: Cycle, end: Cycle) {
        if !self.enabled {
            return;
        }
        if let Some(open) = self.open.get_mut(&req) {
            open.verify = Some((start, end));
        }
    }

    /// Marks the request as visibly failed (retry budget exhausted).
    pub fn failed(&mut self, req: u64) {
        if !self.enabled {
            return;
        }
        if let Some(open) = self.open.get_mut(&req) {
            open.failed = true;
        }
    }

    /// Finalizes the request at `retire`, enforcing conservation.
    pub fn complete(&mut self, req: u64, retire: Cycle) {
        if !self.enabled {
            return;
        }
        let Some(mut open) = self.open.remove(&req) else {
            return;
        };
        // Any uncovered tail (should not happen on a healthy schedule)
        // closes as residual queue wait so the partition stays exact.
        open.close_wait(retire);
        let t = ReqTimeline {
            req,
            is_write: open.is_write,
            forwarded: false,
            failed: open.failed,
            arrival: open.arrival,
            retire,
            segments: open.segments,
            chip_service: open.chip_service,
            verify: open.verify,
        };
        self.retain(t);
    }

    fn retain(&mut self, t: ReqTimeline) {
        if !t.conserves() {
            debug_assert!(
                false,
                "lifecycle conservation violated for req {}: {:?}",
                t.req, t
            );
            self.violations += 1;
        }
        if self.done.len() < self.capacity {
            self.done.push(t);
        } else {
            self.dropped += 1;
        }
    }
}

/// Per-cause / per-resource attributed-cycle totals — the critical-path
/// reduction of a set of timelines. All integer arithmetic; merging is
/// commutative and associative like [`crate::metric::MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CausalSummary {
    /// Cycles attributed per phase/cause label, summed over requests.
    pub attributed: BTreeMap<String, u64>,
    /// Blocked-attempt tallies per `cause/direction` label
    /// (e.g. `"pcc_busy/read"`).
    pub attempts: BTreeMap<String, u64>,
    /// Blocked cycles per concrete resource key (`"ch0/bank3/chip9"`).
    pub resources: BTreeMap<String, u64>,
    /// Completed requests reduced.
    pub requests: u64,
    /// Completed reads reduced (forwarded included).
    pub reads: u64,
    /// Σ latency over reduced read timelines.
    pub read_latency_cycles: u64,
    /// Σ latency over all reduced timelines.
    pub total_cycles: u64,
    /// Conservation violations observed by the tracer.
    pub violations: u64,
    /// Timelines dropped over the tracer's capacity.
    pub dropped: u64,
}

impl CausalSummary {
    /// Reduces one channel's tracer; `channel` prefixes resource keys.
    #[must_use]
    pub fn from_tracer(tracer: &LifecycleTracer, channel: usize) -> Self {
        let mut s = Self {
            violations: tracer.violations(),
            dropped: tracer.dropped(),
            ..Self::default()
        };
        for ((cause, is_write), &n) in &tracer.attempts {
            let dir = if *is_write { "write" } else { "read" };
            *s.attempts
                .entry(format!("{}/{dir}", cause.label()))
                .or_insert(0) += n;
        }
        for t in tracer.timelines() {
            s.requests += 1;
            s.total_cycles += t.latency();
            if !t.is_write {
                s.reads += 1;
                s.read_latency_cycles += t.latency();
            }
            for seg in &t.segments {
                *s.attributed
                    .entry(seg.phase.label().to_owned())
                    .or_insert(0) += seg.cycles();
                if let (Phase::Blocked(_), Some(r)) = (seg.phase, &seg.resource) {
                    *s.resources
                        .entry(format!("ch{channel}/{}", r.key()))
                        .or_insert(0) += seg.cycles();
                }
            }
        }
        s
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in &other.attributed {
            *self.attributed.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.attempts {
            *self.attempts.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.resources {
            *self.resources.entry(k.clone()).or_insert(0) += v;
        }
        self.requests += other.requests;
        self.reads += other.reads;
        self.read_latency_cycles += other.read_latency_cycles;
        self.total_cycles += other.total_cycles;
        self.violations += other.violations;
        self.dropped += other.dropped;
    }

    /// Attributed cycles for a phase/cause label (absent reads 0).
    #[must_use]
    pub fn cycles(&self, label: &str) -> u64 {
        self.attributed.get(label).copied().unwrap_or(0)
    }

    /// Blocked-attempt tally for a `cause/direction` label.
    #[must_use]
    pub fn attempt_count(&self, label: &str) -> u64 {
        self.attempts.get(label).copied().unwrap_or(0)
    }

    /// JSON object (cause totals, attempts, resources, conservation).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let map = |m: &BTreeMap<String, u64>| {
            let mut o = Value::obj();
            for (k, v) in m {
                o.set(k, Value::U64(*v));
            }
            o
        };
        let mut o = Value::obj();
        o.set("requests", Value::U64(self.requests));
        o.set("reads", Value::U64(self.reads));
        o.set("read_latency_cycles", Value::U64(self.read_latency_cycles));
        o.set("total_cycles", Value::U64(self.total_cycles));
        o.set("violations", Value::U64(self.violations));
        o.set("dropped", Value::U64(self.dropped));
        o.set("attributed_cycles", map(&self.attributed));
        o.set("blocked_attempts", map(&self.attempts));
        o.set("resources", map(&self.resources));
        o
    }
}

/// The gathered lifecycle view of one run: per-channel summaries, the
/// merged reduction, and every retained timeline (channel-stamped).
/// Channels are gathered in index order, so this is byte-deterministic
/// at any worker count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleReport {
    /// Per-channel reductions, in channel index order.
    pub channels: Vec<CausalSummary>,
    /// All channels merged.
    pub merged: CausalSummary,
    /// `(channel, timeline)` for every retained request.
    pub timelines: Vec<(usize, ReqTimeline)>,
}

impl LifecycleReport {
    /// Gathers tracers in channel-index order.
    #[must_use]
    pub fn gather<'t>(tracers: impl Iterator<Item = &'t LifecycleTracer>) -> Self {
        let mut r = Self::default();
        for (ch, tracer) in tracers.enumerate() {
            let s = CausalSummary::from_tracer(tracer, ch);
            r.merged.merge(&s);
            r.channels.push(s);
            r.timelines
                .extend(tracer.timelines().iter().map(|t| (ch, t.clone())));
        }
        r
    }

    /// The `k` slowest requests, deterministically ordered by
    /// (latency desc, channel, request id).
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<&(usize, ReqTimeline)> {
        let mut refs: Vec<&(usize, ReqTimeline)> = self.timelines.iter().collect();
        refs.sort_by(|a, b| {
            b.1.latency()
                .cmp(&a.1.latency())
                .then(a.0.cmp(&b.0))
                .then(a.1.req.cmp(&b.1.req))
        });
        refs.truncate(k);
        refs
    }

    /// JSON document: merged + per-channel summaries and the `top`
    /// slowest timelines (all timelines when `top` is `None`).
    #[must_use]
    pub fn to_json(&self, top: Option<usize>) -> Value {
        let mut o = Value::obj();
        o.set("merged", self.merged.to_json());
        o.set(
            "channels",
            Value::Arr(self.channels.iter().map(CausalSummary::to_json).collect()),
        );
        let picked = self.top_k(top.unwrap_or(self.timelines.len()));
        let tl: Vec<Value> = picked
            .iter()
            .map(|(ch, t)| {
                let mut v = t.to_json();
                v.set("channel", Value::U64(*ch as u64));
                v
            })
            .collect();
        o.set("timelines", Value::Arr(tl));
        o
    }

    /// CSV of the merged per-cause attribution
    /// (`cause,cycles,attempts_read,attempts_write`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cause,cycles,attempts_read,attempts_write\r\n");
        for (label, cycles) in &self.merged.attributed {
            let ar = self.merged.attempt_count(&format!("{label}/read"));
            let aw = self.merged.attempt_count(&format!("{label}/write"));
            out.push_str(&format!("{label},{cycles},{ar},{aw}\r\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced() -> LifecycleTracer {
        let mut t = LifecycleTracer::disabled();
        t.set_enabled(true);
        t
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = LifecycleTracer::disabled();
        t.arrival(1, Cycle(0), false);
        t.issue(1, Cycle(0), Cycle(0), Cycle(10));
        t.complete(1, Cycle(10));
        assert!(t.timelines().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn timeline_partitions_latency_exactly() {
        let mut t = traced();
        t.arrival(7, Cycle(100), false);
        t.blocked(
            7,
            Cycle(104),
            WaitCause::Drain,
            Some(Resource::bank(BankId(2))),
        );
        t.blocked(
            7,
            Cycle(110),
            WaitCause::Drain,
            Some(Resource::bank(BankId(2))),
        );
        t.blocked(
            7,
            Cycle(130),
            WaitCause::PccBusy,
            Some(Resource::chip(BankId(2), ChipId::PCC).blocked_by(5)),
        );
        t.issue(7, Cycle(150), Cycle(158), Cycle(500));
        t.recovery(7, RecoveryKind::Reconstruct, Cycle(620));
        t.complete(7, Cycle(620));
        let tl = &t.timelines()[0];
        assert!(tl.conserves(), "{tl:?}");
        assert_eq!(tl.latency(), 520);
        // queued [100,104), drain [104,130) coalesced, pcc [130,150),
        // poll [150,158), service [158,500), reconstruct [500,620).
        assert_eq!(tl.segments.len(), 6);
        assert_eq!(tl.segments[1].cycles(), 26);
        assert_eq!(tl.segments[1].phase, Phase::Blocked(WaitCause::Drain));
        assert_eq!(tl.segments[2].resource.unwrap().blocker, Some(5), "{tl:?}");
        assert_eq!(t.read_attempts(WaitCause::Drain), 2);
        assert_eq!(t.read_attempts(WaitCause::PccBusy), 1);
        assert_eq!(t.violations(), 0);
    }

    #[test]
    fn overlapping_windows_are_clamped_not_double_counted() {
        let mut t = traced();
        t.arrival(1, Cycle(0), true);
        // Split write: second half's window overlaps the first.
        t.issue(1, Cycle(0), Cycle(0), Cycle(100));
        t.issue(1, Cycle(60), Cycle(60), Cycle(140));
        t.complete(1, Cycle(140));
        let tl = &t.timelines()[0];
        assert!(tl.conserves(), "{tl:?}");
        assert_eq!(tl.latency(), 140);
        assert_eq!(t.violations(), 0);
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let mut t = LifecycleTracer::with_capacity(2);
        t.set_enabled(true);
        for req in 0..4 {
            t.forwarded(req, Cycle(0), Cycle(2));
        }
        assert_eq!(t.timelines().len(), 2);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn summary_reduces_and_merges() {
        let mut a = traced();
        a.arrival(1, Cycle(0), false);
        a.blocked(
            1,
            Cycle(0),
            WaitCause::WriteInFlight,
            Some(Resource::bank(BankId(0))),
        );
        a.issue(1, Cycle(10), Cycle(10), Cycle(50));
        a.complete(1, Cycle(50));
        let mut b = traced();
        b.arrival(2, Cycle(5), true);
        b.issue(2, Cycle(5), Cycle(7), Cycle(100));
        b.complete(2, Cycle(100));
        let sa = CausalSummary::from_tracer(&a, 0);
        let sb = CausalSummary::from_tracer(&b, 1);
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.requests, 2);
        assert_eq!(merged.reads, 1);
        assert_eq!(merged.read_latency_cycles, 50);
        assert_eq!(merged.total_cycles, 50 + 95);
        assert_eq!(merged.cycles("write_in_flight"), 10);
        assert_eq!(merged.cycles("service"), 40 + 93);
        assert_eq!(merged.cycles("status_poll"), 2);
        assert_eq!(merged.attempt_count("write_in_flight/read"), 1);
        assert_eq!(merged.resources.get("ch0/bank0").copied(), Some(10));
        // Merge totals equal a flat reduction: conservation at the
        // summary level.
        let sum: u64 = merged.attributed.values().sum();
        assert_eq!(sum, merged.total_cycles);
    }

    #[test]
    fn report_orders_top_k_deterministically() {
        let mut a = traced();
        a.forwarded(3, Cycle(0), Cycle(10));
        a.forwarded(1, Cycle(0), Cycle(30));
        let mut b = traced();
        b.forwarded(2, Cycle(0), Cycle(30));
        let r = LifecycleReport::gather([&a, &b].into_iter());
        let top = r.top_k(2);
        assert_eq!(top[0].1.req, 1); // latency 30, channel 0
        assert_eq!(top[1].1.req, 2); // latency 30, channel 1
        let json = r.to_json(Some(1)).to_json_string();
        crate::json::parse(&json).expect("valid JSON");
        assert!(r.to_csv().starts_with("cause,cycles"));
    }

    #[test]
    fn residual_tail_closes_as_queued_and_conserves() {
        let mut t = traced();
        t.arrival(9, Cycle(0), false);
        t.issue(9, Cycle(0), Cycle(0), Cycle(20));
        // Retire later than the recorded service end (uncovered tail).
        t.complete(9, Cycle(25));
        let tl = &t.timelines()[0];
        assert!(tl.conserves(), "{tl:?}");
        assert_eq!(tl.segments.last().unwrap().phase, Phase::Queued);
    }
}
