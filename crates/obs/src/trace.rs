//! Chip-occupancy timeline (Gantt) rendering — the Figure 5 view.
//!
//! [`ChipTrace`] used to be a bespoke recorder inside `pcmap-ctrl`; it is
//! now a *view* built from the generic event stream
//! ([`ChipTrace::from_events`]) — the controllers emit
//! [`EventKind::ChipOccupy`] events and this module merely renders them.

use crate::event::{EventKind, EventLog};
use pcmap_types::{BankId, ChipId, Cycle};

/// One chip reservation, labeled for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Bank the operation targeted.
    pub bank: BankId,
    /// Chip occupied.
    pub chip: ChipId,
    /// Occupation interval start.
    pub start: Cycle,
    /// Occupation interval end.
    pub end: Cycle,
    /// Display label, e.g. `"Wr-A"`, `"Rd-B"`, `"Upd-PCC-A"`.
    pub label: String,
}

/// Chip-reservation timeline extracted from an event stream.
#[derive(Debug, Clone, Default)]
pub struct ChipTrace {
    events: Vec<TraceEvent>,
}

impl ChipTrace {
    /// Builds the timeline from the `ChipOccupy` events in `log` (other
    /// event kinds are ignored).
    pub fn from_events(log: &EventLog) -> Self {
        let events = log
            .events()
            .filter_map(|e| match &e.kind {
                EventKind::ChipOccupy { chip, end, label } => Some(TraceEvent {
                    bank: e.bank,
                    chip: *chip,
                    start: e.at,
                    end: *end,
                    label: label.clone(),
                }),
                _ => None,
            })
            .collect();
        Self { events }
    }

    /// All reservations in stream order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders an ASCII Gantt chart for `bank`, one row per chip, using
    /// `cycles_per_cell` cycles per character cell.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_cell` is zero.
    pub fn render_gantt(&self, bank: BankId, cycles_per_cell: u64) -> String {
        assert!(cycles_per_cell > 0, "cycles_per_cell must be positive");
        let evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.bank == bank).collect();
        let horizon = evs.iter().map(|e| e.end.0).max().unwrap_or(0);
        let width = (horizon.div_ceil(cycles_per_cell)) as usize;
        let mut out = String::new();
        for chip in 0..ChipId::TOTAL_CHIPS {
            let name = match chip {
                8 => "ECC ".to_owned(),
                9 => "PCC ".to_owned(),
                n => format!("ch{n}  "),
            };
            let mut row = vec!['.'; width];
            for e in evs.iter().filter(|e| e.chip.index() == chip) {
                let from = (e.start.0 / cycles_per_cell) as usize;
                let to = ((e.end.0.div_ceil(cycles_per_cell)) as usize).min(width);
                let glyph = e.label.chars().last().unwrap_or('#');
                for cell in row.iter_mut().take(to).skip(from) {
                    *cell = glyph;
                }
            }
            out.push_str(&name);
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventSink};
    use pcmap_types::Duration;

    fn occupy(log: &mut EventLog, bank: u8, chip: u8, start: u64, end: u64, label: &str) {
        log.chip_occupy(
            0,
            BankId(bank),
            ChipId(chip),
            Cycle(start),
            Cycle(end),
            || label.to_owned(),
        );
    }

    #[test]
    fn from_events_keeps_only_chip_occupancy() {
        let mut log = EventLog::enabled();
        occupy(&mut log, 0, 3, 0, 10, "Wr-A");
        log.record(Event {
            at: Cycle(10),
            req: 0,
            bank: BankId(0),
            kind: EventKind::Complete {
                is_write: true,
                latency: Duration(10),
            },
        });
        let t = ChipTrace::from_events(&log);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].chip, ChipId(3));
    }

    #[test]
    fn gantt_renders_rows_for_all_ten_chips() {
        let mut log = EventLog::enabled();
        occupy(&mut log, 0, 3, 0, 8, "Wr-A");
        occupy(&mut log, 0, 8, 0, 8, "Upd-E");
        let t = ChipTrace::from_events(&log);
        let g = t.render_gantt(BankId(0), 4);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines[3].contains("AA"));
        assert!(lines[8].starts_with("ECC"));
        assert!(lines[8].contains("EE"));
        // Other bank filtered out.
        let empty = t.render_gantt(BankId(1), 4);
        assert!(!empty.contains('A'));
    }
}
