//! Stall attribution: why requests waited, reconciled against the
//! controller counters.

use crate::json::Value;
use crate::metric::MetricsSnapshot;

/// Where blocked cycles went, per the controller's own counters (metric
/// names from `CtrlStats::snapshot`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Reads delayed behind an in-flight write or a drain episode.
    pub write_blocked: u64,
    /// Write-drain episodes entered.
    pub drains: u64,
    /// RoW reads blocked because the line's PCC chip was busy.
    pub pcc_busy: u64,
    /// RoW reads blocked because two or more data chips were busy.
    pub multi_busy: u64,
    /// Write issues blocked on busy essential data chips.
    pub write_data_blocked: u64,
    /// Write issues blocked on the line's ECC chip.
    pub write_ecc_blocked: u64,
    /// Write issues blocked on the line's PCC chip.
    pub write_pcc_blocked: u64,
}

impl StallBreakdown {
    /// Reads the breakdown out of a snapshot (absent counters read 0, so
    /// this works for any controller kind).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        Self {
            write_blocked: snap.counter("reads_delayed_by_write"),
            drains: snap.counter("drains_started"),
            pcc_busy: snap.counter("row_blocked_pcc_busy"),
            multi_busy: snap.counter("row_blocked_multi_busy"),
            write_data_blocked: snap.counter("wr_blocked_data"),
            write_ecc_blocked: snap.counter("wr_blocked_ecc"),
            write_pcc_blocked: snap.counter("wr_blocked_pcc"),
        }
    }

    /// All blocked-attempt events summed.
    pub fn total(&self) -> u64 {
        self.write_blocked
            + self.pcc_busy
            + self.multi_busy
            + self.write_data_blocked
            + self.write_ecc_blocked
            + self.write_pcc_blocked
    }

    /// JSON object keyed by cause.
    pub fn to_json(&self) -> Value {
        let mut obj = Value::obj();
        obj.set("write_blocked", Value::U64(self.write_blocked));
        obj.set("drains", Value::U64(self.drains));
        obj.set("pcc_busy", Value::U64(self.pcc_busy));
        obj.set("multi_busy", Value::U64(self.multi_busy));
        obj.set("write_data_blocked", Value::U64(self.write_data_blocked));
        obj.set("write_ecc_blocked", Value::U64(self.write_ecc_blocked));
        obj.set("write_pcc_blocked", Value::U64(self.write_pcc_blocked));
        obj.set("total_blocked_attempts", Value::U64(self.total()));
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_counters_by_name() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("reads_delayed_by_write", 4);
        snap.set_counter("row_blocked_pcc_busy", 2);
        snap.set_counter("wr_blocked_data", 1);
        let b = StallBreakdown::from_snapshot(&snap);
        assert_eq!(b.write_blocked, 4);
        assert_eq!(b.pcc_busy, 2);
        assert_eq!(b.write_data_blocked, 1);
        assert_eq!(b.multi_busy, 0);
        assert_eq!(b.total(), 7);
    }

    #[test]
    fn json_includes_total() {
        let b = StallBreakdown {
            write_blocked: 3,
            ..Default::default()
        };
        assert_eq!(
            b.to_json().get("total_blocked_attempts"),
            Some(&Value::U64(3))
        );
    }
}
