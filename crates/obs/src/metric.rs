//! Metric registry: typed counter/gauge/histogram handles and mergeable
//! snapshots.
//!
//! Two halves:
//!
//! - [`MetricRegistry`] — a live registry a component owns. Registration
//!   returns an index-based typed handle ([`CounterId`], [`GaugeId`],
//!   [`HistogramId`]); updates through a handle are one bounds-checked
//!   array write, and every update is a no-op when the registry is
//!   disabled, so always-on code paths can carry handles at near-zero cost.
//! - [`MetricsSnapshot`] — an immutable by-name capture. Snapshots from the
//!   four channels' controllers [`merge`](MetricsSnapshot::merge) into one
//!   rank-wide view: counters add, gauges combine per their
//!   [`GaugeRule`], histograms merge bucket-wise. Merging is commutative
//!   and associative, so any grouping of per-channel snapshots equals the
//!   single-stream accumulation (property-tested in `crates/obs/tests`).

use crate::hist::LatencyHistogram;
use crate::json::Value;
use std::collections::BTreeMap;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// How a gauge combines across snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeRule {
    /// Keep the maximum.
    Max,
    /// Keep the minimum.
    Min,
    /// Add the values.
    Sum,
}

impl GaugeRule {
    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            GaugeRule::Max => a.max(b),
            GaugeRule::Min => a.min(b),
            GaugeRule::Sum => a + b,
        }
    }
}

/// A live, component-owned metric registry.
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, GaugeRule, f64)>,
    hists: Vec<(&'static str, LatencyHistogram)>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Self {
            enabled: true,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// A registry whose updates are all no-ops (registration still works,
    /// so handles stay valid either way).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new()
        }
    }

    /// Whether updates are applied.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns updates on or off without invalidating handles.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by name.
    ///
    /// # Panics
    ///
    /// Panics if the name exists with a different merge rule.
    pub fn gauge(&mut self, name: &'static str, rule: GaugeRule) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _, _)| *n == name) {
            assert_eq!(
                self.gauges[i].1, rule,
                "gauge {name} re-registered with another rule"
            );
            return GaugeId(i);
        }
        self.gauges.push((name, rule, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistogramId(i);
        }
        self.hists.push((name, LatencyHistogram::new()));
        HistogramId(self.hists.len() - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].1 += n;
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge to `v` (the merge rule applies across snapshots, not
    /// across `set` calls — last set wins locally).
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        if self.enabled {
            self.gauges[id.0].2 = v;
        }
    }

    /// Records a sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        if self.enabled {
            self.hists[id.0].1.record(v);
        }
    }

    /// Captures the current values by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (name, v) in &self.counters {
            snap.set_counter(name, *v);
        }
        for (name, rule, v) in &self.gauges {
            snap.set_gauge(name, *rule, *v);
        }
        for (name, h) in &self.hists {
            snap.set_histogram(name, h.clone());
        }
        snap
    }
}

/// An immutable by-name metric capture; the unit that merges across the
/// four channels and exports to JSON/CSV.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (GaugeRule, f64)>,
    hists: BTreeMap<String, LatencyHistogram>,
}

impl MetricsSnapshot {
    /// An empty snapshot (the identity for [`merge`](Self::merge)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets counter `name` (adds if present).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Sets gauge `name`, combining per `rule` if present.
    pub fn set_gauge(&mut self, name: &str, rule: GaugeRule, v: f64) {
        self.gauges
            .entry(name.to_owned())
            .and_modify(|(r, cur)| *cur = r.combine(*cur, v))
            .or_insert((rule, v));
    }

    /// Sets histogram `name` (merges if present).
    pub fn set_histogram(&mut self, name: &str, h: LatencyHistogram) {
        self.hists
            .entry(name.to_owned())
            .and_modify(|cur| cur.merge(&h))
            .or_insert(h);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|(_, v)| *v)
    }

    /// Histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, (_, v))| (k.as_str(), *v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.hists.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Merges `other` into `self`: counters add, gauges combine per their
    /// rule, histograms merge bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if a gauge name carries different rules in the two snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, (rule, v)) in &other.gauges {
            match self.gauges.entry(name.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let (r, cur) = e.get_mut();
                    assert_eq!(r, rule, "gauge {name} merged with mismatched rules");
                    *cur = r.combine(*cur, *v);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((*rule, *v));
                }
            }
        }
        for (name, h) in &other.hists {
            self.hists
                .entry(name.clone())
                .and_modify(|cur| cur.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// JSON object: `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    pub fn to_json(&self) -> Value {
        let mut counters = Value::obj();
        for (name, v) in &self.counters {
            counters.set(name, Value::U64(*v));
        }
        let mut gauges = Value::obj();
        for (name, (_, v)) in &self.gauges {
            gauges.set(name, Value::F64(*v));
        }
        let mut hists = Value::obj();
        for (name, h) in &self.hists {
            hists.set(name, h.to_json());
        }
        let mut obj = Value::obj();
        obj.set("counters", counters);
        obj.set("gauges", gauges);
        obj.set("histograms", hists);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_update_and_snapshot() {
        let mut r = MetricRegistry::new();
        let c = r.counter("reads");
        let g = r.gauge("wear", GaugeRule::Max);
        let h = r.histogram("latency");
        r.inc(c);
        r.add(c, 4);
        r.set_gauge(g, 1.5);
        r.observe(h, 100);
        let snap = r.snapshot();
        assert_eq!(snap.counter("reads"), 5);
        assert_eq!(snap.gauge("wear"), Some(1.5));
        assert_eq!(snap.histogram("latency").unwrap().count(), 1);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let mut r = MetricRegistry::disabled();
        let c = r.counter("reads");
        let g = r.gauge("wear", GaugeRule::Max);
        let h = r.histogram("latency");
        r.inc(c);
        r.set_gauge(g, 9.0);
        r.observe(h, 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("reads"), 0);
        assert_eq!(snap.gauge("wear"), Some(0.0));
        assert_eq!(snap.histogram("latency").unwrap().count(), 0);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = MetricRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.snapshot().counter("x"), 2);
    }

    #[test]
    fn merge_rules_apply() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("n", 2);
        a.set_gauge("max", GaugeRule::Max, 1.0);
        a.set_gauge("min", GaugeRule::Min, 1.0);
        a.set_gauge("sum", GaugeRule::Sum, 1.0);
        let mut b = MetricsSnapshot::new();
        b.set_counter("n", 3);
        b.set_gauge("max", GaugeRule::Max, 4.0);
        b.set_gauge("min", GaugeRule::Min, 4.0);
        b.set_gauge("sum", GaugeRule::Sum, 4.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.gauge("max"), Some(4.0));
        assert_eq!(a.gauge("min"), Some(1.0));
        assert_eq!(a.gauge("sum"), Some(5.0));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("n", 7);
        a.set_gauge("g", GaugeRule::Max, 2.0);
        let before = a.clone();
        a.merge(&MetricsSnapshot::new());
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "mismatched rules")]
    fn merge_rejects_rule_conflicts() {
        let mut a = MetricsSnapshot::new();
        a.set_gauge("g", GaugeRule::Max, 1.0);
        let mut b = MetricsSnapshot::new();
        b.set_gauge("g", GaugeRule::Sum, 1.0);
        a.merge(&b);
    }

    #[test]
    fn json_export_contains_all_sections() {
        let mut r = MetricRegistry::new();
        let c = r.counter("reads");
        r.inc(c);
        let j = r.snapshot().to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("reads")),
            Some(&Value::U64(1))
        );
        assert!(j.get("gauges").is_some());
        assert!(j.get("histograms").is_some());
    }
}
