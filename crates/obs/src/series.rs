//! Windowed time-series: throughput and IRLP over fixed-width cycle
//! windows.

use crate::json::Value;
use std::collections::BTreeMap;

/// Accumulates `(cycle, value)` samples into fixed-width windows and
/// reports per-window count / sum / mean.
///
/// Used for the windowed write-throughput view (one `bump` per completed
/// write) and the IRLP time-series (one `record` per write's parallelism
/// sample).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSeries {
    width: u64,
    windows: BTreeMap<u64, (u64, f64)>,
}

/// One finished window of a [`WindowedSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// First cycle covered by this window.
    pub start: u64,
    /// Samples that landed in the window.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
}

impl Window {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl WindowedSeries {
    /// A series with `width`-cycle windows.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        Self {
            width,
            windows: BTreeMap::new(),
        }
    }

    /// Window width in cycles.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Records a valued sample at `cycle`.
    pub fn record(&mut self, cycle: u64, value: f64) {
        let e = self.windows.entry(cycle / self.width).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += value;
    }

    /// Records an occurrence at `cycle` (value 1.0) — the counting form
    /// used for throughput.
    pub fn bump(&mut self, cycle: u64) {
        self.record(cycle, 1.0);
    }

    /// Non-empty windows in time order.
    pub fn windows(&self) -> impl Iterator<Item = Window> + '_ {
        self.windows.iter().map(|(&idx, &(count, sum))| Window {
            start: idx * self.width,
            count,
            sum,
        })
    }

    /// Total samples across all windows.
    pub fn total_count(&self) -> u64 {
        self.windows.values().map(|(c, _)| c).sum()
    }

    /// Merges another series into this one.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &WindowedSeries) {
        assert_eq!(self.width, other.width, "window widths differ");
        for (&idx, &(count, sum)) in &other.windows {
            let e = self.windows.entry(idx).or_insert((0, 0.0));
            e.0 += count;
            e.1 += sum;
        }
    }

    /// JSON array of `{"start", "count", "sum", "mean"}` objects.
    pub fn to_json(&self) -> Value {
        Value::Arr(
            self.windows()
                .map(|w| {
                    let mut obj = Value::obj();
                    obj.set("start", Value::U64(w.start));
                    obj.set("count", Value::U64(w.count));
                    obj.set("sum", Value::F64(w.sum));
                    obj.set("mean", Value::F64(w.mean()));
                    obj
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_windows() {
        let mut s = WindowedSeries::new(100);
        s.bump(0);
        s.bump(99);
        s.bump(100);
        s.record(250, 4.0);
        let w: Vec<Window> = s.windows().collect();
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].start, w[0].count), (0, 2));
        assert_eq!((w[1].start, w[1].count), (100, 1));
        assert_eq!((w[2].start, w[2].count, w[2].sum), (200, 1, 4.0));
        assert_eq!(s.total_count(), 4);
    }

    #[test]
    fn mean_divides_sum() {
        let mut s = WindowedSeries::new(10);
        s.record(3, 2.0);
        s.record(7, 6.0);
        let w: Vec<Window> = s.windows().collect();
        assert_eq!(w[0].mean(), 4.0);
    }

    #[test]
    fn merge_adds_windows() {
        let mut a = WindowedSeries::new(10);
        let mut b = WindowedSeries::new(10);
        a.bump(5);
        b.bump(5);
        b.bump(25);
        a.merge(&b);
        let w: Vec<Window> = a.windows().collect();
        assert_eq!(w[0].count, 2);
        assert_eq!(w[1].start, 20);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn merge_rejects_mismatched_widths() {
        WindowedSeries::new(10).merge(&WindowedSeries::new(20));
    }

    #[test]
    fn json_has_all_fields() {
        let mut s = WindowedSeries::new(10);
        s.record(1, 3.0);
        match s.to_json() {
            Value::Arr(items) => {
                assert_eq!(items[0].get("start"), Some(&Value::U64(0)));
                assert_eq!(items[0].get("mean"), Some(&Value::F64(3.0)));
            }
            other => panic!("{other:?}"),
        }
    }
}
