//! Vendored, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the *subset* of proptest's API that the workspace's property
//! tests actually use, with identical call-site syntax:
//!
//! - the [`proptest!`] macro over `#[test] fn name(args) { .. }` items,
//!   where each argument is either `pat in strategy` or `pat: Type`;
//! - integer-range strategies (`0u64..1_000_000`), [`any::<T>()`](any),
//!   and [`collection::vec`];
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: cases are generated from a
//! deterministic splitmix64 stream seeded from the test's module path and
//! name, so failures are bit-reproducible across runs and machines. The
//! number of cases per test defaults to [`test_runner::DEFAULT_CASES`] and
//! can be overridden with the `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Each `#[test] fn name(args) { body }` item expands to a normal unit test
/// that runs `body` for [`test_runner::cases()`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])+ fn $name:ident($($args:tt)*) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let mut __pt_rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __pt_case in 0..$crate::test_runner::cases() {
                    let mut __pt_case_rng = __pt_rng.fork(__pt_case);
                    $crate::__proptest_case!(__pt_case_rng, $body, $($args)*);
                }
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: binds one generated value per
/// argument, then runs the body inside a closure so [`prop_assume!`] can
/// abandon the case early.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Terminal: all arguments bound — run the body.
    ($rng:ident, $body:block $(,)?) => {
        #[allow(clippy::redundant_closure_call)]
        let _: ::core::option::Option<()> = (move || {
            $body
            ::core::option::Option::Some(())
        })();
    };
    // `mut x in strategy`
    ($rng:ident, $body:block, mut $a:ident in $s:expr $(, $($rest:tt)*)?) => {
        let mut $a = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_case!($rng, $body $(, $($rest)*)?);
    };
    // `x in strategy`
    ($rng:ident, $body:block, $a:ident in $s:expr $(, $($rest:tt)*)?) => {
        let $a = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_case!($rng, $body $(, $($rest)*)?);
    };
    // `mut x: Type`
    ($rng:ident, $body:block, mut $a:ident : $t:ty $(, $($rest:tt)*)?) => {
        let mut $a = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_case!($rng, $body $(, $($rest)*)?);
    };
    // `x: Type`
    ($rng:ident, $body:block, $a:ident : $t:ty $(, $($rest:tt)*)?) => {
        let $a = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_case!($rng, $body $(, $($rest)*)?);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}
