//! [`Arbitrary`] — "any value of this type" — and the [`any`] strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types that can produce an unconstrained random value.
///
/// Backs both `x: Type` arguments in [`proptest!`](crate::proptest) and the
/// [`any::<T>()`](any) strategy.
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy generating unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = TestRng::for_test("ab");
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_test("au");
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }
}
