//! The [`Strategy`] trait and the integer-range strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// This is the value side of proptest's `Strategy`; shrinking is not
/// implemented (cases are deterministic, so a failing input is already
/// reproducible by name).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    rng.in_range(self.start as u64, self.end as u64) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    // Shift to unsigned space so the span never overflows.
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
                }
            }
        )*
    };
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_range_in_bounds() {
        let mut rng = TestRng::for_test("s");
        let s = 5u32..9;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn signed_range_in_bounds() {
        let mut rng = TestRng::for_test("s2");
        let s = -4i32..4;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((-4..4).contains(&v));
        }
    }

    #[test]
    fn full_u64_span_does_not_panic() {
        let mut rng = TestRng::for_test("s3");
        let s = 0u64..(1 << 63);
        for _ in 0..50 {
            let _ = s.generate(&mut rng);
        }
    }
}
