//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector whose length is drawn from `len` and whose elements come from
/// `element` — mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_ranges() {
        let mut rng = TestRng::for_test("v");
        let s = vec(3u32..7, 1..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..7).contains(x)));
        }
    }
}
