//! Deterministic case generation for [`proptest!`](crate::proptest).

/// Cases per property test when `PROPTEST_CASES` is not set.
pub const DEFAULT_CASES: u64 = 96;

/// Number of cases each property test runs, honouring the standard
/// `PROPTEST_CASES` environment variable.
pub fn cases() -> u64 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(DEFAULT_CASES),
        Err(_) => DEFAULT_CASES,
    }
}

/// A splitmix64 generator seeded from the test's fully-qualified name, so
/// every run of a given test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from an arbitrary string (the test name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a well-spread 64-bit seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// An independent stream for case `n` of this test.
    pub fn fork(&self, n: u64) -> Self {
        let mut child = Self {
            state: self.state ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        // Burn one output so forks with nearby `n` decorrelate.
        child.next_u64();
        child
    }

    /// The next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range passed to a proptest strategy");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(
            lo < hi,
            "empty range {lo}..{hi} passed to a proptest strategy"
        );
        lo + self.next_below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn in_range_stays_in_range() {
        let mut r = TestRng::for_test("range");
        for _ in 0..1000 {
            let v = r.in_range(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn forks_decorrelate() {
        let base = TestRng::for_test("fork");
        assert_ne!(base.fork(0).next_u64(), base.fork(1).next_u64());
    }
}
