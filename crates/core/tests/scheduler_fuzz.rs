//! Randomized scheduler stress tests.
//!
//! These run in the dev profile so the controller's internal
//! `debug_assert!`s are armed: any double-booked chip reservation, mismatch
//! between planned and actual essential sets, or failed XOR reconstruction
//! aborts the test. The soup mixes reads, writes (including silent stores
//! and repeated lines), and queue-full conditions across banks.

use pcmap_core::{PcmapController, SystemKind};
use pcmap_ctrl::{Controller, MemRequest, ReqId, ReqKind};
use pcmap_types::{
    CacheLine, CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams, Xoshiro256,
};
use std::collections::BTreeMap;

fn soup(kind: SystemKind, seed: u64, ops: usize) {
    let org = MemOrg::tiny();
    let mut ctrl = PcmapController::new(
        kind,
        org,
        TimingParams::paper_default(),
        QueueParams::paper_default(),
        seed,
    );
    ctrl.set_overlap_reads_in_normal(seed.is_multiple_of(2));
    ctrl.set_split_writes_for_row(seed.is_multiple_of(3));
    let mut rng = Xoshiro256::new(seed);
    let mut now = Cycle(0);
    // Ground truth of the last *accepted* write per line.
    let mut truth: BTreeMap<u64, CacheLine> = BTreeMap::new();

    for next_id in 1..=ops as u64 {
        // Random arrival spacing.
        // pcmap-lint: allow(manual-time-advance, reason = "fuzz driver models request arrival times, not the engine clock")
        now = Cycle(now.0 + rng.next_below(40));
        let addr = PhysAddr::new(rng.next_below(64) * 64);
        let loc = org.decode(addr);
        let id = ReqId(next_id);

        if rng.chance(0.4) {
            // Write: flip 0..=3 random words relative to current storage.
            let stored = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
            let mut data = stored;
            for _ in 0..rng.next_below(4) {
                let w = rng.next_below(8) as usize;
                data.set_word(w, rng.next_u64());
            }
            let req = MemRequest {
                id,
                kind: ReqKind::Write { data },
                line: addr.line(),
                loc,
                core: CoreId(0),
                arrival: now,
            };
            if ctrl.enqueue_write(req, now).is_ok() {
                truth.insert(addr.line().0, data);
            }
        } else {
            let req = MemRequest {
                id,
                kind: ReqKind::Read,
                line: addr.line(),
                loc,
                core: CoreId(0),
                arrival: now,
            };
            let _ = ctrl.enqueue_read(req, now); // full queue is fine
        }
        ctrl.step(now);
    }

    // Drain completely.
    while let Some(wake) = ctrl.next_wake(now) {
        now = wake;
        ctrl.step(now);
        assert!(now.0 < 10_000_000, "scheduler failed to drain");
    }
    ctrl.settle(Cycle::MAX);

    // Storage must reflect the last accepted write of every line and the
    // check words must be consistent.
    let codec = ctrl.rank().storage().codec();
    for (line, data) in truth {
        let addr = PhysAddr::new(line * 64);
        let loc = org.decode(addr);
        let got = ctrl.rank().read_line(loc.bank, loc.row, loc.col);
        assert_eq!(got.data, data, "line {line:#x}");
        assert_eq!(got.ecc, codec.ecc_word(&got.data));
        assert_eq!(got.pcc, codec.pcc_word(&got.data));
    }

    // Accounting sanity: every write is histogrammed exactly once (split
    // writes are histogrammed at their first partial issue but complete
    // via the silent tail, so the totals still match).
    let s = ctrl.stats();
    let hist_total: u64 = s.essential_histogram.iter().sum();
    assert_eq!(
        hist_total, s.writes_done,
        "every write is histogrammed once"
    );
}

#[test]
fn soup_rwow_rde() {
    for seed in 0..6 {
        soup(SystemKind::RwowRde, seed, 400);
    }
}

#[test]
fn soup_rwow_rd() {
    for seed in 0..4 {
        soup(SystemKind::RwowRd, seed, 400);
    }
}

#[test]
fn soup_rwow_nr() {
    for seed in 0..4 {
        soup(SystemKind::RwowNr, seed, 400);
    }
}

#[test]
fn soup_row_only_and_wow_only() {
    for seed in 0..3 {
        soup(SystemKind::RowNr, seed, 300);
        soup(SystemKind::WowNr, seed, 300);
    }
}

#[test]
fn rotation_levels_wear() {
    // §IV-C2: rotating ECC/PCC balances the every-write check traffic.
    // Compare the hottest chip's share of word writes with and without
    // rotation after an identical write soup.
    let imbalance = |kind: SystemKind| -> f64 {
        let org = MemOrg::tiny();
        let mut ctrl = PcmapController::new(
            kind,
            org,
            TimingParams::paper_default(),
            QueueParams::paper_default(),
            1,
        );
        let mut rng = Xoshiro256::new(7);
        let mut now = Cycle(0);
        for k in 0..600u64 {
            // pcmap-lint: allow(manual-time-advance, reason = "fuzz driver models request arrival times, not the engine clock")
            now = Cycle(now.0 + rng.next_below(30));
            let addr = PhysAddr::new(rng.next_below(128) * 64);
            let loc = org.decode(addr);
            let stored = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
            let mut data = stored;
            data.set_word(rng.next_below(8) as usize, rng.next_u64());
            let req = MemRequest {
                id: ReqId(k + 1),
                kind: ReqKind::Write { data },
                line: addr.line(),
                loc,
                core: CoreId(0),
                arrival: now,
            };
            let _ = ctrl.enqueue_write(req, now);
            ctrl.step(now);
        }
        while let Some(wake) = ctrl.next_wake(now) {
            now = wake;
            ctrl.step(now);
            assert!(now.0 < 10_000_000);
        }
        ctrl.rank().wear().imbalance()
    };
    let fixed = imbalance(SystemKind::RwowNr);
    let rotated = imbalance(SystemKind::RwowRde);
    assert!(
        rotated < fixed,
        "rotation must level wear: rotated {rotated:.2} vs fixed {fixed:.2}"
    );
    assert!(
        rotated < 1.5,
        "rotated layout should be near-balanced: {rotated:.2}"
    );
}
