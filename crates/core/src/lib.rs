//! PCMap — the paper's contribution: boosting access parallelism to
//! PCM-based main memory (ISCA 2016).
//!
//! When a PCM write involves only a subset of a rank's chips (and most
//! write-backs dirty just 1–4 of the eight 8-byte words of a cache line),
//! the remaining chips can serve other requests. This crate implements the
//! mechanisms that unlock that parallelism:
//!
//! - [`Layout`] — address-based rotation of data words and of the ECC/PCC
//!   check words across the rank's ten chips (no bookkeeping state).
//! - [`SystemKind`] — the six evaluated systems, from `Baseline` to the
//!   full `RWoW-RDE` design.
//! - [`PcmapController`] — the scheduler: fine-grained essential-word
//!   writes, **WoW** (write-over-write consolidation) and **RoW**
//!   (read-over-write with XOR reconstruction from the PCC chip and
//!   deferred SECDED verification).
//!
//! # Example
//!
//! ```
//! use pcmap_core::{PcmapController, SystemKind};
//! use pcmap_ctrl::{Controller, MemRequest, ReqId, ReqKind};
//! use pcmap_types::{CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams};
//!
//! let org = MemOrg::tiny();
//! let mut ctrl = PcmapController::new(
//!     SystemKind::RwowRde,
//!     org,
//!     TimingParams::paper_default(),
//!     QueueParams::paper_default(),
//!     0,
//! );
//! let addr = PhysAddr::new(128);
//! let req = MemRequest {
//!     id: ReqId(1),
//!     kind: ReqKind::Read,
//!     line: addr.line(),
//!     loc: org.decode(addr),
//!     core: CoreId(0),
//!     arrival: Cycle(0),
//! };
//! ctrl.enqueue_read(req, Cycle(0)).unwrap();
//! assert_eq!(ctrl.step(Cycle(0)).len(), 1);
//! ```

#![warn(missing_docs)]
#![deny(unused_must_use)]

pub mod config;
pub mod controller;
pub mod layout;

pub use config::{RollbackMode, SystemKind};
pub use controller::PcmapController;
pub use layout::Layout;

use pcmap_ctrl::Controller;
use pcmap_types::{MemOrg, QueueParams, TimingParams};

/// Builds the right controller for `kind` (baseline or PCMap variant).
pub fn build_controller(
    kind: SystemKind,
    org: MemOrg,
    t: TimingParams,
    q: QueueParams,
    seed: u64,
) -> Box<dyn Controller> {
    if kind.is_baseline() {
        Box::new(pcmap_ctrl::BaselineController::new(org, t, q, seed))
    } else {
        Box::new(PcmapController::new(kind, org, t, q, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_controller_dispatches() {
        let org = MemOrg::tiny();
        let t = TimingParams::paper_default();
        let q = QueueParams::paper_default();
        let b = build_controller(SystemKind::Baseline, org, t, q, 0);
        assert_eq!(b.write_q_capacity(), q.write_q);
        let p = build_controller(SystemKind::RwowRde, org, t, q, 0);
        assert_eq!(p.write_q_capacity(), q.write_q);
    }
}
