//! The six evaluated system configurations (§V of the paper).

use crate::layout::Layout;
use core::fmt;

/// Which memory system to simulate.
///
/// Matches the paper's evaluation matrix exactly:
///
/// | Kind | RoW | WoW | data rotation | ECC/PCC rotation |
/// |------|-----|-----|---------------|------------------|
/// | `Baseline` | – | – | – | – |
/// | `RowNr`    | ✓ | – | – | – |
/// | `WowNr`    | – | ✓ | – | – |
/// | `RwowNr`   | ✓ | ✓ | – | – |
/// | `RwowRd`   | ✓ | ✓ | ✓ | – |
/// | `RwowRde`  | ✓ | ✓ | ✓ | ✓ |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemKind {
    /// Reads prioritized over writes; writes block the whole bank.
    Baseline,
    /// RoW only, no rotation.
    RowNr,
    /// WoW only, no rotation.
    WowNr,
    /// RoW + WoW, no rotation.
    RwowNr,
    /// RoW + WoW + data rotation.
    RwowRd,
    /// RoW + WoW + data and ECC/PCC rotation — the full PCMap design.
    RwowRde,
}

impl SystemKind {
    /// All six systems, in the paper's presentation order.
    pub fn all() -> [SystemKind; 6] {
        [
            SystemKind::Baseline,
            SystemKind::RowNr,
            SystemKind::WowNr,
            SystemKind::RwowNr,
            SystemKind::RwowRd,
            SystemKind::RwowRde,
        ]
    }

    /// The five PCMap variants (everything but the baseline).
    pub fn pcmap_variants() -> [SystemKind; 5] {
        [
            SystemKind::RowNr,
            SystemKind::WowNr,
            SystemKind::RwowNr,
            SystemKind::RwowRd,
            SystemKind::RwowRde,
        ]
    }

    /// `true` if reads may overlap single-essential-word writes via parity
    /// reconstruction.
    pub fn row_enabled(self) -> bool {
        matches!(
            self,
            SystemKind::RowNr | SystemKind::RwowNr | SystemKind::RwowRd | SystemKind::RwowRde
        )
    }

    /// `true` if writes with disjoint chip sets may overlap.
    pub fn wow_enabled(self) -> bool {
        matches!(
            self,
            SystemKind::WowNr | SystemKind::RwowNr | SystemKind::RwowRd | SystemKind::RwowRde
        )
    }

    /// The word→chip layout this system uses.
    pub fn layout(self) -> Layout {
        match self {
            SystemKind::Baseline | SystemKind::RowNr | SystemKind::WowNr | SystemKind::RwowNr => {
                Layout::fixed()
            }
            SystemKind::RwowRd => Layout::rotate_data(),
            SystemKind::RwowRde => Layout::rotate_all(),
        }
    }

    /// `true` for the baseline (non-sub-ranked) system.
    pub fn is_baseline(self) -> bool {
        self == SystemKind::Baseline
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Baseline => "Baseline",
            SystemKind::RowNr => "RoW-NR",
            SystemKind::WowNr => "WoW-NR",
            SystemKind::RwowNr => "RWoW-NR",
            SystemKind::RwowRd => "RWoW-RD",
            SystemKind::RwowRde => "RWoW-RDE",
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How RoW's deferred-verification risk is charged to the CPU (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RollbackMode {
    /// Realistic: data is actually checked; with no injected faults no
    /// rollback ever occurs ("none-faulty system").
    #[default]
    NeverFaulty,
    /// Worst-case bound: every RoW read consumed before its deferred check
    /// triggers a pipeline rollback ("faulty system").
    AlwaysFaulty,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_matches_paper() {
        use SystemKind::*;
        assert!(!Baseline.row_enabled() && !Baseline.wow_enabled());
        assert!(RowNr.row_enabled() && !RowNr.wow_enabled());
        assert!(!WowNr.row_enabled() && WowNr.wow_enabled());
        assert!(RwowNr.row_enabled() && RwowNr.wow_enabled());
        assert_eq!(RwowNr.layout(), Layout::fixed());
        assert_eq!(RwowRd.layout(), Layout::rotate_data());
        assert_eq!(RwowRde.layout(), Layout::rotate_all());
    }

    #[test]
    fn labels_and_ordering() {
        assert_eq!(SystemKind::RwowRde.label(), "RWoW-RDE");
        assert_eq!(SystemKind::all().len(), 6);
        assert_eq!(SystemKind::pcmap_variants().len(), 5);
        assert_eq!(SystemKind::Baseline.to_string(), "Baseline");
        assert!(SystemKind::Baseline < SystemKind::RwowRde);
    }

    #[test]
    fn rollback_default_is_realistic() {
        assert_eq!(RollbackMode::default(), RollbackMode::NeverFaulty);
    }
}
