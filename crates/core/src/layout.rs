//! Rotation layouts: which physical chip holds which word of a line.
//!
//! PCMap de-clusters chip contention with two address-based rotations
//! (§IV-C2 of the paper), both computable from the line address alone (no
//! bookkeeping):
//!
//! 1. **Data rotation** — word *w* of line *L* goes to data slot
//!    `(w + L) mod 8`, so the same word offset in successive lines lands on
//!    different chips (Figure 6).
//! 2. **ECC/PCC rotation** — the ten per-line words (8 data + ECC + PCC)
//!    rotate over the ten physical chips by `L mod 10`, RAID-5 style, so
//!    the every-write ECC/PCC updates are not funneled into two fixed
//!    chips.
//!
//! The layout is a bijection from the ten logical slots to the ten physical
//! chips for every line (property-tested below), so fine-grained writes,
//! reads and reconstruction always address disjoint chips exactly when
//! their logical words are disjoint.

use pcmap_types::{ChipId, ChipSet, LineAddr, WordMask};

/// A word→chip mapping policy.
///
/// # Example
///
/// ```
/// use pcmap_core::Layout;
/// use pcmap_types::{LineAddr, ChipId};
///
/// let fixed = Layout::fixed();
/// assert_eq!(fixed.chip_of_word(LineAddr(5), 3), ChipId(3));
///
/// let rde = Layout::rotate_all();
/// // Word 3 of consecutive lines lands on different chips.
/// let a = rde.chip_of_word(LineAddr(0), 3);
/// let b = rde.chip_of_word(LineAddr(1), 3);
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    rotate_data: bool,
    rotate_ecc: bool,
}

impl Layout {
    /// No rotation: word *w* → chip *w*, ECC → chip 8, PCC → chip 9
    /// (the `-NR` systems).
    pub fn fixed() -> Self {
        Self {
            rotate_data: false,
            rotate_ecc: false,
        }
    }

    /// Data rotation only (`-RD` systems).
    pub fn rotate_data() -> Self {
        Self {
            rotate_data: true,
            rotate_ecc: false,
        }
    }

    /// Data + ECC/PCC rotation (`-RDE` systems).
    pub fn rotate_all() -> Self {
        Self {
            rotate_data: true,
            rotate_ecc: true,
        }
    }

    /// Whether data words rotate across chips.
    pub fn rotates_data(&self) -> bool {
        self.rotate_data
    }

    /// Whether the ECC/PCC words rotate across chips.
    pub fn rotates_ecc(&self) -> bool {
        self.rotate_ecc
    }

    /// The logical slot (0..10) holding word `w` of `line` before the
    /// ECC/PCC rotation is applied.
    #[inline]
    fn slot_of_word(&self, line: LineAddr, w: usize) -> usize {
        debug_assert!(w < 8);
        if self.rotate_data {
            (w + (line.0 % 8) as usize) % 8
        } else {
            w
        }
    }

    #[inline]
    fn chip_of_slot(&self, line: LineAddr, slot: usize) -> ChipId {
        debug_assert!(slot < 10);
        if self.rotate_ecc {
            ChipId(((slot + (line.0 % 10) as usize) % 10) as u8)
        } else {
            ChipId(slot as u8)
        }
    }

    /// The physical chip holding data word `w` (0..8) of `line`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w >= 8`.
    pub fn chip_of_word(&self, line: LineAddr, w: usize) -> ChipId {
        self.chip_of_slot(line, self.slot_of_word(line, w))
    }

    /// The physical chip holding `line`'s ECC word.
    pub fn ecc_chip(&self, line: LineAddr) -> ChipId {
        self.chip_of_slot(line, 8)
    }

    /// The physical chip holding `line`'s PCC word.
    pub fn pcc_chip(&self, line: LineAddr) -> ChipId {
        self.chip_of_slot(line, 9)
    }

    /// The set of chips holding `line`'s eight data words.
    pub fn word_chips(&self, line: LineAddr) -> ChipSet {
        let mut s = ChipSet::empty();
        for w in 0..8 {
            s.insert_chip(self.chip_of_word(line, w));
        }
        s
    }

    /// Maps a set of logical words to the set of physical chips holding
    /// them.
    pub fn chips_of_mask(&self, line: LineAddr, mask: WordMask) -> ChipSet {
        let mut s = ChipSet::empty();
        for w in mask.iter() {
            s.insert_chip(self.chip_of_word(line, w));
        }
        s
    }

    /// The data word of `line` stored on `chip`, if any (`None` when the
    /// chip holds this line's ECC or PCC word).
    pub fn word_on_chip(&self, line: LineAddr, chip: ChipId) -> Option<usize> {
        (0..8).find(|&w| self.chip_of_word(line, w) == chip)
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::fixed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_layout_is_identity() {
        let l = Layout::fixed();
        for w in 0..8 {
            assert_eq!(l.chip_of_word(LineAddr(123), w), ChipId(w as u8));
        }
        assert_eq!(l.ecc_chip(LineAddr(99)), ChipId::ECC);
        assert_eq!(l.pcc_chip(LineAddr(99)), ChipId::PCC);
    }

    #[test]
    fn data_rotation_matches_figure_6() {
        let l = Layout::rotate_data();
        // Line X (X%8 == 0): word 0 on chip 0. Line X+1: word 0 on chip 1.
        assert_eq!(l.chip_of_word(LineAddr(8), 0), ChipId(0));
        assert_eq!(l.chip_of_word(LineAddr(9), 0), ChipId(1));
        assert_eq!(l.chip_of_word(LineAddr(15), 0), ChipId(7));
        // Word 7 of line X+1 wraps to chip 0.
        assert_eq!(l.chip_of_word(LineAddr(9), 7), ChipId(0));
        // ECC/PCC stay put without ECC rotation.
        assert_eq!(l.ecc_chip(LineAddr(9)), ChipId::ECC);
    }

    #[test]
    fn ecc_rotation_moves_check_chips() {
        let l = Layout::rotate_all();
        let chips: std::collections::BTreeSet<_> =
            (0..10).map(|i| l.ecc_chip(LineAddr(i)).0).collect();
        assert_eq!(chips.len(), 10, "ECC visits every chip over 10 lines");
    }

    #[test]
    fn same_offset_successive_lines_do_not_collide_when_rotated() {
        let l = Layout::rotate_data();
        let mut seen = std::collections::BTreeSet::new();
        for line in 0..8u64 {
            seen.insert(l.chip_of_word(LineAddr(line), 3).0);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn word_on_chip_inverts_chip_of_word() {
        for l in [Layout::fixed(), Layout::rotate_data(), Layout::rotate_all()] {
            for line in [0u64, 7, 13, 1_000_003] {
                let line = LineAddr(line);
                for w in 0..8 {
                    let chip = l.chip_of_word(line, w);
                    assert_eq!(l.word_on_chip(line, chip), Some(w));
                }
                assert_eq!(l.word_on_chip(line, l.ecc_chip(line)), None);
                assert_eq!(l.word_on_chip(line, l.pcc_chip(line)), None);
            }
        }
    }

    #[test]
    fn chips_of_mask_maps_each_word() {
        let l = Layout::rotate_all();
        let line = LineAddr(42);
        let mask: WordMask = [1usize, 5].into_iter().collect();
        let set = l.chips_of_mask(line, mask);
        assert_eq!(set.count(), 2);
        assert!(set.contains_chip(l.chip_of_word(line, 1)));
        assert!(set.contains_chip(l.chip_of_word(line, 5)));
    }

    proptest! {
        #[test]
        fn prop_layout_is_bijective(line: u64, rd: bool, re: bool) {
            let l = Layout { rotate_data: rd, rotate_ecc: re };
            let line = LineAddr(line);
            let mut used = std::collections::BTreeSet::new();
            for w in 0..8 {
                used.insert(l.chip_of_word(line, w).0);
            }
            used.insert(l.ecc_chip(line).0);
            used.insert(l.pcc_chip(line).0);
            prop_assert_eq!(used.len(), 10);
        }

        #[test]
        fn prop_word_chips_has_eight_members(line: u64) {
            let l = Layout::rotate_all();
            prop_assert_eq!(l.word_chips(LineAddr(line)).count(), 8);
        }
    }
}
