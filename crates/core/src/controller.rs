//! The PCMap memory controller: fine-grained writes, RoW, WoW, rotation.
//!
//! Implements §IV of the paper on top of the shared [`CtrlCore`] plumbing:
//!
//! * **Fine-grained writes** — a write touches only the chips holding its
//!   essential words plus the line's ECC and PCC chips. All three phases
//!   are committed at issue: *step 1* programs the essential data chips
//!   with the ECC update running alongside; *step 2* updates the PCC chip
//!   immediately after the data phase (Figure 5(b)). Because the phases
//!   occupy their chips as reservation windows, a fixed ECC/PCC chip
//!   genuinely serializes consecutive writes — the contention the paper
//!   quantifies for the `-NR`/`-RD` systems and removes with ECC/PCC
//!   rotation in `RWoW-RDE`.
//! * **WoW** — additional writes whose chip windows fit are issued
//!   concurrently with in-flight writes (oldest first, §IV-D2 rule 2).
//! * **RoW** — a read with exactly one word-holding chip busy is served by
//!   reading the other seven data chips plus the PCC chip (free during
//!   step 1 by construction) and XOR-reconstructing the missing word;
//!   SECDED verification is deferred to a one-chip read after the busy
//!   chip frees (§IV-B). A read whose word chips are all free but whose
//!   ECC chip is busy is served with the same deferred-verification path.
//! * **Status polling** — any operation overlapped onto a bank with an
//!   in-flight write is charged the 2-cycle `Status` round trip to the
//!   DIMM register first (§IV-D1).
//!
//! One modeling note (see DESIGN.md): the controller is given the essential
//! word set of a queued write at scheduling time (as the paper's scheduler
//! implicitly assumes when it "selects write requests that can be
//! parallelized"); the per-overlap `Status` poll cost is still charged.

use crate::config::SystemKind;
use crate::layout::Layout;
use pcmap_ctrl::controller::{Controller, CtrlCore};
use pcmap_ctrl::op;
use pcmap_ctrl::request::{Completion, MemRequest, ReqId, ReqKind};
use pcmap_ctrl::stats::CtrlStats;
use pcmap_ctrl::BusDir;
use pcmap_device::PcmRank;
use pcmap_obs::{
    Event, EventKind, EventLog, EventSink, LifecycleTracer, RecoveryKind, Resource, WaitCause,
};
use pcmap_types::{
    BankId, ChipId, ChipSet, Cycle, Duration, MemOrg, QueueParams, TimingParams, WordMask,
};

/// A write currently occupying chips on a bank (its data phase).
#[derive(Debug, Clone, Copy)]
struct InflightWrite {
    bank: BankId,
    /// End of the data-chip phase (overlap bookkeeping lasts until then).
    data_end: Cycle,
    /// Request id of the write (blocker attribution for the lifecycle
    /// tracer).
    req: u64,
}

/// The PCMap controller for one channel.
///
/// Interchangeable with [`pcmap_ctrl::BaselineController`] through the
/// [`Controller`] trait; construct one per [`SystemKind`] PCMap variant.
#[derive(Debug)]
pub struct PcmapController {
    core: CtrlCore,
    kind: SystemKind,
    layout: Layout,
    // pcmap-lint: allow(missed-wake, reason = "every site where an in-flight write blocks a candidate feeds the blocker's data_end into note_hint/retry_hint, which compute_wake reads; the pass cannot see that value-level relay")
    inflight: Vec<InflightWrite>,
    /// Extra cycles charged before any overlapped issue (`Status` command);
    /// settable to 0 for the status-poll ablation.
    status_poll: Duration,
    /// Serve RoW-style overlap reads outside drains too (default on:
    /// §IV-B applies RoW to any read arriving during an ongoing write;
    /// disable to restrict to the paper's drain-mode rule 1 only).
    overlap_reads_in_normal: bool,
    /// §IV-B4 extension (ablation, default off): when reads are waiting,
    /// break multi-word writes into serial single-word partial writes so
    /// every phase stays RoW-compatible — at the cost of write latency.
    split_writes_for_row: bool,
    /// Writes currently being issued word-by-word under the split mode.
    // pcmap-lint: allow(missed-wake, reason = "a split write stays resident in its write queue until every partial issues, and compute_wake reads queue occupancy; this list only de-duplicates the split bookkeeping")
    split_in_progress: Vec<ReqId>,
}

impl PcmapController {
    /// Creates a PCMap controller for one channel.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`SystemKind::Baseline`]; use
    /// [`pcmap_ctrl::BaselineController`] for that system.
    pub fn new(kind: SystemKind, org: MemOrg, t: TimingParams, q: QueueParams, seed: u64) -> Self {
        assert!(
            !kind.is_baseline(),
            "use BaselineController for the baseline system"
        );
        let status_poll = Duration(t.status_cmd);
        Self {
            core: CtrlCore::new(org, t, q, seed),
            kind,
            layout: kind.layout(),
            inflight: Vec::new(),
            status_poll,
            overlap_reads_in_normal: true,
            split_writes_for_row: false,
            split_in_progress: Vec::new(),
        }
    }

    /// Overrides the per-overlap `Status` poll cost (ablation hook).
    pub fn set_status_poll_cost(&mut self, cycles: u64) {
        self.status_poll = Duration(cycles);
        self.core.checker.set_expected_status_poll(cycles);
    }

    /// Enables or disables overlap (RoW-style) reads outside drain mode.
    pub fn set_overlap_reads_in_normal(&mut self, enabled: bool) {
        self.overlap_reads_in_normal = enabled;
    }

    /// Enables the §IV-B4 extension: split multi-word writes into serial
    /// single-word partial writes while reads are waiting, so RoW stays
    /// applicable throughout (ablation; increases write latency).
    pub fn set_split_writes_for_row(&mut self, enabled: bool) {
        self.split_writes_for_row = enabled;
    }

    /// The system variant this controller implements.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// The layout in force.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    fn has_inflight(&self, bank: BankId, now: Cycle) -> bool {
        self.inflight
            .iter()
            .any(|w| w.bank == bank && w.data_end > now)
    }

    fn prune_inflight(&mut self, now: Cycle) {
        self.inflight.retain(|w| w.data_end > now);
    }

    /// Request id of the write currently occupying `bank`, if any
    /// (lifecycle blocker attribution).
    fn inflight_blocker(&self, bank: BankId, now: Cycle) -> Option<u64> {
        self.inflight
            .iter()
            .find(|w| w.bank == bank && w.data_end > now)
            .map(|w| w.req)
    }

    /// Whether this channel's rank is currently demoted to coarse
    /// scheduling (advances the degradation state machine to `now`).
    /// Always `false` without a fault plan.
    fn rank_degraded(&mut self, now: Cycle) -> bool {
        match self.core.faults.as_mut() {
            Some(plan) => plan.is_degraded(now),
            None => false,
        }
    }

    /// Number of Status polls an overlapped issue pays: 1 normally, 2
    /// when the fault plan corrupts the poll response and it must be
    /// repeated (§IV-D1).
    fn poll_count(&mut self) -> u64 {
        let corrupted = match self.core.faults.as_mut() {
            Some(plan) => plan.on_status_poll(),
            None => false,
        };
        if corrupted {
            self.core.stats.faults_injected += 1;
            self.core.stats.faults_status_poll += 1;
            2
        } else {
            1
        }
    }

    /// Attempts to issue one write (fine-grained, all phases committed).
    /// Returns `true` on issue.
    fn try_issue_write(&mut self, now: Cycle, out: &mut Vec<Completion>) -> bool {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::CtrlSchedule);
        pcmap_prof::bump(pcmap_prof::Counter::QueueScans);
        let degraded = self.rank_degraded(now);
        // Gather candidates across bank queues, oldest first per bank.
        let mut candidates: Vec<MemRequest> = Vec::new();
        for q in &self.core.write_qs {
            candidates.extend(q.iter().copied());
        }
        candidates.sort_by_key(|r| (r.arrival, r.id));
        // Same-address write order must be preserved: once an older write
        // to a line is skipped, newer writes to that line may not jump it.
        let mut skipped_lines: Vec<pcmap_types::LineAddr> = Vec::new();
        for req in candidates {
            if skipped_lines.contains(&req.line) {
                continue;
            }
            pcmap_prof::bump(pcmap_prof::Counter::ConstraintChecks);
            let id = req.id;
            let bank = req.loc.bank;
            // Writes issue while the bus is in write mode (any drain
            // active) or opportunistically after a read-idle window.
            if !self.core.any_draining() && !self.core.read_idle(now) {
                if self.core.lifetrace.enabled() {
                    self.core.lifetrace.blocked(
                        id.0,
                        now,
                        WaitCause::ReadPriority,
                        Some(Resource::bank(bank)),
                    );
                }
                skipped_lines.push(req.line);
                continue;
            }
            let overlapping = self.has_inflight(bank, now);
            // A degraded rank loses WoW speculation: overlapped writes
            // wait for the in-flight write like the baseline would.
            if overlapping && (!self.kind.wow_enabled() || degraded) {
                // Event horizon: the candidate stays blocked until every
                // in-flight data phase on this bank has ended.
                if let Some(t) = self
                    .inflight
                    .iter()
                    .filter(|w| w.bank == bank && w.data_end > now)
                    .map(|w| w.data_end)
                    .max()
                {
                    self.core.note_hint(t);
                }
                if self.core.lifetrace.enabled() {
                    let cause = if degraded && self.kind.wow_enabled() {
                        WaitCause::RankDemoted
                    } else {
                        WaitCause::WriteInFlight
                    };
                    let mut r = Resource::bank(bank);
                    if let Some(blocker) = self.inflight_blocker(bank, now) {
                        r = r.blocked_by(blocker);
                    }
                    self.core.lifetrace.blocked(id.0, now, cause, Some(r));
                }
                skipped_lines.push(req.line);
                continue;
            }
            let polls = if overlapping { self.poll_count() } else { 1 };
            let start = if overlapping {
                now + Duration(self.status_poll.0 * polls)
            } else {
                now
            };
            let ReqKind::Write { data } = req.kind else {
                continue;
            };

            // Peek the essential set without mutating storage.
            let stored = self.core.rank.read_line(bank, req.loc.row, req.loc.col);
            let mask = stored.data.diff_words(&data);

            if mask.is_empty() {
                // Silent store — or the tail of a split write whose words
                // have all landed.
                self.core
                    .checker
                    .status_poll_n(bank, now, start, overlapping, polls);
                self.core.write_qs[bank.index()]
                    .remove(id)
                    .expect("still queued");
                self.core
                    .rank
                    .write_words(bank, req.loc.row, req.loc.col, data, mask);
                if let Some(pos) = self.split_in_progress.iter().position(|&r| r == id) {
                    self.split_in_progress.swap_remove(pos);
                } else {
                    self.core.stats.essential_histogram[0] += 1;
                    self.core.stats.silent_writes += 1;
                }
                let done = start + Duration(self.core.t.array_read);
                self.core.stats.irlp.open_window(bank, start, done);
                self.core.lifetrace.issue(id.0, now, start, done);
                self.complete_write(&req, bank, done, out);
                return true;
            }

            // §IV-B4 split mode: with reads waiting, issue one essential
            // word at a time so the bank stays RoW-compatible.
            let full_count = mask.count();
            let mut mask = mask;
            let splitting = self.split_writes_for_row
                && self.kind.row_enabled()
                && (full_count > 1 || self.split_in_progress.contains(&id))
                && !self.core.read_q.is_empty();
            if splitting {
                mask = WordMask::single(mask.first().expect("non-empty"));
            }

            // Plan the three phases.
            let program_start = start + Duration(self.core.t.t_wl + self.core.t.burst);
            let upd = op::check_chip_write_occupancy(&self.core.t);
            let worst_end = program_start + Duration(self.core.t.array_set);

            // Availability: data chips and ECC chip over step 1, PCC chip
            // right after the data phase (step 2). Per-word SET/RESET
            // variation is bounded by the worst case.
            let timing = self.core.rank.timing();
            let data_chips = self.layout.chips_of_mask(req.line, mask);
            if !timing.set_free_during(bank, data_chips, start, worst_end) {
                self.core.stats.wr_blocked_data += 1;
                // Event horizon: the window [start, worst_end) shifts
                // rigidly with `now`, so the conflict clears once `start`
                // reaches the last conflicting reservation end.
                if let Some(e) = timing.blocked_until(bank, data_chips, start, worst_end) {
                    self.core.retry_hint = Some(match self.core.retry_hint {
                        Some(h) => h.min(Cycle(e.0 - (start.0 - now.0))),
                        None => Cycle(e.0 - (start.0 - now.0)),
                    });
                }
                if self.core.lifetrace.enabled() {
                    // Diagnose the first busy chip of the conflicting set.
                    let busy = data_chips
                        .chips()
                        .find(|&c| !timing.chip(bank, c).is_free_during(start, worst_end));
                    let mut r = match busy {
                        Some(c) => Resource::chip(bank, c),
                        None => Resource::bank(bank),
                    };
                    if let Some(b) = self.inflight_blocker(bank, now) {
                        r = r.blocked_by(b);
                    }
                    self.core
                        .lifetrace
                        .blocked(id.0, now, WaitCause::WowSetConflict, Some(r));
                }
                skipped_lines.push(req.line);
                continue;
            }
            let ecc_chip = self.layout.ecc_chip(req.line);
            let ecc_end = start + upd;
            if !timing.chip(bank, ecc_chip).is_free_during(start, ecc_end) {
                self.core.stats.wr_blocked_ecc += 1;
                // Event horizon: ECC update window shifts rigidly with now.
                if let Some(e) = timing.chip(bank, ecc_chip).blocked_until(start, ecc_end) {
                    self.core.retry_hint = Some(match self.core.retry_hint {
                        Some(h) => h.min(Cycle(e.0 - (start.0 - now.0))),
                        None => Cycle(e.0 - (start.0 - now.0)),
                    });
                }
                if self.core.lifetrace.enabled() {
                    let mut r = Resource::chip(bank, ecc_chip);
                    if let Some(b) = self.inflight_blocker(bank, now) {
                        r = r.blocked_by(b);
                    }
                    self.core
                        .lifetrace
                        .blocked(id.0, now, WaitCause::EccBusy, Some(r));
                }
                skipped_lines.push(req.line);
                continue;
            }
            let pcc_chip = self.layout.pcc_chip(req.line);
            if !timing
                .chip(bank, pcc_chip)
                .is_free_during(worst_end, worst_end + upd)
            {
                self.core.stats.wr_blocked_pcc += 1;
                // Event horizon: PCC window [worst_end, worst_end + upd)
                // also shifts rigidly with now.
                if let Some(e) = timing
                    .chip(bank, pcc_chip)
                    .blocked_until(worst_end, worst_end + upd)
                {
                    self.core.retry_hint = Some(match self.core.retry_hint {
                        Some(h) => h.min(Cycle(e.0 - (worst_end.0 - now.0))),
                        None => Cycle(e.0 - (worst_end.0 - now.0)),
                    });
                }
                if self.core.lifetrace.enabled() {
                    let mut r = Resource::chip(bank, pcc_chip);
                    if let Some(b) = self.inflight_blocker(bank, now) {
                        r = r.blocked_by(b);
                    }
                    self.core
                        .lifetrace
                        .blocked(id.0, now, WaitCause::PccBusy, Some(r));
                }
                skipped_lines.push(req.line);
                continue;
            }

            self.core
                .checker
                .status_poll_n(bank, now, start, overlapping, polls);
            if overlapping {
                self.core
                    .checker
                    .speculative_on_degraded(bank, start, degraded, "WoW write");
            }
            self.issue_fine_write(
                req,
                now,
                mask,
                start,
                program_start,
                overlapping,
                splitting.then_some(full_count),
                out,
            );
            return true;
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_fine_write(
        &mut self,
        req: MemRequest,
        now: Cycle,
        mask: WordMask,
        start: Cycle,
        program_start: Cycle,
        overlapping: bool,
        split_of: Option<usize>,
        out: &mut Vec<Completion>,
    ) {
        pcmap_prof::bump(pcmap_prof::Counter::CommandsIssued);
        let ReqKind::Write { data } = req.kind else {
            unreachable!("checked by caller")
        };
        let bank = req.loc.bank;
        let partial = split_of.is_some();
        if !partial {
            self.core.write_qs[bank.index()]
                .remove(req.id)
                .expect("write still queued");
        }

        let outcome = self
            .core
            .rank
            .write_words(bank, req.loc.row, req.loc.col, data, mask);
        debug_assert_eq!(outcome.essential, mask);
        match split_of {
            None => {
                if let Some(pos) = self.split_in_progress.iter().position(|&r| r == req.id) {
                    // Tail of a split write issued whole: already counted.
                    self.split_in_progress.swap_remove(pos);
                } else {
                    self.core.stats.essential_histogram[outcome.essential.count()] += 1;
                }
            }
            Some(full) => {
                // First partial issue of a split write: histogram it once
                // with its original word count.
                if !self.split_in_progress.contains(&req.id) {
                    self.core.stats.essential_histogram[full.min(8)] += 1;
                    self.split_in_progress.push(req.id);
                }
            }
        }
        if overlapping {
            self.core.stats.wow_overlaps += 1;
        }
        self.core.events.record(Event {
            at: start,
            req: req.id.0,
            bank,
            kind: EventKind::Issue { is_write: true },
        });

        // Step 1: data chips + ECC chip.
        let upd = op::check_chip_write_occupancy(&self.core.t);
        let data_end = program_start + Duration(self.core.t.array_set);
        for w in outcome.essential.iter() {
            let chip = self.layout.chip_of_word(req.line, w);
            let end = program_start + outcome.kinds[w].duration(&self.core.t);
            self.core.checker.command(
                self.core.rank.timing(),
                bank,
                ChipSet::single(chip.index()),
                start,
                end,
                "write data chip",
            );
            self.core
                .rank
                .timing_mut()
                .reserve(bank, ChipSet::single(chip.index()), start, end);
            self.core.stats.irlp.record_segment(bank, start, end);
            self.core
                .rank
                .wear_mut()
                .record(chip, outcome.bits_per_word[w]);
            self.core
                .events
                .chip_occupy(req.id.0, bank, chip, start, end, || {
                    format!("Wr-{}", req.id.0)
                });
        }
        let ecc_chip = self.layout.ecc_chip(req.line);
        let ecc_end = start + upd;
        self.core.checker.command(
            self.core.rank.timing(),
            bank,
            ChipSet::single(ecc_chip.index()),
            start,
            ecc_end,
            "write ECC chip",
        );
        self.core.rank.timing_mut().reserve(
            bank,
            ChipSet::single(ecc_chip.index()),
            start,
            ecc_end,
        );
        self.core.rank.wear_mut().record(ecc_chip, 8);
        self.core.rank.energy_mut().record_write(4, 4);
        self.core
            .events
            .chip_occupy(req.id.0, bank, ecc_chip, start, ecc_end, || "E".to_owned());

        // Step 2: PCC update immediately after the data phase.
        let pcc_chip = self.layout.pcc_chip(req.line);
        let pcc_end = data_end + upd;
        self.core.checker.write_steps(bank, program_start, data_end);
        self.core.checker.command(
            self.core.rank.timing(),
            bank,
            ChipSet::single(pcc_chip.index()),
            data_end,
            pcc_end,
            "write PCC chip",
        );
        self.core.rank.timing_mut().reserve(
            bank,
            ChipSet::single(pcc_chip.index()),
            data_end,
            pcc_end,
        );
        self.core.rank.wear_mut().record(pcc_chip, 8);
        self.core.rank.energy_mut().record_write(4, 4);
        self.core
            .events
            .chip_occupy(req.id.0, bank, pcc_chip, data_end, pcc_end, || {
                "P".to_owned()
            });

        // Fault hooks (inert without a plan): this write may burn out a
        // cell, and one essential chip may run slow or hang. A slow chip
        // stretches the data phase, so completion waits for it.
        self.core
            .plant_wear_fault(bank, req.loc.row, req.loc.col, start);
        let data_set = self.layout.chips_of_mask(req.line, outcome.essential);
        let fault_end = self.core.apply_chip_fault(bank, data_set, start, data_end);

        let done = pcc_end.max(fault_end);
        if self.core.lifetrace.enabled() {
            // Service covers step 1 + step 2 (+ any fault stretch); the
            // chip windows below carry the per-phase detail.
            self.core.lifetrace.issue(req.id.0, now, start, done);
            for w in outcome.essential.iter() {
                let chip = self.layout.chip_of_word(req.line, w);
                let end = program_start + outcome.kinds[w].duration(&self.core.t);
                self.core.lifetrace.chip_service(req.id.0, chip, start, end);
            }
            self.core
                .lifetrace
                .chip_service(req.id.0, ecc_chip, start, ecc_end);
            self.core
                .lifetrace
                .chip_service(req.id.0, pcc_chip, data_end, pcc_end);
        }
        self.core.stats.irlp.open_window(bank, start, data_end);
        self.inflight.push(InflightWrite {
            bank,
            data_end,
            req: req.id.0,
        });
        if !partial {
            self.complete_write(&req, bank, done, out);
        }
    }

    fn complete_write(
        &mut self,
        req: &MemRequest,
        bank: BankId,
        done: Cycle,
        out: &mut Vec<Completion>,
    ) {
        self.core.stats.record_write_done(done);
        self.core.lifetrace.complete(req.id.0, done);
        let lw = &mut self.core.last_write_end[bank.index()];
        *lw = (*lw).max(done);
        self.core.events.record(Event {
            at: done,
            req: req.id.0,
            bank,
            kind: EventKind::Complete {
                is_write: true,
                latency: done.since(req.arrival),
            },
        });
        out.push(Completion {
            id: req.id,
            core: req.core,
            is_read: false,
            arrival: req.arrival,
            done,
            via_row: false,
            verify_done: None,
            forwarded: false,
            failed: false,
            corrupted: false,
        });
    }

    /// Attempts to issue one read.
    ///
    /// Per-bank gating: plain fully-checked reads issue to banks that are
    /// not draining; RoW-style overlap reads (PCC reconstruction or
    /// deferred verification — the paper's scheduler rule 1) issue to
    /// draining banks with an in-flight write. `plain_allowed` and
    /// `overlap_everywhere` are ablation hooks.
    fn try_issue_read(
        &mut self,
        now: Cycle,
        plain_allowed: bool,
        overlap_everywhere: bool,
    ) -> Option<Completion> {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::CtrlSchedule);
        pcmap_prof::bump(pcmap_prof::Counter::QueueScans);
        let degraded = self.rank_degraded(now);
        let ids: Vec<ReqId> = self.core.read_q.iter().map(|r| r.id).collect();
        for id in ids {
            pcmap_prof::bump(pcmap_prof::Counter::ConstraintChecks);
            let req = *self
                .core
                .read_q
                .iter()
                .find(|r| r.id == id)
                .expect("still queued");
            let bank = req.loc.bank;
            let bus_write_mode = self.core.any_draining();
            let overlapping = self.has_inflight(bank, now);
            // Plain reads need the bus in read mode; overlap (RoW) reads
            // ride the sub-ranked lanes and work either way — during
            // drains they are the only way a read gets served (rule 1).
            let plain_ok = plain_allowed && !bus_write_mode;
            let overlap_ok = (bus_write_mode || overlap_everywhere) && overlapping;
            if !plain_ok && !overlap_ok {
                if bus_write_mode && self.core.lifetrace.enabled() {
                    // Drain episode holds the bus in write mode and no
                    // in-flight write offers an overlap lane.
                    self.core.lifetrace.blocked(
                        req.id.0,
                        now,
                        WaitCause::Drain,
                        Some(Resource::bank(bank)),
                    );
                }
                continue;
            }
            let polls = if overlapping { self.poll_count() } else { 1 };
            let start = if overlapping {
                now + Duration(self.status_poll.0 * polls)
            } else {
                now
            };
            let word_chips = self.layout.word_chips(req.line);
            let ecc_chip = self.layout.ecc_chip(req.line);
            let pcc_chip = self.layout.pcc_chip(req.line);

            // Exact read window: peek the bus without committing.
            let row_set = {
                let mut s = word_chips;
                s.insert_chip(ecc_chip);
                s
            };
            let row_hit = self
                .core
                .rank
                .timing()
                .chips_needing_activate(bank, row_set, req.loc.row)
                .is_empty();
            let to_transfer = op::read_latency_to_transfer(row_hit, &self.core.t);
            let transfer = self
                .core
                .bus
                .next_slot(BusDir::Read, start + to_transfer, &self.core.t);
            let data_ready = transfer + Duration(self.core.t.burst);

            let timing = self.core.rank.timing();
            let busy_words: Vec<ChipId> = word_chips
                .chips()
                .filter(|&c| !timing.chip(bank, c).is_free_during(start, data_ready))
                .collect();
            let ecc_free = timing
                .chip(bank, ecc_chip)
                .is_free_during(start, data_ready);
            let pcc_free = timing
                .chip(bank, pcc_chip)
                .is_free_during(start, data_ready);

            match busy_words.len() {
                0 if ecc_free && (plain_ok || overlap_ok) => {
                    let mut set = word_chips;
                    set.insert_chip(ecc_chip);
                    self.core
                        .checker
                        .status_poll_n(bank, now, start, overlapping, polls);
                    return Some(self.issue_read(req, now, start, data_ready, set, None, None));
                }
                0 if self.kind.row_enabled() && !degraded && (plain_ok || overlap_ok) => {
                    self.core.stats.reads_deferred_only += 1;
                    // Words readable but only the ECC chip is busy: read
                    // now, defer the SECDED check. Profitable in every
                    // mode — the data is fully available.
                    self.core
                        .checker
                        .status_poll_n(bank, now, start, overlapping, polls);
                    self.core.checker.speculative_on_degraded(
                        bank,
                        start,
                        degraded,
                        "deferred-verify read",
                    );
                    return Some(self.issue_read(
                        req,
                        now,
                        start,
                        data_ready,
                        word_chips,
                        Some(ecc_chip),
                        None,
                    ));
                }
                1 if self.kind.row_enabled() && !degraded && overlap_ok && pcc_free => {
                    let missing = busy_words[0];
                    let mut set = word_chips;
                    set.remove(missing.index());
                    set.insert_chip(pcc_chip);
                    // If the line's own ECC chip is free (common under
                    // ECC/PCC rotation: the busy chips belong to another
                    // line's layout), read it too — the reconstructed
                    // word's check byte validates it immediately, so no
                    // deferred verify and no rollback exposure.
                    let deferred = if ecc_free {
                        set.insert_chip(ecc_chip);
                        None
                    } else {
                        Some(ecc_chip)
                    };
                    self.core
                        .checker
                        .status_poll_n(bank, now, start, overlapping, polls);
                    self.core.checker.speculative_on_degraded(
                        bank,
                        start,
                        degraded,
                        "RoW reconstruction",
                    );
                    return Some(self.issue_read(
                        req,
                        now,
                        start,
                        data_ready,
                        set,
                        deferred,
                        Some(missing),
                    ));
                }
                1 if self.kind.row_enabled() && !degraded && overlap_ok => {
                    self.core.stats.row_blocked_pcc_busy += 1;
                    // Event horizon: reconstruction waits on the PCC chip;
                    // its read window shifts rigidly with now.
                    if let Some(e) = timing.chip(bank, pcc_chip).blocked_until(start, data_ready) {
                        self.core.retry_hint = Some(match self.core.retry_hint {
                            Some(h) => h.min(Cycle(e.0 - (start.0 - now.0))),
                            None => Cycle(e.0 - (start.0 - now.0)),
                        });
                    }
                    if self.core.lifetrace.enabled() {
                        let mut r = Resource::chip(bank, pcc_chip);
                        if let Some(b) = self.inflight_blocker(bank, now) {
                            r = r.blocked_by(b);
                        }
                        self.core
                            .lifetrace
                            .blocked(req.id.0, now, WaitCause::PccBusy, Some(r));
                    }
                    continue;
                }
                n => {
                    // Event horizon: the read waits on whichever blocking
                    // chip frees first (busy word chips, or the line's ECC
                    // chip when no word chip is busy).
                    let hint = if busy_words.is_empty() {
                        timing.chip(bank, ecc_chip).blocked_until(start, data_ready)
                    } else {
                        busy_words
                            .iter()
                            .filter_map(|&c| timing.chip(bank, c).blocked_until(start, data_ready))
                            .min()
                    };
                    if let Some(e) = hint {
                        self.core.retry_hint = Some(match self.core.retry_hint {
                            Some(h) => h.min(Cycle(e.0 - (start.0 - now.0))),
                            None => Cycle(e.0 - (start.0 - now.0)),
                        });
                    }
                    if n >= 2 && self.kind.row_enabled() {
                        self.core.stats.row_blocked_multi_busy += 1;
                        if self.core.lifetrace.enabled() {
                            let mut r = Resource::chip(bank, busy_words[0]);
                            if let Some(b) = self.inflight_blocker(bank, now) {
                                r = r.blocked_by(b);
                            }
                            self.core.lifetrace.blocked(
                                req.id.0,
                                now,
                                WaitCause::MultiBusy,
                                Some(r),
                            );
                        }
                    } else if self.core.lifetrace.enabled() {
                        // RoW off, rank demoted, or a busy chip the scheme
                        // cannot route around: the read waits on the
                        // in-flight write. With zero busy word chips the
                        // obstacle is the line's ECC chip.
                        let cause = if degraded && self.kind.row_enabled() {
                            WaitCause::RankDemoted
                        } else if busy_words.is_empty() && !ecc_free {
                            WaitCause::EccBusy
                        } else {
                            WaitCause::WriteInFlight
                        };
                        let mut r = match busy_words.first() {
                            Some(&c) => Resource::chip(bank, c),
                            None if !ecc_free => Resource::chip(bank, ecc_chip),
                            None => Resource::bank(bank),
                        };
                        if let Some(b) = self.inflight_blocker(bank, now) {
                            r = r.blocked_by(b);
                        }
                        self.core.lifetrace.blocked(req.id.0, now, cause, Some(r));
                    }
                    continue;
                }
            }
        }
        None
    }

    /// Issues a read over `read_set`. `deferred_ecc` is the line's ECC chip
    /// when inline checking is impossible (verification is deferred);
    /// `reconstructed` is the busy data chip whose word is rebuilt from the
    /// PCC chip.
    #[allow(clippy::too_many_arguments)]
    fn issue_read(
        &mut self,
        req: MemRequest,
        decided: Cycle,
        start: Cycle,
        data_ready: Cycle,
        read_set: ChipSet,
        deferred_ecc: Option<ChipId>,
        reconstructed: Option<ChipId>,
    ) -> Completion {
        pcmap_prof::bump(pcmap_prof::Counter::CommandsIssued);
        self.core.read_q.remove(req.id).expect("read still queued");
        let bank = req.loc.bank;
        self.core.events.record(Event {
            at: start,
            req: req.id.0,
            bank,
            kind: EventKind::Issue { is_write: false },
        });

        // Commit bus and chips (data_ready was computed from next_slot, so
        // this reserve lands exactly there).
        let transfer = self.core.bus.reserve(
            BusDir::Read,
            Cycle(data_ready.0 - self.core.t.burst),
            &self.core.t,
        );
        debug_assert_eq!(transfer + Duration(self.core.t.burst), data_ready);
        self.core.checker.row_read(
            bank,
            start,
            self.layout.word_chips(req.line),
            read_set,
            self.layout.pcc_chip(req.line),
        );
        self.core.checker.command(
            self.core.rank.timing(),
            bank,
            read_set,
            start,
            data_ready,
            "read",
        );
        self.core
            .rank
            .timing_mut()
            .reserve(bank, read_set, start, data_ready);
        self.core
            .rank
            .timing_mut()
            .open_row(bank, read_set, req.loc.row);

        // Functional read; reconstruction check when applicable.
        self.core
            .rank
            .energy_mut()
            .record_read(read_set.count() as u64 * 64);
        let stored = self.core.rank.read_line(bank, req.loc.row, req.loc.col);
        let codec = self.core.rank.storage().codec();
        if let Some(missing_chip) = reconstructed {
            let missing_word = self
                .layout
                .word_on_chip(req.line, missing_chip)
                .expect("busy chip must hold a data word of this line");
            let mut partial = stored.data;
            partial.set_word(missing_word, 0);
            let rebuilt = codec.reconstruct(&partial, missing_word, stored.pcc);
            debug_assert_eq!(
                rebuilt, stored.data,
                "XOR reconstruction must match storage"
            );
        }

        let via_row = deferred_ecc.is_some() || reconstructed.is_some();
        if via_row {
            self.core.stats.reads_via_row += 1;
        }
        if let Some(missing) = reconstructed {
            self.core.events.record(Event {
                at: start,
                req: req.id.0,
                bank,
                kind: EventKind::RowReconstruct { missing },
            });
        }
        let mut verify_span: Option<(Cycle, Cycle)> = None;
        let verify_done = if deferred_ecc.is_some() {
            // Deferred verify: one-chip read on the busy data chip (if
            // any) plus the ECC chip, once both are completely free.
            let mut verify_set = ChipSet::empty();
            if let Some(e) = deferred_ecc {
                verify_set.insert_chip(e);
            }
            if let Some(c) = reconstructed {
                verify_set.insert_chip(c);
            }
            debug_assert!(!verify_set.is_empty());
            let vs = self
                .core
                .rank
                .timing()
                .free_at(bank, verify_set, data_ready);
            let ve = vs + op::verify_read_occupancy(&self.core.t);
            self.core.checker.command(
                self.core.rank.timing(),
                bank,
                verify_set,
                vs,
                ve,
                "deferred verify",
            );
            self.core
                .rank
                .timing_mut()
                .reserve(bank, verify_set, vs, ve);
            self.core.stats.row_verifies += 1;
            self.core.events.record(Event {
                at: start,
                req: req.id.0,
                bank,
                kind: EventKind::DeferredVerify,
            });
            for chip in verify_set.chips() {
                self.core
                    .events
                    .chip_occupy(req.id.0, bank, chip, vs, ve, || "V".to_owned());
            }
            verify_span = Some((vs, ve));
            Some(ve)
        } else {
            None
        };

        // SECDED check (inline or at the deferred verify) and, under fault
        // injection, the correction/reconstruction/retry pipeline. When the
        // check is deferred, corrupt data has already been handed upward;
        // the resolution flags it so the CPU rolls back at `verify_done`.
        let res =
            self.core
                .resolve_read(bank, req.loc.row, req.loc.col, start, verify_done.is_some());
        let service_end = data_ready;
        let data_ready = data_ready + res.extra;

        if self.core.lifetrace.enabled() {
            self.core
                .lifetrace
                .issue(req.id.0, decided, start, service_end);
            for chip in read_set.chips() {
                self.core
                    .lifetrace
                    .chip_service(req.id.0, chip, start, service_end);
            }
            if let Some((vs, ve)) = verify_span {
                self.core.lifetrace.verify(req.id.0, vs, ve);
            }
            if res.reconstruct_extra.0 > 0 {
                self.core.lifetrace.recovery(
                    req.id.0,
                    RecoveryKind::Reconstruct,
                    service_end + res.reconstruct_extra,
                );
            }
            if res.retry_extra.0 > 0 {
                self.core
                    .lifetrace
                    .recovery(req.id.0, RecoveryKind::Retry, data_ready);
            }
            if res.failed {
                self.core.lifetrace.failed(req.id.0);
            }
            self.core.lifetrace.complete(req.id.0, data_ready);
        }

        if self.core.read_was_delayed(bank, req.arrival, start) {
            self.core.stats.reads_delayed_by_write += 1;
        }
        self.core.stats.reads_done += 1;
        self.core.stats.read_latency_sum += data_ready.since(req.arrival);
        self.core
            .stats
            .read_latency_hist
            .record(data_ready.since(req.arrival).as_u64());
        for chip in read_set.chips() {
            // IRLP: only the eight word-serving chips count (exclude the
            // ECC chip on plain reads).
            if self.layout.ecc_chip(req.line) != chip {
                self.core.stats.irlp.record_segment(bank, start, data_ready);
            }
            self.core
                .events
                .chip_occupy(req.id.0, bank, chip, start, data_ready, || {
                    format!("Rd-{}", req.id.0)
                });
        }
        self.core.events.record(Event {
            at: data_ready,
            req: req.id.0,
            bank,
            kind: EventKind::Complete {
                is_write: false,
                latency: data_ready.since(req.arrival),
            },
        });

        self.core
            .checker
            .retire(bank, via_row, data_ready, verify_done);
        Completion {
            id: req.id,
            core: req.core,
            is_read: true,
            arrival: req.arrival,
            done: data_ready,
            via_row,
            verify_done,
            forwarded: false,
            failed: res.failed,
            corrupted: res.corrupted,
        }
    }
}

impl Controller for PcmapController {
    fn enqueue_read(
        &mut self,
        req: MemRequest,
        now: Cycle,
    ) -> Result<Option<Completion>, MemRequest> {
        self.core.enqueue_read_common(req, now)
    }

    fn enqueue_write(&mut self, req: MemRequest, _now: Cycle) -> Result<(), MemRequest> {
        self.core.enqueue_write_common(req)
    }

    fn step(&mut self, now: Cycle) -> Vec<Completion> {
        if !self.core.step_due(now) {
            // Not due yet: a step here is defined to be a no-op, which is
            // what lets the event engine skip it entirely.
            return Vec::new();
        }
        let _span = pcmap_prof::span(pcmap_prof::SpanId::CtrlStep);
        let mut out = Vec::new();
        let banks = self.core.org.banks;
        self.core.service_watchdogs(now);
        loop {
            let mut issued = false;
            self.core.begin_pass();
            // Refresh per-bank drain states.
            for b in 0..banks {
                self.core.update_drain(BankId(b), now);
            }
            // Reads: plain to non-draining banks; overlap (rule 1) to
            // draining banks; optionally overlap everywhere (ablation).
            if let Some(c) = self.try_issue_read(now, true, self.overlap_reads_in_normal) {
                out.push(c);
                issued = true;
            }
            // Writes: drain-eligible or opportunistic banks (rule 2).
            if self.try_issue_write(now, &mut out) {
                issued = true;
            }
            if !issued {
                break;
            }
        }
        self.prune_inflight(now);
        self.core.stats.irlp.settle(now);
        self.core.rank.timing_mut().prune(now);
        self.core.sync_fault_stats(now);
        self.core.compute_wake(now);
        out
    }

    fn next_tick(&self) -> Option<Cycle> {
        self.core.wake
    }

    fn read_q_len(&self) -> usize {
        self.core.read_q.len()
    }

    fn write_q_len(&self) -> usize {
        self.core.write_q_len_total()
    }

    fn write_q_capacity(&self) -> usize {
        self.core.write_qs[0].capacity()
    }

    fn stats(&self) -> &CtrlStats {
        &self.core.stats
    }

    fn rank(&self) -> &PcmRank {
        &self.core.rank
    }

    fn rank_mut(&mut self) -> &mut PcmRank {
        &mut self.core.rank
    }

    fn events(&self) -> &EventLog {
        &self.core.events
    }

    fn set_trace(&mut self, enabled: bool) {
        self.core.events.set_enabled(enabled);
    }

    fn lifetrace(&self) -> &LifecycleTracer {
        &self.core.lifetrace
    }

    fn set_lifetrace(&mut self, enabled: bool) {
        self.core.lifetrace.set_enabled(enabled);
    }

    fn settle(&mut self, now: Cycle) {
        self.core.stats.irlp.settle(now);
    }

    fn drains_started(&self) -> u64 {
        self.core.drains_started_total()
    }

    fn invariants_checked(&self) -> u64 {
        self.core.checker.checked()
    }

    fn invariant_violations(&self) -> u64 {
        self.core.checker.violation_count()
    }

    fn note_rollback(&mut self, at: Cycle, via_row: bool, had_deferred: bool) {
        self.core
            .checker
            .rollback(BankId(0), at, via_row, had_deferred);
    }

    fn set_fault_plan(&mut self, plan: Option<pcmap_faults::FaultPlan>) {
        self.core.faults = plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_ctrl::request::ReqKind;
    use pcmap_types::{CacheLine, CoreId, PhysAddr};

    fn ctrl(kind: SystemKind) -> PcmapController {
        let mut c = PcmapController::new(
            kind,
            MemOrg::tiny(),
            TimingParams::paper_default(),
            QueueParams::paper_default(),
            3,
        );
        // Small scenarios exercise the overlap paths outside drains.
        c.set_overlap_reads_in_normal(true);
        c
    }

    fn read_req(id: u64, addr: u64, now: Cycle) -> MemRequest {
        let org = MemOrg::tiny();
        let a = PhysAddr::new(addr);
        MemRequest {
            id: ReqId(id),
            kind: ReqKind::Read,
            line: a.line(),
            loc: org.decode(a),
            core: CoreId(0),
            arrival: now,
        }
    }

    fn write_req(
        c: &PcmapController,
        id: u64,
        addr: u64,
        words: &[usize],
        now: Cycle,
    ) -> MemRequest {
        let org = MemOrg::tiny();
        let a = PhysAddr::new(addr);
        let loc = org.decode(a);
        let old = c.rank().read_line(loc.bank, loc.row, loc.col).data;
        let mut data = old;
        for &w in words {
            data.set_word(w, !old.word(w));
        }
        MemRequest {
            id: ReqId(id),
            kind: ReqKind::Write { data },
            line: a.line(),
            loc,
            core: CoreId(0),
            arrival: now,
        }
    }

    /// Runs the controller until both queues drain, collecting completions.
    fn run_to_idle(c: &mut PcmapController, mut now: Cycle) -> Vec<Completion> {
        let mut out = c.step(now);
        while let Some(w) = c.next_wake(now) {
            now = w;
            out.extend(c.step(now));
            if now.0 > 1_000_000 {
                panic!("controller failed to go idle");
            }
        }
        out
    }

    #[test]
    #[should_panic(expected = "BaselineController")]
    fn baseline_kind_rejected() {
        let _ = ctrl(SystemKind::Baseline);
    }

    #[test]
    fn fine_write_reserves_only_essential_and_check_chips() {
        let mut c = ctrl(SystemKind::RwowNr);
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        let bank = w.loc.bank;
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        let t = c.rank().timing();
        // Chip 3 (the essential word) and the ECC chip are busy in step 1;
        // all other data chips stay free.
        assert!(!t.is_free(bank, ChipId(3), Cycle(10)));
        assert!(!t.is_free(bank, ChipId::ECC, Cycle(10)));
        for free in [0u8, 1, 2, 4, 5, 6, 7] {
            assert!(
                t.is_free(bank, ChipId(free), Cycle(10)),
                "chip {free} must stay free"
            );
        }
        // The PCC chip is free during step 1 and busy in step 2.
        assert!(t.is_free(bank, ChipId::PCC, Cycle(10)));
        let tp = TimingParams::paper_default();
        let step2 = tp.t_wl + tp.burst + tp.array_set + 5;
        assert!(!t.is_free(bank, ChipId::PCC, Cycle(step2)));
    }

    #[test]
    fn write_completion_covers_ecc_and_pcc_updates() {
        let mut c = ctrl(SystemKind::RwowNr);
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        let out = run_to_idle(&mut c, Cycle(0));
        let wc: Vec<_> = out.iter().filter(|x| !x.is_read).collect();
        assert_eq!(wc.len(), 1);
        let t = TimingParams::paper_default();
        // done must include the serialized PCC step (step 2).
        let data_end = t.t_wl + t.burst + t.array_set;
        assert!(wc[0].done.0 > data_end, "done={:?}", wc[0].done);
        assert_eq!(c.stats().writes_done, 1);
    }

    #[test]
    fn wow_overlaps_disjoint_writes_in_rde() {
        // With ECC/PCC rotation, two writes to different lines can use
        // different check chips and fully overlap. Search for a pair of
        // same-bank lines with disjoint chip sets.
        let mut c = ctrl(SystemKind::RwowRde);
        let w1 = write_req(&c, 1, 0, &[2], Cycle(0));
        let org = MemOrg::tiny();
        let l = c.layout();
        let used1: Vec<ChipId> = vec![
            l.chip_of_word(w1.line, 2),
            l.ecc_chip(w1.line),
            l.pcc_chip(w1.line),
        ];
        let mut addr2 = None;
        for k in 1..400u64 {
            let a = k * 64 * org.channels as u64;
            let line = PhysAddr::new(a).line();
            let loc = org.decode(PhysAddr::new(a));
            if loc.bank != w1.loc.bank {
                continue;
            }
            let used2 = [l.chip_of_word(line, 5), l.ecc_chip(line), l.pcc_chip(line)];
            if used2.iter().all(|u| !used1.contains(u)) {
                addr2 = Some(a);
                break;
            }
        }
        let w2 = write_req(&c, 2, addr2.expect("disjoint line exists"), &[5], Cycle(0));
        c.enqueue_write(w1, Cycle(0)).unwrap();
        c.enqueue_write(w2, Cycle(0)).unwrap();
        c.step(Cycle(0));
        assert_eq!(c.stats().wow_overlaps, 1, "both writes must be in flight");
    }

    #[test]
    fn fixed_ecc_chip_serializes_wow_writes() {
        // The paper's -NR limitation: all writes contend for the single
        // ECC chip, so the second write cannot issue while the first's
        // step-1 window holds it — even with disjoint data chips.
        let mut c = ctrl(SystemKind::WowNr);
        let w1 = write_req(&c, 1, 0, &[2], Cycle(0));
        let w2 = write_req(&c, 2, 1024, &[5], Cycle(0));
        assert_eq!(w1.loc.bank, w2.loc.bank);
        c.enqueue_write(w1, Cycle(0)).unwrap();
        c.enqueue_write(w2, Cycle(0)).unwrap();
        let mut out = c.step(Cycle(0));
        assert_eq!(c.stats().wow_overlaps, 0, "fixed ECC chip must serialize");
        // Both eventually complete.
        out.extend(run_to_idle(&mut c, Cycle(0)));
        assert_eq!(out.iter().filter(|x| !x.is_read).count(), 2);
    }

    #[test]
    fn wow_disabled_serializes_same_bank_writes() {
        let mut c = ctrl(SystemKind::RowNr);
        let w1 = write_req(&c, 1, 0, &[2], Cycle(0));
        let w2 = write_req(&c, 2, 1024, &[5], Cycle(0));
        c.enqueue_write(w1, Cycle(0)).unwrap();
        c.enqueue_write(w2, Cycle(0)).unwrap();
        c.step(Cycle(0));
        let t = c.rank().timing();
        assert!(!t.is_free(w1.loc.bank, ChipId(2), Cycle(20)));
        // Second write must NOT have issued (no WoW).
        assert!(t.is_free(w1.loc.bank, ChipId(5), Cycle(20)));
        assert_eq!(c.stats().wow_overlaps, 0);
    }

    #[test]
    fn row_read_overlaps_single_word_write() {
        let mut c = ctrl(SystemKind::RowNr);
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        let bank = w.loc.bank;
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        // Write in flight on chip 3. A read to the same bank arrives.
        let r = read_req(2, 64, Cycle(4));
        assert_eq!(r.loc.bank, bank);
        c.enqueue_read(r, Cycle(4)).unwrap();
        let out = c.step(Cycle(4));
        let rc: Vec<_> = out.iter().filter(|x| x.is_read).collect();
        assert_eq!(rc.len(), 1, "RoW must serve the read during the write");
        assert!(rc[0].via_row);
        let vd = rc[0].verify_done.expect("deferred verify scheduled");
        assert!(vd > rc[0].done);
        assert_eq!(c.stats().reads_via_row, 1);
        // The read's completion precedes the write's data end.
        let t = TimingParams::paper_default();
        assert!(rc[0].done.0 < t.t_wl + t.burst + t.array_set);
    }

    #[test]
    fn row_disabled_read_waits_for_write() {
        let mut c = ctrl(SystemKind::WowNr);
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        c.enqueue_read(read_req(2, 64, Cycle(4)), Cycle(4)).unwrap();
        let out = c.step(Cycle(4));
        assert!(out.iter().all(|x| !x.is_read), "no RoW in WoW-NR");
    }

    #[test]
    fn multiple_reads_serve_sequentially_under_one_write() {
        let mut c = ctrl(SystemKind::RowNr);
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        c.enqueue_read(read_req(2, 64, Cycle(2)), Cycle(2)).unwrap();
        c.enqueue_read(read_req(3, 128, Cycle(2)), Cycle(2))
            .unwrap();
        let mut now = Cycle(2);
        let mut reads = Vec::new();
        reads.extend(c.step(now).into_iter().filter(|x| x.is_read));
        while reads.len() < 2 {
            now = c.next_wake(now).expect("work pending");
            reads.extend(c.step(now).into_iter().filter(|x| x.is_read));
            assert!(now.0 < 10_000);
        }
        // The first read overlaps the write via reconstruction; the second
        // serializes behind it (and possibly behind the write's PCC step).
        assert!(reads[0].via_row);
        assert!(reads[1].done > reads[0].done);
    }

    #[test]
    fn reads_have_priority_when_not_draining() {
        let mut c = ctrl(SystemKind::RwowRde);
        let w = write_req(&c, 1, 0, &[1], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.enqueue_read(read_req(2, 64, Cycle(0)), Cycle(0)).unwrap();
        let out = c.step(Cycle(0));
        // Read issues; the write waits (read queue non-empty, no drain).
        assert!(out.iter().any(|x| x.is_read));
        assert!(out.iter().all(|x| x.is_read));
        assert_eq!(c.write_q_len(), 1);
    }

    #[test]
    fn rotation_lets_read_proceed_during_write() {
        // Under ECC/PCC rotation a write busies its data chip and its
        // (rotated) ECC chip. A read line whose layout places the write's
        // data chip on its own ECC/PCC slot sees at most one busy word
        // chip and proceeds during the write.
        let mut c = ctrl(SystemKind::RwowRde);
        let w = write_req(&c, 1, 0, &[0], Cycle(0));
        let busy_data = c.layout().chip_of_word(w.line, 0);
        let busy_ecc = c.layout().ecc_chip(w.line);
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        let org = MemOrg::tiny();
        let mut found = None;
        for k in 1..400u64 {
            let addr = k * 64 * org.channels as u64;
            let line = PhysAddr::new(addr).line();
            let loc = org.decode(PhysAddr::new(addr));
            let wc = c.layout().word_chips(line);
            let busy_word_chips = [busy_data, busy_ecc]
                .iter()
                .filter(|&&b| wc.contains_chip(b))
                .count();
            // At most one busy word chip, and the PCC chip clear of both.
            let pc = c.layout().pcc_chip(line);
            if loc.bank == w.loc.bank && busy_word_chips <= 1 && pc != busy_data && pc != busy_ecc {
                found = Some(addr);
                break;
            }
        }
        let addr = found.expect("rotation must yield an issueable line");
        c.enqueue_read(read_req(2, addr, Cycle(4)), Cycle(4))
            .unwrap();
        let out = c.step(Cycle(4));
        let rc: Vec<_> = out.iter().filter(|x| x.is_read).collect();
        assert_eq!(rc.len(), 1, "read should proceed despite the busy chips");
        // It overlapped the write's step 1.
        let t = TimingParams::paper_default();
        assert!(rc[0].done.0 < t.t_wl + t.burst + t.array_set);
    }

    #[test]
    fn overlap_reads_outside_drains_can_be_disabled() {
        let mut c = PcmapController::new(
            SystemKind::RowNr,
            MemOrg::tiny(),
            TimingParams::paper_default(),
            QueueParams::paper_default(),
            3,
        );
        c.set_overlap_reads_in_normal(false);
        let w = write_req(&c, 1, 0, &[3], Cycle(0));
        c.enqueue_write(w, Cycle(0)).unwrap();
        c.step(Cycle(0));
        c.enqueue_read(read_req(2, 64, Cycle(4)), Cycle(4)).unwrap();
        let out = c.step(Cycle(4));
        assert!(
            out.iter().all(|x| !x.is_read),
            "rule 1 applies during drains only"
        );
    }

    #[test]
    fn split_mode_lets_reads_overlap_multiword_writes_during_drains() {
        // Multi-word writes normally block RoW (2+ busy word chips). With
        // the §IV-B4 split extension, drained writes issue one word at a
        // time so rule-1 reads can reconstruct around the single busy
        // chip. Compare reads_via_row with the mode off and on.
        let run = |split: bool| -> (u64, u64) {
            let mut c = ctrl(SystemKind::RowNr);
            c.set_split_writes_for_row(split);
            // Fill bank 0's write queue past the high watermark (26) with
            // 3-word writes to force a drain.
            let org = MemOrg::tiny();
            let mut expected = Vec::new();
            for k in 0..26u64 {
                // Distinct bank-0 lines of the tiny org (16 rows x 8 cols).
                let line = (k / 8) * 16 + k % 8;
                let addr = line * 64;
                let loc = org.decode(PhysAddr::new(addr));
                assert_eq!(loc.bank, BankId(0));
                let w = write_req(&c, k + 1, addr, &[2, 4, 6], Cycle(0));
                let ReqKind::Write { data } = w.kind else {
                    unreachable!()
                };
                expected.push((loc, data));
                c.enqueue_write(w, Cycle(0)).unwrap();
            }
            for r in 0..4u64 {
                c.enqueue_read(read_req(100 + r, 64 + r * 4096, Cycle(0)), Cycle(0))
                    .unwrap();
            }
            let mut now = Cycle(0);
            c.step(now);
            while let Some(wake) = c.next_wake(now) {
                now = wake;
                c.step(now);
                assert!(now.0 < 1_000_000);
            }
            for (loc, data) in expected {
                assert_eq!(c.rank().read_line(loc.bank, loc.row, loc.col).data, data);
            }
            assert_eq!(c.stats().writes_done, 26);
            let hist: u64 = c.stats().essential_histogram.iter().sum();
            assert_eq!(
                hist,
                26,
                "each write histogrammed once: {:?}",
                c.stats().essential_histogram
            );
            (c.stats().reads_via_row, c.stats().essential_histogram[3])
        };
        let (row_off, h_off) = run(false);
        let (row_on, h_on) = run(true);
        assert_eq!(h_off, 26);
        assert_eq!(h_on, 26, "split writes keep their original word count");
        assert!(
            row_on > row_off,
            "split mode must enable RoW: {row_on} vs {row_off}"
        );
    }

    #[test]
    fn silent_write_completes_quickly() {
        let mut c = ctrl(SystemKind::RwowRde);
        let org = MemOrg::tiny();
        let a = PhysAddr::new(0);
        let loc = org.decode(a);
        let old = c.rank().read_line(loc.bank, loc.row, loc.col).data;
        let req = MemRequest {
            id: ReqId(1),
            kind: ReqKind::Write { data: old },
            line: a.line(),
            loc,
            core: CoreId(0),
            arrival: Cycle(0),
        };
        c.enqueue_write(req, Cycle(0)).unwrap();
        let out = c.step(Cycle(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].done, Cycle(TimingParams::paper_default().array_read));
        assert_eq!(c.stats().silent_writes, 1);
        let _ = CacheLine::zeroed();
    }

    #[test]
    fn functional_contents_survive_pcmap_scheduling() {
        let mut c = ctrl(SystemKind::RwowRde);
        let org = MemOrg::tiny();
        let mut expected = Vec::new();
        for k in 0..6u64 {
            let addr = k * 64 * org.channels as u64;
            let loc = org.decode(PhysAddr::new(addr));
            let old = c.rank().read_line(loc.bank, loc.row, loc.col).data;
            let mut data = old;
            data.set_word((k % 8) as usize, !old.word((k % 8) as usize));
            expected.push((loc, data));
            let req = MemRequest {
                id: ReqId(k + 1),
                kind: ReqKind::Write { data },
                line: PhysAddr::new(addr).line(),
                loc,
                core: CoreId(0),
                arrival: Cycle(0),
            };
            c.enqueue_write(req, Cycle(0)).unwrap();
        }
        run_to_idle(&mut c, Cycle(0));
        for (loc, data) in expected {
            let got = c.rank().read_line(loc.bank, loc.row, loc.col);
            assert_eq!(got.data, data);
            let codec = c.rank().storage().codec();
            assert_eq!(got.ecc, codec.ecc_word(&got.data), "ECC word maintained");
            assert_eq!(got.pcc, codec.pcc_word(&got.data), "PCC word maintained");
        }
    }

    #[test]
    fn rde_drains_write_bursts_faster_than_nr() {
        // Many single-word writes with distinct data chips to one bank:
        // the fixed ECC/PCC chips pipeline them at check-update intervals;
        // rotation spreads the check updates and drains faster.
        let run = |kind: SystemKind| -> Cycle {
            let mut c = ctrl(kind);
            let org = MemOrg::tiny();
            let mut id = 1;
            for k in 0..24u64 {
                let addr = k * 1024 * org.channels as u64;
                let loc = org.decode(PhysAddr::new(addr));
                if loc.bank != BankId(0) {
                    continue;
                }
                let w = write_req(&c, id, addr, &[(k % 8) as usize], Cycle(0));
                id += 1;
                let _ = c.enqueue_write(w, Cycle(0));
            }
            let out = run_to_idle(&mut c, Cycle(0));
            out.iter().map(|x| x.done).max().unwrap_or(Cycle::ZERO)
        };
        let nr = run(SystemKind::WowNr);
        let rde = run(SystemKind::RwowRde);
        assert!(rde < nr, "RDE drain end {rde:?} must beat NR {nr:?}");
    }
}
