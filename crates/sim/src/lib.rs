//! Full-system simulator for the PCMap reproduction.
//!
//! Composes the whole stack — 8 stall-accounting cores, per-core workload
//! streams, 4 memory channels each with its own controller (baseline or
//! PCMap) and 10-chip PCM rank — into an event-driven simulation, and
//! provides the registry of paper experiments (every figure and table of
//! the evaluation).
//!
//! # Example
//!
//! ```
//! use pcmap_sim::{SimConfig, System};
//! use pcmap_core::SystemKind;
//! use pcmap_workloads::catalog;
//!
//! let wl = catalog::by_name("streamcluster").expect("known workload");
//! let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(1_000);
//! let report = System::new(cfg, wl).run();
//! assert!(report.writes_completed > 0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod ingest;
pub mod report;
pub mod sweep;
pub mod system;

pub use engine::{Engine, EventHeap, Tick, TickSource};
pub use ingest::{GateDecision, IngressGate};
pub use report::TableBuilder;
pub use sweep::{SweepPoint, SweepRunner};
pub use system::{RunReport, SimConfig, System};
