//! Plain-text table rendering for experiment binaries.

use std::fmt::Write as _;

/// Builds fixed-width text tables matching the rows/series the paper's
/// figures and tables report.
///
/// # Example
///
/// ```
/// use pcmap_sim::TableBuilder;
///
/// let mut t = TableBuilder::new(&["workload", "IRLP"]);
/// t.row(&["canneal".to_string(), format!("{:.2}", 4.5)]);
/// let text = t.render();
/// assert!(text.contains("canneal"));
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[c]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as RFC-4180 CSV (headers first, fields quoted as
    /// needed) — the machine-readable twin of [`render`](Self::render).
    pub fn to_csv(&self) -> String {
        pcmap_obs::csv::format_table(&self.headers, &self.rows)
    }
}

/// Formats a ratio as a percentage improvement over a baseline value
/// (positive = better when `higher_is_better`).
pub fn improvement_pct(value: f64, baseline: f64, higher_is_better: bool) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    let delta = (value - baseline) / baseline * 100.0;
    if higher_is_better {
        delta
    } else {
        -delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableBuilder::new(&["name", "v"]);
        t.row(&["a".into(), "1.00".into()]);
        t.row(&["longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TableBuilder::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_round_trips_through_parser() {
        let mut t = TableBuilder::new(&["name", "note"]);
        t.row(&["a,b".into(), "say \"hi\"".into()]);
        t.row(&["plain".into(), "multi\nline".into()]);
        let csv = t.to_csv();
        let parsed = pcmap_obs::csv::parse(&csv);
        assert_eq!(parsed[0], vec!["name", "note"]);
        assert_eq!(parsed[1], vec!["a,b", "say \"hi\""]);
        assert_eq!(parsed[2], vec!["plain", "multi\nline"]);
    }

    #[test]
    fn improvement_signs() {
        assert!((improvement_pct(1.2, 1.0, true) - 20.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0.5, 1.0, false), 50.0);
        assert_eq!(improvement_pct(1.0, 0.0, true), 0.0);
    }
}
