//! System-side ingestion hooks for the serve tier (DESIGN.md §16).
//!
//! The standalone `pcmap-serve` fleet models admission control at scale,
//! but its policies must also be *attachable to the real simulator* so
//! the two tiers can be cross-checked at small scale. An [`IngressGate`]
//! sits inside [`System::try_issue`](crate::System): before a core's
//! memory request is materialized, the gate decides whether it is
//! admitted now or deferred (charged to the core exactly like a full
//! controller queue, so the existing blocked/retry machinery and both
//! execution engines handle the wait). Completions are echoed back via
//! [`IngressGate::note_complete`] so the gate can refill budgets and
//! track latency against SLOs.
//!
//! Determinism contract (DESIGN.md §9): the gate is consulted only from
//! the driving thread (core polling and delivery draining), never from a
//! pool worker, so any deterministic gate keeps `--jobs N` runs
//! byte-identical. With no gate attached every hook is inert and the
//! report is byte-for-byte what it was before this module existed — the
//! `serve` block only appears in the JSON when a gate is present.

use pcmap_types::{Cycle, ServeSummary};

/// Admission decision for one core's pending memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Issue the request now.
    Admit,
    /// Hold the request; re-poll the core no earlier than the given
    /// cycle (the core is charged a blocked wait, as if the controller
    /// queue were full).
    Defer(Cycle),
}

/// An admission-control policy attached to the simulator's issue path.
///
/// Implementations must be deterministic (no wall clock, no OS entropy)
/// — the gate is part of the simulation, and its decisions feed the
/// byte-identical report contract.
pub trait IngressGate: Send {
    /// Decides admission for core `core`'s staged request at `now`.
    fn admit(&mut self, core: usize, is_read: bool, now: Cycle) -> GateDecision;

    /// Observes a completed delivery for core `core` at `now` (reads
    /// and writes both echo here, at their completion cycle).
    fn note_complete(&mut self, core: usize, is_read: bool, now: Cycle);

    /// The controller queue rejected a request the gate had just
    /// admitted (queue full). The gate must unwind that admission —
    /// refund the token, drop the in-flight entry — so its ledger
    /// counts materialized issues only. Default: no-op.
    fn note_rejected(&mut self, _core: usize, _is_read: bool, _now: Cycle) {}

    /// The gate's outcome ledger, embedded in the run report's `serve`
    /// block.
    fn summary(&self) -> ServeSummary;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysAdmit(u64);

    impl IngressGate for AlwaysAdmit {
        fn admit(&mut self, _core: usize, _is_read: bool, _now: Cycle) -> GateDecision {
            self.0 += 1;
            GateDecision::Admit
        }
        fn note_complete(&mut self, _core: usize, _is_read: bool, _now: Cycle) {}
        fn summary(&self) -> ServeSummary {
            ServeSummary {
                generated: self.0,
                admitted: self.0,
                retired: self.0,
                ..ServeSummary::default()
            }
        }
    }

    #[test]
    fn trait_is_object_safe_and_summarizes() {
        let mut g: Box<dyn IngressGate> = Box::new(AlwaysAdmit(0));
        assert_eq!(g.admit(0, true, Cycle(5)), GateDecision::Admit);
        g.note_complete(0, true, Cycle(9));
        assert!(g.summary().conserved());
    }
}
