//! The registry of paper experiments: one entry per figure/table of the
//! evaluation (see DESIGN.md §3 for the index).
//!
//! Each function runs the necessary simulations and returns structured
//! rows; the `pcmap-bench` binaries render them as the same rows/series
//! the paper reports.

use crate::sweep::{SweepPoint, SweepRunner};
use crate::system::{RunReport, SimConfig, System};
use pcmap_core::{RollbackMode, SystemKind};
use pcmap_types::TimingParams;
use pcmap_workloads::catalog::{self, Workload};
use pcmap_workloads::{CoreStream, StreamOp};

/// How much work to spend per experiment.
#[derive(Debug, Clone, Copy)]
pub struct EvalScale {
    /// Memory requests injected per simulation run.
    pub requests: u64,
    /// Use all 13 PARSEC programs for Average(MT) (paper) instead of the
    /// six listed ones (quick mode).
    pub full_mt: bool,
}

impl EvalScale {
    /// Quick mode for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            requests: 4_000,
            full_mt: false,
        }
    }

    /// Default experiment scale.
    pub fn default_scale() -> Self {
        Self {
            requests: 24_000,
            full_mt: false,
        }
    }

    /// Paper-strength runs (slow).
    pub fn full() -> Self {
        Self {
            requests: 120_000,
            full_mt: true,
        }
    }
}

/// Runs one (workload, kind) simulation.
pub fn run_one(workload: &Workload, kind: SystemKind, scale: EvalScale) -> RunReport {
    let cfg = SimConfig::paper_default(kind).with_requests(scale.requests);
    System::new(cfg, workload.clone()).run()
}

/// The standard figure row set: the six Table II MT workloads, then the
/// six MP mixes. (`Average(MT)`/`Average(MP)` rows are computed by the
/// caller from these.)
pub fn figure_workloads(scale: EvalScale) -> Vec<Workload> {
    let mut v = if scale.full_mt {
        catalog::mt_all()
    } else {
        catalog::mt_selected()
    };
    v.extend(catalog::mp_workloads());
    v
}

/// One workload evaluated under all six systems (paper Figures 8–11).
#[derive(Debug, Clone)]
pub struct WorkloadEval {
    /// Workload name.
    pub name: String,
    /// `true` for multi-threaded rows.
    pub multi_threaded: bool,
    /// One report per [`SystemKind::all`] entry, in that order.
    pub reports: Vec<RunReport>,
}

impl WorkloadEval {
    /// The report for `kind`.
    pub fn report(&self, kind: SystemKind) -> &RunReport {
        &self.reports[SystemKind::all()
            .iter()
            .position(|k| *k == kind)
            .expect("known kind")]
    }
}

/// Runs the full evaluation matrix behind Figures 8, 9, 10 and 11.
pub fn evaluate_matrix(scale: EvalScale) -> Vec<WorkloadEval> {
    evaluate_matrix_with(scale, &mut SweepRunner::new(1))
}

/// [`evaluate_matrix`], with the independent (workload × kind) runs farmed
/// to `runner`'s pool. Results come back in input order, so the rows are
/// identical at every job count.
pub fn evaluate_matrix_with(scale: EvalScale, runner: &mut SweepRunner) -> Vec<WorkloadEval> {
    let workloads = figure_workloads(scale);
    let kinds = SystemKind::all();
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|w| kinds.iter().map(|&k| SweepPoint::standard(w, k, scale)))
        .collect();
    let mut reports = runner.run_points(points).into_iter();
    workloads
        .into_iter()
        .map(|w| WorkloadEval {
            multi_threaded: !w.name.starts_with("MP"),
            name: w.name,
            reports: reports.by_ref().take(kinds.len()).collect(),
        })
        .collect()
}

/// Figure 1 row: read-delay impact of asymmetric writes in the baseline.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// SPEC program (rate mode).
    pub workload: String,
    /// Percent of reads delayed by write activity.
    pub delayed_pct: f64,
    /// Effective read latency normalized to a symmetric-PCM baseline.
    pub norm_read_latency: f64,
}

/// Runs Figure 1: baseline system with asymmetric PCM vs a symmetric-PCM
/// variant (write latency = read latency).
pub fn fig1(scale: EvalScale) -> Vec<Fig1Row> {
    catalog::spec_rate_workloads()
        .into_iter()
        .map(|w| {
            let asym = run_one(&w, SystemKind::Baseline, scale);
            let sym_cfg = SimConfig::paper_default(SystemKind::Baseline)
                .with_requests(scale.requests)
                .with_timing(TimingParams::paper_default().symmetric());
            let sym = System::new(sym_cfg, w.clone()).run();
            Fig1Row {
                workload: w.name.clone(),
                delayed_pct: asym.delayed_read_fraction * 100.0,
                norm_read_latency: if sym.mean_read_latency == 0.0 {
                    0.0
                } else {
                    asym.mean_read_latency / sym.mean_read_latency
                },
            }
        })
        .collect()
}

/// Figure 2 row: measured essential-word distribution of a program's
/// write-back stream.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// SPEC program.
    pub workload: String,
    /// Fraction of write-backs dirtying exactly `i` words, `i = 0..=8`.
    pub fractions: [f64; 9],
}

/// Runs Figure 2 directly on the workload generators (no timing needed):
/// the distribution of essential words per write-back.
pub fn fig2(writes_per_app: u64) -> Vec<Fig2Row> {
    catalog::spec_apps()
        .iter()
        .map(|p| {
            let mut gen = CoreStream::new(p, 0, 0xF162);
            let mut hist = [0u64; 9];
            let mut writes = 0;
            while writes < writes_per_app {
                if let StreamOp::Write { dirty, .. } = gen.next_op() {
                    hist[dirty.count()] += 1;
                    writes += 1;
                }
            }
            let total = writes as f64;
            let mut fractions = [0.0; 9];
            for (i, h) in hist.iter().enumerate() {
                fractions[i] = *h as f64 / total;
            }
            Fig2Row {
                workload: p.name.to_owned(),
                fractions,
            }
        })
        .collect()
}

/// Table III row: IPC improvement vs write:read latency ratio.
#[derive(Debug, Clone)]
pub struct Tab3Row {
    /// The write:read latency ratio (2, 4, 6, 8).
    pub ratio: u64,
    /// RWoW-RDE IPC improvement over baseline, percent.
    pub rwow_rde_pct: f64,
    /// RWoW-NR IPC improvement over baseline, percent.
    pub rwow_nr_pct: f64,
}

/// Runs Table III: sweep the write:read latency ratio with write latency
/// pinned at 120 ns. Improvements are averaged over `workloads`.
pub fn tab3(scale: EvalScale, workloads: &[Workload]) -> Vec<Tab3Row> {
    tab3_with(scale, workloads, &mut SweepRunner::new(1))
}

/// [`tab3`], with the (ratio × workload × kind) runs farmed to `runner`.
pub fn tab3_with(
    scale: EvalScale,
    workloads: &[Workload],
    runner: &mut SweepRunner,
) -> Vec<Tab3Row> {
    const RATIOS: [u64; 4] = [2, 4, 6, 8];
    const KINDS: [SystemKind; 3] = [
        SystemKind::Baseline,
        SystemKind::RwowRde,
        SystemKind::RwowNr,
    ];
    let points: Vec<SweepPoint> = RATIOS
        .iter()
        .flat_map(|&ratio| {
            let timing = TimingParams::paper_default().with_write_to_read_ratio(ratio);
            workloads.iter().flat_map(move |w| {
                KINDS.iter().map(move |&kind| SweepPoint {
                    cfg: SimConfig::paper_default(kind)
                        .with_requests(scale.requests)
                        .with_timing(timing),
                    workload: w.clone(),
                })
            })
        })
        .collect();
    let mut ipcs = runner.run_points(points).into_iter().map(|r| r.ipc());
    RATIOS
        .iter()
        .map(|&ratio| {
            let mut imp_rde = 0.0;
            let mut imp_nr = 0.0;
            for _ in workloads {
                let base = ipcs.next().expect("baseline run");
                // pcmap-lint: allow(float-accumulation, reason = "report-time mean over a fixed-order workload list, not a per-cycle stat")
                imp_rde += (ipcs.next().expect("rde run") / base - 1.0) * 100.0;
                // pcmap-lint: allow(float-accumulation, reason = "report-time mean over a fixed-order workload list, not a per-cycle stat")
                imp_nr += (ipcs.next().expect("nr run") / base - 1.0) * 100.0;
            }
            let n = workloads.len() as f64;
            Tab3Row {
                ratio,
                rwow_rde_pct: imp_rde / n,
                rwow_nr_pct: imp_nr / n,
            }
        })
        .collect()
}

/// Table IV row: rollback cost bounds for the high-rollback workloads.
#[derive(Debug, Clone)]
pub struct Tab4Row {
    /// Workload name.
    pub workload: String,
    /// Measured consumed-before-check fraction of RoW reads (percent).
    pub max_rollback_pct: f64,
    /// IPC improvement over baseline when every consumed read rolls back.
    pub faulty_imp_pct: f64,
    /// IPC improvement over baseline with no rollbacks.
    pub none_faulty_imp_pct: f64,
    /// Full report of the always-faulty run (carries the rollback-rate
    /// telemetry the table summarizes).
    pub faulty_report: RunReport,
}

/// Runs Table IV on the paper's four max-rollback workloads.
///
/// Uses `RWoW-NR`: with the fixed layout the ECC chip is busy during every
/// write's step 1, so every RoW read defers its SECDED check — the paper's
/// rollback-exposed configuration. (Under ECC/PCC rotation most RoW reads
/// validate immediately from their check byte and carry no rollback risk
/// at all; see DESIGN.md §4b.)
pub fn tab4(scale: EvalScale) -> Vec<Tab4Row> {
    tab4_with(scale, &mut SweepRunner::new(1))
}

/// [`tab4`], with each workload's three independent runs (baseline,
/// always-faulty, none-faulty) farmed to `runner`.
pub fn tab4_with(scale: EvalScale, runner: &mut SweepRunner) -> Vec<Tab4Row> {
    let workloads: Vec<Workload> = ["canneal", "facesim", "MP6", "ferret"]
        .iter()
        .map(|name| catalog::by_name(name).expect("catalog workload"))
        .collect();
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|w| {
            let mode_point = |mode: RollbackMode| SweepPoint {
                cfg: SimConfig::paper_default(SystemKind::RwowNr)
                    .with_requests(scale.requests)
                    .with_rollback(mode),
                workload: w.clone(),
            };
            [
                SweepPoint::standard(w, SystemKind::Baseline, scale),
                mode_point(RollbackMode::AlwaysFaulty),
                mode_point(RollbackMode::NeverFaulty),
            ]
        })
        .collect();
    let mut reports = runner.run_points(points).into_iter();
    workloads
        .into_iter()
        .map(|w| {
            let base = reports.next().expect("baseline run").ipc();
            let faulty = reports.next().expect("faulty run");
            let clean = reports.next().expect("clean run");
            let row_reads = faulty.reads_via_row.max(1);
            Tab4Row {
                workload: w.name,
                max_rollback_pct: faulty.consumed_before_check as f64 * 100.0 / row_reads as f64,
                faulty_imp_pct: (faulty.ipc() / base - 1.0) * 100.0,
                none_faulty_imp_pct: (clean.ipc() / base - 1.0) * 100.0,
                faulty_report: faulty,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_distribution_matches_anchors() {
        let rows = fig2(20_000);
        let cactus = rows.iter().find(|r| r.workload == "cactusADM").unwrap();
        assert!(
            (cactus.fractions[1] - 0.52).abs() < 0.02,
            "{}",
            cactus.fractions[1]
        );
        let omnet = rows.iter().find(|r| r.workload == "omnetpp").unwrap();
        assert!(
            (omnet.fractions[1] - 0.14).abs() < 0.02,
            "{}",
            omnet.fractions[1]
        );
        for r in &rows {
            let sum: f64 = r.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn evaluate_matrix_quick_has_all_kinds() {
        let scale = EvalScale {
            requests: 600,
            full_mt: false,
        };
        // Single workload to keep the test fast.
        let w = catalog::by_name("dedup").unwrap();
        let reports: Vec<_> = SystemKind::all()
            .iter()
            .map(|&k| run_one(&w, k, scale))
            .collect();
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert!(r.writes_completed > 0, "{:?} made no progress", r.kind);
        }
    }
}
