//! The event-driven full-system simulation.

use crate::engine::{Engine, EventHeap, TickSource};
use crate::ingest::{GateDecision, IngressGate};
use pcmap_core::{build_controller, RollbackMode, SystemKind};
use pcmap_cpu::core_model::{cpu_to_mem, mem_to_cpu, CoreAction, CoreModel};
use pcmap_cpu::{RollbackModel, WorkOp};
use pcmap_ctrl::stats::SERIES_WINDOW;
use pcmap_ctrl::{Completion, Controller, LatencyHistogram, MemRequest, ReqId, ReqKind};
use pcmap_faults::FaultPlan;
use pcmap_obs::{
    CounterId, Event, EventKind, EventLog, EventSink, LifecycleReport, MetricRegistry,
    MetricsSnapshot, StallBreakdown, Value, WindowedSeries, NO_REQ,
};
use pcmap_par::Pool;
use pcmap_types::{
    BankId, CoreId, CpuParams, Cycle, FaultConfig, MemOrg, QueueParams, ServeSummary, TimingParams,
    Xoshiro256,
};
use pcmap_workloads::{CoreStream, StreamOp, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which memory system to simulate.
    pub kind: SystemKind,
    /// Memory organization (Table I by default).
    pub org: MemOrg,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Queue sizing and drain watermarks.
    pub queues: QueueParams,
    /// CPU-side parameters.
    pub cpu: CpuParams,
    /// RoW rollback accounting mode.
    pub rollback: RollbackMode,
    /// Master seed (streams, data fabrication, pristine memory contents).
    pub seed: u64,
    /// Fault-injection configuration (disabled by default; a disabled
    /// config installs no [`FaultPlan`], so every fault hook is inert and
    /// the run is byte-identical to a build without the fault subsystem).
    pub faults: FaultConfig,
    /// Total memory requests to inject across all cores.
    pub max_requests: u64,
    /// Hard safety cap on simulated memory cycles.
    pub max_mem_cycles: u64,
}

impl SimConfig {
    /// Table I configuration for the given system kind, with a moderate
    /// default request budget.
    pub fn paper_default(kind: SystemKind) -> Self {
        Self {
            kind,
            org: MemOrg::paper_default(),
            timing: TimingParams::paper_default(),
            queues: QueueParams::paper_default(),
            cpu: CpuParams::paper_default(),
            rollback: RollbackMode::NeverFaulty,
            seed: 0xC0FFEE,
            faults: FaultConfig::disabled(),
            max_requests: 24_000,
            max_mem_cycles: 200_000_000,
        }
    }

    /// Sets the total request budget.
    pub fn with_requests(mut self, n: u64) -> Self {
        self.max_requests = n;
        self
    }

    /// Replaces the timing parameters (latency-ratio sweeps, symmetric PCM).
    pub fn with_timing(mut self, t: TimingParams) -> Self {
        self.timing = t;
        self
    }

    /// Sets the rollback accounting mode (Table IV).
    pub fn with_rollback(mut self, mode: RollbackMode) -> Self {
        self.rollback = mode;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection configuration (see DESIGN.md §11).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// System simulated.
    pub kind: SystemKind,
    /// Workload name.
    pub workload: String,
    /// Simulated memory cycles.
    pub mem_cycles: u64,
    /// Total instructions retired across cores.
    pub instructions: u64,
    /// Wall-clock CPU cycles (slowest core).
    pub cpu_cycles: u64,
    /// Reads completed.
    pub reads_completed: u64,
    /// Writes committed.
    pub writes_completed: u64,
    /// Mean effective read latency in memory cycles.
    pub mean_read_latency: f64,
    /// Median effective read latency (memory cycles).
    pub p50_read_latency: u64,
    /// 95th-percentile effective read latency.
    pub p95_read_latency: u64,
    /// 99th-percentile effective read latency.
    pub p99_read_latency: u64,
    /// Fraction of reads delayed by write activity (Figure 1).
    pub delayed_read_fraction: f64,
    /// Mean IRLP over write windows (Figure 8).
    pub irlp_mean: f64,
    /// Maximum per-write IRLP (Figure 8).
    pub irlp_max: f64,
    /// Writes per kilo-memory-cycle (Figure 9).
    pub write_throughput: f64,
    /// Mean essential words per write (Figure 2 / §III-B).
    pub mean_essential_words: f64,
    /// Aggregate essential-word histogram.
    pub essential_histogram: [u64; 9],
    /// Reads served by RoW (reconstruction or deferred verify).
    pub reads_via_row: u64,
    /// Writes that overlapped another write (WoW).
    pub wow_overlaps: u64,
    /// Pipeline rollbacks charged.
    pub rollbacks: u64,
    /// RoW reads consumed before their deferred check.
    pub consumed_before_check: u64,
    /// Reads forwarded from write queues.
    pub reads_forwarded: u64,
    /// Overlap-read attempts blocked: ≥2 word chips busy.
    pub row_blocked_multi: u64,
    /// Write-issue attempts blocked on data/ECC/PCC chips.
    pub wr_blocked: (u64, u64, u64),
    /// Reads served with deferred verification only.
    pub reads_deferred_only: u64,
    /// Write-drain episodes across all controllers.
    pub drains: u64,
    /// Reads whose SECDED check corrected a single-bit error.
    pub ecc_corrected: u64,
    /// Reads whose SECDED check found an uncorrectable error.
    pub ecc_uncorrectable: u64,
    /// Overlap-read attempts blocked: PCC chip busy.
    pub row_blocked_pcc: u64,
    /// Per-chip write imbalance (max/mean; 1.0 = perfectly balanced).
    pub wear_imbalance: f64,
    /// Protocol-invariant checks evaluated across channels (0 when the
    /// checker is compiled out or disabled via `PCMAP_CHECK=0`).
    pub invariants_checked: u64,
    /// Protocol-invariant violations observed (always 0 on a healthy run;
    /// strict mode panics at the violation site instead of counting).
    pub invariant_violations: u64,
    /// Events dropped by the bounded event logs (system log plus every
    /// channel's); nonzero means trace-derived views are incomplete.
    pub events_dropped: u64,
    /// Request timelines dropped by the lifecycle tracers' capacity caps
    /// (always 0 when lifecycle tracing is off).
    pub lifetrace_dropped: u64,
    /// Per-request causal timelines and attributed-cycle totals, present
    /// when lifecycle tracing was enabled ([`System::enable_lifecycle_tracing`]).
    /// Deliberately excluded from [`Self::to_json`] so traced and untraced
    /// runs keep byte-identical reports; `pcmap_explain` exports it as a
    /// sidecar document instead.
    pub lifecycle: Option<LifecycleReport>,
    /// Serve-tier admission ledger, present when an [`IngressGate`] was
    /// attached ([`System::set_ingress_gate`]). The JSON `serve` block
    /// is emitted only when this is `Some`, so gateless runs (and every
    /// golden anchor) keep their exact byte layout.
    pub serve: Option<ServeSummary>,
    /// Faults injected across all classes (0 on fault-free runs).
    pub faults_injected: u64,
    /// Injected transient flips corrected in place by SECDED.
    pub faults_corrected: u64,
    /// Uncorrectable reads recovered by PCC erasure reconstruction.
    pub faults_reconstructed: u64,
    /// Recovery retries issued for uncorrectable reads (backoff included).
    pub fault_retries: u64,
    /// Reads that exhausted the retry budget and failed upward.
    pub reads_failed: u64,
    /// Stuck-busy chips freed by the per-rank watchdog.
    pub watchdog_trips: u64,
    /// Rank demotions from RoW/WoW speculation to coarse scheduling.
    pub degraded_enters: u64,
    /// Rank re-promotions after a clean window.
    pub degraded_exits: u64,
    /// Memory cycles ranks spent degraded, summed over channels.
    pub degraded_cycles: u64,
    /// Deliveries whose data disagreed with the storage oracle without
    /// being flagged — always 0 on a correct recovery path (the soak
    /// harness asserts this).
    pub silent_corruptions: u64,
    /// CPU rollbacks forced by late-detected corruption on deferred-verify
    /// reads.
    pub corruption_rollbacks: u64,
    /// Dynamic PCM energy (reads sensed + bits programmed), nanojoules.
    pub energy_dynamic_nj: f64,
    /// Total PCM energy including background power over the run, nJ.
    pub energy_total_nj: f64,
    /// Per-channel controller metric snapshots (metric names in DESIGN.md).
    pub channels: Vec<MetricsSnapshot>,
    /// Merged core-side counters (retired, stall cycles, rollbacks).
    pub cores: MetricsSnapshot,
    /// Simulator-level counters from the injection loop's registry.
    pub sim: MetricsSnapshot,
    /// Merged read-latency distribution across channels.
    pub read_latency_hist: LatencyHistogram,
    /// Writes completed per window across channels (windowed throughput).
    pub write_series: WindowedSeries,
    /// Per-window mean IRLP across channels (windowed IRLP).
    pub irlp_series: WindowedSeries,
}

impl RunReport {
    /// Aggregate IPC: instructions per CPU cycle across all 8 cores.
    pub fn ipc(&self) -> f64 {
        if self.cpu_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cpu_cycles as f64
        }
    }

    /// Mean IRLP (paper Figure 8 metric).
    pub fn irlp(&self) -> f64 {
        self.irlp_mean
    }

    /// Rollbacks per RoW-served read (0 if RoW never fired).
    pub fn rollback_rate(&self) -> f64 {
        if self.reads_via_row == 0 {
            0.0
        } else {
            self.rollbacks as f64 / self.reads_via_row as f64
        }
    }

    /// The per-channel snapshots merged into whole-memory-system totals.
    pub fn merged_channels(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        for ch in &self.channels {
            m.merge(ch);
        }
        m
    }

    /// Renders the full report as a JSON document: headline scalars,
    /// read-latency percentiles, per-channel counter snapshots, stall
    /// attribution, and the windowed throughput/IRLP series.
    pub fn to_json(&self) -> Value {
        let merged = self.merged_channels();
        let mut v = Value::obj();
        v.set("kind", Value::Str(self.kind.label().to_owned()));
        v.set("workload", Value::Str(self.workload.clone()));
        v.set("mem_cycles", Value::U64(self.mem_cycles));
        v.set("instructions", Value::U64(self.instructions));
        v.set("cpu_cycles", Value::U64(self.cpu_cycles));
        v.set("ipc", Value::F64(self.ipc()));
        v.set("reads_completed", Value::U64(self.reads_completed));
        v.set("writes_completed", Value::U64(self.writes_completed));
        v.set("mean_read_latency", Value::F64(self.mean_read_latency));
        v.set("p50_read_latency", Value::U64(self.p50_read_latency));
        v.set("p95_read_latency", Value::U64(self.p95_read_latency));
        v.set("p99_read_latency", Value::U64(self.p99_read_latency));
        v.set(
            "delayed_read_fraction",
            Value::F64(self.delayed_read_fraction),
        );
        v.set("irlp_mean", Value::F64(self.irlp_mean));
        v.set("irlp_max", Value::F64(self.irlp_max));
        v.set("write_throughput", Value::F64(self.write_throughput));
        v.set(
            "mean_essential_words",
            Value::F64(self.mean_essential_words),
        );
        v.set(
            "essential_histogram",
            Value::Arr(
                self.essential_histogram
                    .iter()
                    .map(|&n| Value::U64(n))
                    .collect(),
            ),
        );
        v.set("reads_via_row", Value::U64(self.reads_via_row));
        v.set("wow_overlaps", Value::U64(self.wow_overlaps));
        v.set("rollbacks", Value::U64(self.rollbacks));
        v.set("rollback_rate", Value::F64(self.rollback_rate()));
        v.set(
            "consumed_before_check",
            Value::U64(self.consumed_before_check),
        );
        v.set("reads_forwarded", Value::U64(self.reads_forwarded));
        v.set("drains", Value::U64(self.drains));
        v.set("ecc_corrected", Value::U64(self.ecc_corrected));
        v.set("ecc_uncorrectable", Value::U64(self.ecc_uncorrectable));
        v.set("wear_imbalance", Value::F64(self.wear_imbalance));
        v.set("invariants_checked", Value::U64(self.invariants_checked));
        v.set(
            "invariant_violations",
            Value::U64(self.invariant_violations),
        );
        // Always present (0 when the logs/tracers are off or never filled),
        // so enabling tracing cannot perturb the report's byte layout.
        v.set("events_dropped", Value::U64(self.events_dropped));
        v.set("lifetrace_dropped", Value::U64(self.lifetrace_dropped));
        let mut faults = Value::obj();
        faults.set("injected", Value::U64(self.faults_injected));
        faults.set("corrected", Value::U64(self.faults_corrected));
        faults.set("reconstructed", Value::U64(self.faults_reconstructed));
        faults.set("retries", Value::U64(self.fault_retries));
        faults.set("reads_failed", Value::U64(self.reads_failed));
        faults.set("watchdog_trips", Value::U64(self.watchdog_trips));
        faults.set("degraded_enters", Value::U64(self.degraded_enters));
        faults.set("degraded_exits", Value::U64(self.degraded_exits));
        faults.set("degraded_cycles", Value::U64(self.degraded_cycles));
        faults.set("silent_corruptions", Value::U64(self.silent_corruptions));
        faults.set(
            "corruption_rollbacks",
            Value::U64(self.corruption_rollbacks),
        );
        v.set("faults", faults);
        // Present only when an ingress gate ran (mirrors the `lifecycle`
        // out-of-band precedent: attaching observability/serve machinery
        // must not reshape gateless reports).
        if let Some(s) = &self.serve {
            let mut serve = Value::obj();
            serve.set("generated", Value::U64(s.generated));
            serve.set("admitted", Value::U64(s.admitted));
            serve.set("retired", Value::U64(s.retired));
            serve.set("shed_throttled", Value::U64(s.shed_throttled));
            serve.set("shed_overflow", Value::U64(s.shed_overflow));
            serve.set("shed_degraded", Value::U64(s.shed_degraded));
            serve.set("shed_deadline", Value::U64(s.shed_deadline));
            serve.set("failed", Value::U64(s.failed));
            serve.set("retries", Value::U64(s.retries));
            serve.set("deferrals", Value::U64(s.deferrals));
            serve.set("slo_ok", Value::U64(s.slo_ok));
            serve.set(
                "slo_attainment_bp",
                Value::U64(u64::from(s.slo_attainment_bp())),
            );
            serve.set("peak_ingress", Value::U64(s.peak_ingress));
            serve.set("conserved", Value::Bool(s.conserved()));
            v.set("serve", serve);
        }
        v.set("energy_dynamic_nj", Value::F64(self.energy_dynamic_nj));
        v.set("energy_total_nj", Value::F64(self.energy_total_nj));
        v.set("read_latency", self.read_latency_hist.to_json());
        v.set("stalls", StallBreakdown::from_snapshot(&merged).to_json());
        v.set(
            "channels",
            Value::Arr(self.channels.iter().map(|c| c.to_json()).collect()),
        );
        v.set("cores", self.cores.to_json());
        v.set("sim", self.sim.to_json());
        v.set("write_series", self.write_series.to_json());
        v.set("irlp_series", self.irlp_series.to_json());
        v
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Delivery {
    when: Cycle,
    core: usize,
    is_read: bool,
    via_row: bool,
    verify_done: Option<Cycle>,
    /// The request exhausted its recovery retries and failed upward.
    failed: bool,
    /// A deferred SECDED check found the delivered data corrupt; the CPU
    /// must squash and re-fetch.
    corrupted: bool,
    /// Originating channel (rollback attribution; not part of the ordering
    /// key, which must stay exactly (when, core, is_read) so delivery order
    /// — and with it every golden byte — is unchanged).
    chan: usize,
}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.when, self.core, self.is_read).cmp(&(other.when, other.core, other.is_read))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The composed 8-core / 4-channel system.
pub struct System {
    cfg: SimConfig,
    workload_name: String,
    ctrls: Vec<Box<dyn Controller>>,
    cores: Vec<CoreModel>,
    streams: Vec<CoreStream>,
    /// The pending memory op's concrete address/mask per core.
    op_details: Vec<Option<StreamOp>>,
    /// Cores whose next progress comes from a read delivery, not their
    /// local clock.
    awaiting_delivery: Vec<bool>,
    /// Per-core poll horizon: the memory cycle at which polling the core
    /// can next change its state (`None` while it waits on a delivery or
    /// is finished). Both engines honour it, so a core's clock advances
    /// at exactly the same cycles either way.
    core_next: Vec<Option<Cycle>>,
    /// Cores that must be polled this epoch regardless of `core_next`
    /// (set by read deliveries).
    core_due: Vec<bool>,
    rollback: Vec<RollbackModel>,
    data_rng: Xoshiro256,
    next_req: u64,
    budget_per_core: u64,
    issued_per_core: Vec<u64>,
    deliveries: BinaryHeap<Reverse<Delivery>>,
    crawl_steps: u32,
    /// Simulator-level metric registry (injection-loop accounting).
    registry: MetricRegistry,
    m_requests: CounterId,
    m_retries: CounterId,
    m_rollbacks: CounterId,
    m_failed: CounterId,
    /// System-level lifecycle events (rollbacks; controller-agnostic, so
    /// `bank`/`req` carry placeholder values). Off unless tracing is on.
    events: EventLog,
    /// Optional serve-tier admission gate on the issue path
    /// (DESIGN.md §16). `None` leaves ingestion exactly as before.
    gate: Option<Box<dyn IngressGate>>,
}

impl System {
    /// Builds a system running `workload` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not provide one profile per core or the
    /// configuration fails validation.
    pub fn new(cfg: SimConfig, workload: Workload) -> Self {
        cfg.org.validate().expect("valid organization");
        cfg.timing.validate().expect("valid timing");
        cfg.queues.validate().expect("valid queues");
        cfg.cpu.validate().expect("valid cpu params");
        assert_eq!(
            workload.per_core.len(),
            cfg.cpu.cores as usize,
            "workload must supply one profile per core"
        );
        cfg.faults.validate().expect("valid fault config");
        let mut ctrls: Vec<Box<dyn Controller>> = (0..cfg.org.channels)
            .map(|ch| {
                build_controller(
                    cfg.kind,
                    cfg.org,
                    cfg.timing,
                    cfg.queues,
                    cfg.seed ^ ((ch as u64) << 17),
                )
            })
            .collect();
        // A disabled config yields `None` plans, leaving every fault hook
        // on the controllers' fault-free fast path.
        for (ch, ctrl) in ctrls.iter_mut().enumerate() {
            ctrl.set_fault_plan(FaultPlan::new(cfg.faults, ch as u64));
        }
        let cores: Vec<CoreModel> = (0..cfg.cpu.cores)
            .map(|i| CoreModel::new(CoreId(i), &cfg.cpu))
            .collect();
        let streams = workload
            .per_core
            .iter()
            .enumerate()
            .map(|(i, p)| CoreStream::new(p, i, cfg.seed))
            .collect();
        let always_faulty = cfg.rollback == RollbackMode::AlwaysFaulty;
        let rollback = workload
            .per_core
            .iter()
            .enumerate()
            .map(|(i, p)| {
                RollbackModel::new(
                    p.rollback_p,
                    always_faulty,
                    cfg.cpu.rollback_penalty_cpu_cycles,
                    cfg.seed ^ (i as u64),
                )
            })
            .collect();
        let budget_per_core = (cfg.max_requests / cfg.cpu.cores as u64).max(1);
        let n = cores.len();
        let mut registry = MetricRegistry::new();
        let m_requests = registry.counter("requests_issued");
        let m_retries = registry.counter("enqueue_retries");
        let m_rollbacks = registry.counter("rollbacks_charged");
        let m_failed = registry.counter("reads_failed_delivered");
        Self {
            cfg,
            workload_name: workload.name,
            ctrls,
            cores,
            streams,
            op_details: vec![None; n],
            awaiting_delivery: vec![false; n],
            core_next: vec![Some(Cycle::ZERO); n],
            core_due: vec![false; n],
            rollback,
            data_rng: Xoshiro256::new(0xDA7A),
            next_req: 0,
            budget_per_core,
            issued_per_core: vec![0; n],
            deliveries: BinaryHeap::new(),
            crawl_steps: 0,
            registry,
            m_requests,
            m_retries,
            m_rollbacks,
            m_failed,
            events: EventLog::disabled(),
            gate: None,
        }
    }

    /// Attaches a serve-tier admission gate to the issue path
    /// (DESIGN.md §16). The gate sees every would-be issue before the
    /// request is materialized and may defer it; completions are echoed
    /// back at their delivery cycle. The gate's [`ServeSummary`] lands
    /// on [`RunReport::serve`] (and in the JSON `serve` block).
    pub fn set_ingress_gate(&mut self, gate: Box<dyn IngressGate>) {
        self.gate = Some(gate);
    }

    /// Enables lifecycle event recording on every channel and on the
    /// system-level log (for timeline rendering; keep runs short).
    pub fn enable_tracing(&mut self) {
        for c in &mut self.ctrls {
            c.set_trace(true);
        }
        self.events.set_enabled(true);
    }

    /// Enables per-request causal lifecycle tracing on every channel
    /// (DESIGN.md §13). Independent of [`Self::enable_tracing`]: the
    /// tracer attributes every simulated cycle of every request to a wait
    /// cause or service phase, and the resulting [`LifecycleReport`] rides
    /// on [`RunReport::lifecycle`] without touching the JSON report.
    pub fn enable_lifecycle_tracing(&mut self) {
        for c in &mut self.ctrls {
            c.set_lifetrace(true);
        }
    }

    /// The system-level event log (rollback events).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Access to the per-channel controllers (inspection, fault injection).
    pub fn controllers(&self) -> &[Box<dyn Controller>] {
        &self.ctrls
    }

    /// Mutable access to the controllers (fault injection in tests).
    pub fn controllers_mut(&mut self) -> &mut [Box<dyn Controller>] {
        &mut self.ctrls
    }

    /// Runs to completion serially and produces the report. The engine
    /// comes from `PCMAP_ENGINE` ([`Engine::from_env`], default event).
    pub fn run(self) -> RunReport {
        self.run_engine(None, Engine::from_env())
    }

    /// Runs serially under an explicit [`Engine`] (differential testing).
    pub fn run_with_engine(self, engine: Engine) -> RunReport {
        self.run_engine(None, engine)
    }

    /// Runs to completion with intra-run channel parallelism: each memory
    /// channel (controller + DIMM/rank/wear state, all channel-private)
    /// advances on its own pool worker between CPU↔memory barriers.
    ///
    /// The engine is epoch-based lockstep. One event-loop iteration is one
    /// epoch: deliveries and core polling (the only cross-channel
    /// interaction points) run on the driving thread and form the barrier;
    /// the per-channel `step` calls inside the epoch are independent and
    /// run concurrently. Completions are merged back in channel-index
    /// order — the exact insertion sequence the serial engine produces —
    /// so the resulting [`RunReport`] is byte-identical to [`System::run`]
    /// (`crates/sim/tests/par_equiv.rs` proves this; DESIGN.md §9 states
    /// the determinism contract).
    ///
    /// With a serial pool (`--jobs 1`) this takes exactly the serial path.
    pub fn run_parallel(self, pool: &mut Pool) -> RunReport {
        self.run_engine(Some(pool), Engine::from_env())
    }

    /// Runs with channel parallelism under an explicit [`Engine`].
    pub fn run_parallel_with_engine(self, pool: &mut Pool, engine: Engine) -> RunReport {
        self.run_engine(Some(pool), engine)
    }

    fn run_engine(mut self, mut pool: Option<&mut Pool>, engine: Engine) -> RunReport {
        let mut now = Cycle(0);
        // Event engine: heap of cached component horizons. Channel
        // horizons come from `Controller::next_tick`, core horizons from
        // `core_next`; both are exactly what the cycle engine re-scans
        // every epoch, so the two engines jump to identical cycles.
        let mut heap =
            (engine == Engine::Event).then(|| EventHeap::new(self.ctrls.len(), self.cores.len()));
        // Scratch completion buffers, one per channel, reused each epoch.
        let mut epoch_out: Vec<Vec<Completion>> = Vec::new();
        epoch_out.resize_with(self.ctrls.len(), Vec::new);
        loop {
            pcmap_prof::bump(pcmap_prof::Counter::Epochs);
            // 1. Deliver due completions to cores.
            {
                let _span = pcmap_prof::span(pcmap_prof::SpanId::SimDeliver);
                while let Some(Reverse(d)) = self.deliveries.peek().copied() {
                    if d.when > now {
                        break;
                    }
                    self.deliveries.pop();
                    self.deliver(d, now);
                }
            }

            // 2. Let cores act and enqueue requests.
            {
                let _span = pcmap_prof::span(pcmap_prof::SpanId::SimPoll);
                self.poll_cores(now);
            }

            // 3. Step controllers — the epoch body. Channels share no
            // state with each other, only with the CPU side (steps 1-2
            // above, the barrier), so they may advance concurrently; the
            // completion merge below is in channel-index order either
            // way, keeping the delivery heap's insertion sequence — and
            // therefore everything downstream — identical to the serial
            // engine's.
            let par = match pool.as_deref_mut() {
                Some(p) if !p.is_serial() && self.channels_due(now) >= 2 => Some(p),
                _ => None,
            };
            let _step_span = pcmap_prof::span(pcmap_prof::SpanId::SimStep);
            if let Some(p) = par {
                pcmap_prof::bump(pcmap_prof::Counter::EpochsParallel);
                p.scoped(|scope| {
                    for (ch, (ctrl, out)) in
                        self.ctrls.iter_mut().zip(epoch_out.iter_mut()).enumerate()
                    {
                        scope.execute(move || {
                            // Tag this worker so occupancy recorded inside
                            // `ctrl.step` lands in the right channel bucket.
                            pcmap_prof::set_channel(ch);
                            *out = ctrl.step(now);
                        });
                    }
                });
            } else {
                for (ch, (ctrl, out)) in self.ctrls.iter_mut().zip(epoch_out.iter_mut()).enumerate()
                {
                    pcmap_prof::set_channel(ch);
                    *out = ctrl.step(now);
                }
            }
            drop(_step_span);
            for (ch, out) in epoch_out.iter_mut().enumerate() {
                for comp in std::mem::take(out) {
                    self.push_completion(ch, comp);
                }
            }

            // 4. Find the next event.
            if self.finished(now) {
                break;
            }
            let mut next = Cycle::MAX;
            if let Some(Reverse(d)) = self.deliveries.peek() {
                next = next.min(d.when);
            }
            match heap.as_mut() {
                Some(h) => {
                    // Event engine: refresh changed horizons, then read
                    // the heap minimum. `update` is a no-op for sources
                    // whose horizon did not move this epoch.
                    for (ch, ctrl) in self.ctrls.iter().enumerate() {
                        h.update(TickSource::Channel(ch), ctrl.next_tick());
                    }
                    for (i, &t) in self.core_next.iter().enumerate() {
                        h.update(TickSource::Core(i), t);
                    }
                    next = next.min(h.earliest());
                }
                None => {
                    // Cycle engine: re-scan every component.
                    for ctrl in &self.ctrls {
                        if let Some(w) = ctrl.next_wake(now) {
                            next = next.min(w);
                        }
                    }
                    for &t in &self.core_next {
                        if let Some(t) = t {
                            next = next.min(t);
                        }
                    }
                }
            }
            if next == Cycle::MAX || next <= now {
                self.crawl_steps += 1;
                if self.crawl_steps > 500_000 {
                    panic!(
                        "simulation livelock at {:?}: rq={:?} wq={:?} deliveries={} cores_fin={:?}",
                        now,
                        self.ctrls
                            .iter()
                            .map(|c| c.read_q_len())
                            .collect::<Vec<_>>(),
                        self.ctrls
                            .iter()
                            .map(|c| c.write_q_len())
                            .collect::<Vec<_>>(),
                        self.deliveries.len(),
                        self.cores
                            .iter()
                            .map(|c| c.is_finished())
                            .collect::<Vec<_>>(),
                    );
                }
                // pcmap-lint: allow(manual-time-advance, reason = "the engine crawl step itself: when no component publishes a horizon the loop single-steps")
                now = Cycle(now.0 + 1);
            } else {
                self.crawl_steps = 0;
                now = next;
            }
            if now.0 > self.cfg.max_mem_cycles {
                break;
            }
        }

        for (ch, ctrl) in self.ctrls.iter_mut().enumerate() {
            pcmap_prof::set_channel(ch);
            ctrl.settle(Cycle::MAX);
        }
        pcmap_prof::note_run_cycles(now.0);
        self.report(now)
    }

    fn deliver(&mut self, d: Delivery, _now: Cycle) {
        if let Some(gate) = self.gate.as_mut() {
            gate.note_complete(d.core, d.is_read, d.when);
        }
        if !d.is_read {
            return;
        }
        let cpu_when = mem_to_cpu(d.when, &self.cfg.cpu);
        self.cores[d.core].read_returned(cpu_when);
        self.awaiting_delivery[d.core] = false;
        // The returned data may unblock the core immediately.
        self.core_due[d.core] = true;
        if d.failed {
            self.registry.add(self.m_failed, 1);
        }
        if d.corrupted {
            // The deferred check proved the consumed line bad: squash
            // unconditionally (no consumed-before-check coin flip) at the
            // check's completion time. Replaces the probabilistic RoW
            // accounting below for this delivery — one squash per read.
            let vd = d.verify_done.unwrap_or(d.when);
            let (at, penalty) = self.rollback[d.core].on_corruption(vd);
            let cpu_at = mem_to_cpu(at, &self.cfg.cpu);
            self.cores[d.core].rollback(cpu_at, penalty);
            self.ctrls[d.chan].note_rollback(at, d.via_row, d.verify_done.is_some());
            self.registry.add(self.m_rollbacks, 1);
            self.events.record(Event {
                at,
                req: NO_REQ,
                bank: BankId(0),
                kind: EventKind::Rollback,
            });
            return;
        }
        if d.via_row {
            if let Some(vd) = d.verify_done {
                if let Some((at, penalty)) = self.rollback[d.core].on_row_read(vd) {
                    let cpu_at = mem_to_cpu(at, &self.cfg.cpu);
                    self.cores[d.core].rollback(cpu_at, penalty);
                    self.ctrls[d.chan].note_rollback(at, d.via_row, d.verify_done.is_some());
                    self.registry.add(self.m_rollbacks, 1);
                    self.events.record(Event {
                        at,
                        req: NO_REQ,
                        bank: BankId(0),
                        kind: EventKind::Rollback,
                    });
                }
            }
        }
    }

    fn push_completion(&mut self, chan: usize, comp: Completion) {
        self.deliveries.push(Reverse(Delivery {
            when: comp.done,
            core: comp.core.index(),
            is_read: comp.is_read,
            via_row: comp.via_row,
            verify_done: comp.verify_done,
            failed: comp.failed,
            corrupted: comp.corrupted,
            chan,
        }));
    }

    fn poll_cores(&mut self, now: Cycle) {
        let cpu_now = mem_to_cpu(now, &self.cfg.cpu);
        for i in 0..self.cores.len() {
            // Poll only when due: a poll advances the core's local clock
            // (`CoreModel::poll` maxes it with `cpu_now`), so gating it
            // identically in both engines is what keeps per-core stall
            // accounting byte-identical between them.
            if !(self.core_due[i] || self.core_next[i].is_some_and(|t| t <= now)) {
                continue;
            }
            self.core_due[i] = false;
            self.core_next[i] = None;
            loop {
                if self.cores[i].needs_op() {
                    if self.issued_per_core[i] >= self.budget_per_core {
                        self.cores[i].supply(None);
                    } else {
                        let op = self.streams[i].next_op();
                        match op {
                            StreamOp::Compute(n) => self.cores[i].supply(Some(WorkOp::Compute(n))),
                            StreamOp::Read(_) => {
                                self.op_details[i] = Some(op);
                                self.cores[i].supply(Some(WorkOp::Read));
                            }
                            StreamOp::Write { .. } => {
                                self.op_details[i] = Some(op);
                                self.cores[i].supply(Some(WorkOp::Write));
                            }
                        }
                    }
                    continue;
                }
                match self.cores[i].poll(cpu_now) {
                    CoreAction::WantRead => {
                        if !self.try_issue(i, true, now) {
                            break;
                        }
                    }
                    CoreAction::WantWrite => {
                        if !self.try_issue(i, false, now) {
                            break;
                        }
                    }
                    CoreAction::BusyUntil(t) => {
                        if t > cpu_now {
                            // Next poll that matters: the first memory
                            // cycle at or past the burst's end.
                            self.core_next[i] =
                                Some(cpu_to_mem(t, &self.cfg.cpu).max(Cycle(now.0 + 1)));
                            break;
                        }
                        // The compute burst ended exactly now; loop to get
                        // the next op (needs_op branch above).
                        if !self.cores[i].needs_op() {
                            self.core_next[i] = Some(Cycle(now.0 + 1));
                            break;
                        }
                    }
                    CoreAction::StalledOnRead => {
                        self.awaiting_delivery[i] = true;
                        break;
                    }
                    CoreAction::Done => {
                        self.awaiting_delivery[i] = self.cores[i].outstanding_reads() > 0;
                        break;
                    }
                }
            }
        }
    }

    fn try_issue(&mut self, i: usize, is_read: bool, now: Cycle) -> bool {
        // Serve-tier admission (DESIGN.md §16): a deferred request is
        // charged to the core exactly like a full controller queue, so
        // both engines re-poll it at the gate's wake cycle.
        if let Some(gate) = self.gate.as_mut() {
            if let GateDecision::Defer(until) = gate.admit(i, is_read, now) {
                self.registry.add(self.m_retries, 1);
                let retry_cpu = mem_to_cpu(until.max(Cycle(now.0 + 1)), &self.cfg.cpu).max(1);
                if is_read {
                    self.cores[i].read_blocked(retry_cpu);
                } else {
                    self.cores[i].write_blocked(retry_cpu);
                }
                self.core_next[i] =
                    Some(cpu_to_mem(self.cores[i].now(), &self.cfg.cpu).max(Cycle(now.0 + 1)));
                return false;
            }
        }
        let (addr, dirty) = match self.op_details[i] {
            Some(StreamOp::Read(a)) => (a, None),
            Some(StreamOp::Write { addr, dirty }) => (addr, Some(dirty)),
            _ => unreachable!("core wants a memory op but none is staged"),
        };
        debug_assert_eq!(is_read, dirty.is_none());
        let loc = self.cfg.org.decode(addr);
        let ch = loc.channel.index();
        let id = ReqId(self.next_req);

        let kind = if let Some(mask) = dirty {
            // Fabricate contents differing from storage in exactly `mask`.
            let stored = self.ctrls[ch].rank().read_line(loc.bank, loc.row, loc.col);
            let mut data = stored.data;
            for w in mask.iter() {
                let mut flip = self.data_rng.next_u64();
                if flip == 0 {
                    flip = 1;
                }
                data.set_word(w, stored.data.word(w) ^ flip);
            }
            ReqKind::Write { data }
        } else {
            ReqKind::Read
        };

        let req = MemRequest {
            id,
            kind,
            line: addr.line(),
            loc,
            core: CoreId(i as u8),
            arrival: now,
        };

        // Enqueue may reserve chip occupancy (forwarded reads issue
        // inline), so the channel context must be current here too.
        pcmap_prof::set_channel(ch);
        let outcome = if is_read {
            self.ctrls[ch].enqueue_read(req, now).map(|fwd| {
                self.cores[i].read_issued();
                if let Some(comp) = fwd {
                    self.push_completion(ch, comp);
                }
            })
        } else {
            self.ctrls[ch].enqueue_write(req, now).map(|()| {
                self.cores[i].write_issued();
            })
        };

        match outcome {
            Ok(()) => {
                self.next_req += 1;
                self.issued_per_core[i] += 1;
                self.op_details[i] = None;
                self.registry.add(self.m_requests, 1);
                true
            }
            Err(_) => {
                // The queue bounced a request the gate admitted: unwind
                // the admission so the serve ledger stays conserved.
                if let Some(gate) = self.gate.as_mut() {
                    gate.note_rejected(i, is_read, now);
                }
                self.registry.add(self.m_retries, 1);
                let retry = self.ctrls[ch]
                    .next_wake(now)
                    .unwrap_or(Cycle(now.0 + 8))
                    .max(Cycle(now.0 + 1));
                let retry_cpu = mem_to_cpu(retry, &self.cfg.cpu).max(1);
                if is_read {
                    self.cores[i].read_blocked(retry_cpu);
                } else {
                    self.cores[i].write_blocked(retry_cpu);
                }
                // The core's clock just advanced to its retry point; poll
                // it again at the first memory cycle that reaches it.
                self.core_next[i] =
                    Some(cpu_to_mem(self.cores[i].now(), &self.cfg.cpu).max(Cycle(now.0 + 1)));
                false
            }
        }
    }

    /// Channels that can make progress at exactly `now` — the epoch only
    /// pays pool-dispatch overhead when at least two have work (dispatch
    /// choice never changes state: every channel is stepped either way).
    fn channels_due(&self, now: Cycle) -> usize {
        self.ctrls
            .iter()
            .filter(|c| c.next_tick().is_some_and(|w| w <= now))
            .count()
    }

    fn finished(&self, _now: Cycle) -> bool {
        self.cores.iter().all(|c| c.is_finished())
            && self.deliveries.is_empty()
            && self.ctrls.iter().all(|c| c.next_tick().is_none())
    }

    /// Per-channel metric snapshots, each augmented with the channel's
    /// drain count (tracked by the controller, not `CtrlStats`).
    fn channel_snapshots(&self) -> Vec<MetricsSnapshot> {
        self.ctrls
            .iter()
            .map(|ctrl| {
                let mut s = ctrl.stats().snapshot();
                s.set_counter("drains_started", ctrl.drains_started());
                s.set_counter("invariants_checked", ctrl.invariants_checked());
                s.set_counter("invariant_violations", ctrl.invariant_violations());
                s
            })
            .collect()
    }

    fn report(&self, now: Cycle) -> RunReport {
        // Every controller-side number below comes out of the mergeable
        // snapshots — the same stream any telemetry consumer sees.
        let channels = self.channel_snapshots();
        let mut merged = MetricsSnapshot::new();
        for ch in &channels {
            merged.merge(ch);
        }

        let mut wear_imb = 0.0;
        let mut energy = pcmap_device::EnergyMeter::new();
        let mut lat_hist = LatencyHistogram::new();
        let mut write_series = WindowedSeries::new(SERIES_WINDOW);
        let mut irlp_series = WindowedSeries::new(SERIES_WINDOW);
        for ctrl in &self.ctrls {
            let e = ctrl.rank().energy();
            energy.record_read(e.bits_read);
            energy.record_write(e.bits_set, e.bits_reset);
            wear_imb = f64::max(wear_imb, ctrl.rank().wear().imbalance());
            write_series.merge(&ctrl.stats().write_series);
            for &(end, sample) in ctrl.stats().irlp.timed_samples() {
                irlp_series.record(end.0, sample);
            }
        }
        if let Some(h) = merged.histogram("read_latency") {
            lat_hist.merge(h);
        }

        let reads = merged.counter("reads_done");
        let writes = merged.counter("writes_done");
        let lat_sum = merged.counter("read_latency_sum") as f64;
        let delayed = merged.counter("reads_delayed_by_write");
        let mut hist = [0u64; 9];
        for (i, h) in hist.iter_mut().enumerate() {
            *h = merged.counter(&format!("essential_words_{i}"));
        }
        let total_hist: u64 = hist.iter().sum();
        let mean_essential = if total_hist == 0 {
            0.0
        } else {
            hist.iter()
                .enumerate()
                .map(|(i, &n)| i as u64 * n)
                .sum::<u64>() as f64
                / total_hist as f64
        };
        let irlp_samples = merged.counter("irlp_samples");
        let irlp_sum = merged.gauge("irlp_sum").unwrap_or(0.0);
        let irlp_max = merged.gauge("irlp_max").unwrap_or(0.0);
        let instructions: u64 = self.cores.iter().map(|c| c.stats().retired).sum();
        let cpu_cycles = self.cores.iter().map(|c| c.now()).max().unwrap_or(0);
        let rollbacks: u64 = self.cores.iter().map(|c| c.stats().rollbacks).sum();
        let consumed: u64 = self
            .rollback
            .iter()
            .map(|m| (m.consumed_fraction() * m.row_reads() as f64).round() as u64)
            .sum();
        let mut cores = MetricsSnapshot::new();
        for c in &self.cores {
            cores.merge(&c.stats().snapshot());
        }
        let events_dropped =
            self.events.dropped() + self.ctrls.iter().map(|c| c.events().dropped()).sum::<u64>();
        let lifetrace_dropped: u64 = self.ctrls.iter().map(|c| c.lifetrace().dropped()).sum();
        let lifecycle = if self.ctrls.iter().any(|c| c.lifetrace().enabled()) {
            Some(LifecycleReport::gather(
                self.ctrls.iter().map(|c| c.lifetrace()),
            ))
        } else {
            None
        };
        RunReport {
            kind: self.cfg.kind,
            workload: self.workload_name.clone(),
            mem_cycles: now.0,
            instructions,
            cpu_cycles,
            reads_completed: reads,
            writes_completed: writes,
            mean_read_latency: if reads == 0 {
                0.0
            } else {
                lat_sum / reads as f64
            },
            p50_read_latency: if reads == 0 {
                0
            } else {
                lat_hist.percentile(50.0)
            },
            p95_read_latency: if reads == 0 {
                0
            } else {
                lat_hist.percentile(95.0)
            },
            p99_read_latency: if reads == 0 {
                0
            } else {
                lat_hist.percentile(99.0)
            },
            delayed_read_fraction: if reads == 0 {
                0.0
            } else {
                delayed as f64 / reads as f64
            },
            irlp_mean: if irlp_samples == 0 {
                0.0
            } else {
                irlp_sum / irlp_samples as f64
            },
            irlp_max,
            write_throughput: if now.0 == 0 {
                0.0
            } else {
                writes as f64 * 1000.0 / now.0 as f64
            },
            mean_essential_words: mean_essential,
            essential_histogram: hist,
            reads_via_row: merged.counter("reads_via_row"),
            wow_overlaps: merged.counter("wow_overlaps"),
            rollbacks,
            consumed_before_check: consumed,
            reads_forwarded: merged.counter("reads_forwarded"),
            row_blocked_multi: merged.counter("row_blocked_multi_busy"),
            row_blocked_pcc: merged.counter("row_blocked_pcc_busy"),
            wr_blocked: (
                merged.counter("wr_blocked_data"),
                merged.counter("wr_blocked_ecc"),
                merged.counter("wr_blocked_pcc"),
            ),
            reads_deferred_only: merged.counter("reads_deferred_only"),
            drains: merged.counter("drains_started"),
            ecc_corrected: merged.counter("ecc_corrected"),
            ecc_uncorrectable: merged.counter("ecc_uncorrectable"),
            faults_injected: merged.counter("faults_injected"),
            faults_corrected: merged.counter("faults_corrected"),
            faults_reconstructed: merged.counter("faults_reconstructed"),
            fault_retries: merged.counter("fault_retries"),
            reads_failed: merged.counter("reads_failed"),
            watchdog_trips: merged.counter("watchdog_trips"),
            degraded_enters: merged.counter("degraded_enters"),
            degraded_exits: merged.counter("degraded_exits"),
            degraded_cycles: merged.counter("degraded_cycles"),
            silent_corruptions: merged.counter("silent_corruptions"),
            corruption_rollbacks: merged.counter("corruption_rollbacks"),
            energy_dynamic_nj: energy.dynamic_nj(&pcmap_device::EnergyParams::default()),
            energy_total_nj: energy.total_nj(
                &pcmap_device::EnergyParams::default(),
                Cycle(now.0).as_nanos() * self.ctrls.len() as f64,
            ),
            wear_imbalance: wear_imb,
            invariants_checked: merged.counter("invariants_checked"),
            invariant_violations: merged.counter("invariant_violations"),
            events_dropped,
            lifetrace_dropped,
            lifecycle,
            serve: self.gate.as_ref().map(|g| g.summary()),
            channels,
            cores,
            sim: self.registry.snapshot(),
            read_latency_hist: lat_hist,
            write_series,
            irlp_series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_workloads::catalog;

    fn small_run(kind: SystemKind, requests: u64) -> RunReport {
        let wl = catalog::by_name("streamcluster").unwrap();
        let cfg = SimConfig::paper_default(kind).with_requests(requests);
        System::new(cfg, wl).run()
    }

    #[test]
    fn baseline_completes_all_requests() {
        let r = small_run(SystemKind::Baseline, 800);
        assert!(r.reads_completed + r.writes_completed >= 790, "{r:?}");
        assert!(r.mem_cycles > 0);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn pcmap_completes_all_requests() {
        let r = small_run(SystemKind::RwowRde, 800);
        assert!(r.reads_completed + r.writes_completed >= 790, "{r:?}");
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = small_run(SystemKind::RwowNr, 600);
        let b = small_run(SystemKind::RwowNr, 600);
        assert_eq!(a.mem_cycles, b.mem_cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.essential_histogram, b.essential_histogram);
        assert_eq!(a.reads_via_row, b.reads_via_row);
    }

    #[test]
    fn same_request_stream_across_kinds() {
        let a = small_run(SystemKind::Baseline, 600);
        let b = small_run(SystemKind::RwowRde, 600);
        // Identical workload injection: same request counts.
        assert_eq!(
            a.reads_completed + a.writes_completed,
            b.reads_completed + b.writes_completed
        );
    }

    #[test]
    fn baseline_irlp_close_to_mean_essential_words() {
        let r = small_run(SystemKind::Baseline, 1200);
        assert!(r.irlp_mean > 0.0);
        // The baseline's write windows contain (almost) only the write's
        // own essential chips.
        assert!(
            (r.irlp_mean - r.mean_essential_words).abs() < 0.6,
            "irlp {} vs essential {}",
            r.irlp_mean,
            r.mean_essential_words
        );
    }

    #[test]
    fn telemetry_does_not_change_simulation() {
        let wl = catalog::by_name("streamcluster").unwrap();
        let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(600);
        let off = System::new(cfg.clone(), wl.clone()).run();
        let mut traced = System::new(cfg, wl);
        traced.enable_tracing();
        let on = traced.run();
        assert_eq!(off.mem_cycles, on.mem_cycles);
        assert_eq!(off.instructions, on.instructions);
        assert_eq!(off.cpu_cycles, on.cpu_cycles);
        assert_eq!(off.reads_completed, on.reads_completed);
        assert_eq!(off.writes_completed, on.writes_completed);
        assert_eq!(off.essential_histogram, on.essential_histogram);
        assert_eq!(off.reads_via_row, on.reads_via_row);
        assert_eq!(off.rollbacks, on.rollbacks);
    }

    #[test]
    fn profiling_does_not_change_simulation() {
        // The determinism contract for pcmap-prof (ISSUE 6 / DESIGN.md
        // §12): enabling spans, counters, occupancy, and trace capture
        // must leave the RunReport byte-identical — the profiler observes
        // wall time and occupancy, never simulated state.
        let wl = catalog::by_name("streamcluster").unwrap();
        let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(600);
        let off = System::new(cfg.clone(), wl.clone()).run();
        pcmap_prof::enable();
        pcmap_prof::enable_trace();
        let on = System::new(cfg.clone(), wl.clone()).run();
        // Parallel engine under profiling too: same bytes again.
        let mut pool = Pool::new(4);
        let on_par = System::new(cfg, wl).run_parallel(&mut pool);
        pcmap_prof::disable_trace();
        pcmap_prof::disable();
        assert_eq!(
            off.to_json().to_json_string(),
            on.to_json().to_json_string(),
            "profiling must be determinism-neutral (serial engine)"
        );
        assert_eq!(
            off.to_json().to_json_string(),
            on_par.to_json().to_json_string(),
            "profiling must be determinism-neutral (parallel engine)"
        );
        // And it actually observed the runs: occupancy was recorded.
        let (runs, cycles) = pcmap_prof::run_totals();
        assert!(runs >= 2, "profiler saw {runs} runs");
        assert!(cycles > 0);
    }

    #[test]
    fn lifecycle_tracing_is_determinism_neutral() {
        // ISSUE 7 determinism contract: the lifecycle tracer observes the
        // schedule, it never perturbs it. With tracing enabled the
        // RunReport JSON must stay byte-identical (the full timeline
        // report lives outside `to_json`; `lifetrace_dropped` is 0 here).
        let wl = catalog::by_name("streamcluster").unwrap();
        let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(600);
        let off = System::new(cfg.clone(), wl.clone()).run();
        let mut traced = System::new(cfg, wl);
        traced.enable_lifecycle_tracing();
        let on = traced.run();
        assert!(on.lifecycle.is_some(), "tracing was enabled");
        assert!(off.lifecycle.is_none(), "tracing was not enabled");
        assert_eq!(
            off.to_json().to_json_string(),
            on.to_json().to_json_string(),
            "lifecycle tracing must be determinism-neutral"
        );
    }

    #[test]
    fn lifecycle_conserves_every_request_and_reconciles_latency() {
        // Conservation invariant: for every traced request the interval
        // timeline partitions [arrival, retire) exactly — no gaps, no
        // overlaps, no unattributed cycles.
        let wl = catalog::by_name("streamcluster").unwrap();
        let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(800);
        let mut sys = System::new(cfg, wl);
        sys.enable_lifecycle_tracing();
        let r = sys.run();
        let lc = r.lifecycle.as_ref().expect("tracing was on");
        assert!(lc.merged.requests > 0);
        assert_eq!(lc.merged.violations, 0);
        assert_eq!(r.lifetrace_dropped, 0);
        for (ch, t) in &lc.timelines {
            assert!(
                t.conserves(),
                "req {} on ch{ch} does not conserve: {t:?}",
                t.req
            );
        }
        // Cross-check against the controllers' own accounting: the tracer
        // saw every completed read and the same summed read latency.
        let merged = r.merged_channels();
        assert_eq!(lc.merged.reads, merged.counter("reads_done"));
        assert_eq!(
            lc.merged.read_latency_cycles,
            merged.counter("read_latency_sum")
        );
    }

    #[test]
    fn stall_breakdown_reconciles_with_lifecycle_attempts() {
        // ISSUE 7 satellite: the aggregate stall counters and the causal
        // tracer are two independent views of the same blocked scheduling
        // attempts; on every class they share they must agree exactly.
        let wl = catalog::by_name("canneal").unwrap();
        let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(1500);
        let mut sys = System::new(cfg, wl);
        sys.enable_lifecycle_tracing();
        let r = sys.run();
        let a = &r.lifecycle.as_ref().expect("tracing was on").merged;
        let stalls = StallBreakdown::from_snapshot(&r.merged_channels());
        assert_eq!(a.attempt_count("multi_busy/read"), stalls.multi_busy);
        assert_eq!(a.attempt_count("pcc_busy/read"), stalls.pcc_busy);
        assert_eq!(
            a.attempt_count("wow_set_conflict/write"),
            stalls.write_data_blocked
        );
        assert_eq!(a.attempt_count("ecc_busy/write"), stalls.write_ecc_blocked);
        assert_eq!(a.attempt_count("pcc_busy/write"), stalls.write_pcc_blocked);
        // The scenario must actually exercise the shared classes.
        assert!(stalls.total() > 0, "{stalls:?}");
    }

    #[test]
    fn report_reconciles_with_channel_snapshots() {
        let r = small_run(SystemKind::RwowRde, 600);
        assert_eq!(r.channels.len(), 4);
        let merged = r.merged_channels();
        assert_eq!(merged.counter("reads_done"), r.reads_completed);
        assert_eq!(merged.counter("writes_done"), r.writes_completed);
        assert_eq!(merged.counter("reads_via_row"), r.reads_via_row);
        assert_eq!(merged.counter("drains_started"), r.drains);
        assert_eq!(
            merged.histogram("read_latency").unwrap().count(),
            r.read_latency_hist.count()
        );
        assert_eq!(r.cores.counter("retired"), r.instructions);
        assert_eq!(r.sim.counter("rollbacks_charged"), r.rollbacks);
        // Windowed write series totals the completed writes.
        assert_eq!(r.write_series.total_count(), r.writes_completed);
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let r = small_run(SystemKind::RwowRde, 600);
        let text = r.to_json().to_json_string();
        let parsed = pcmap_obs::json::parse(&text).expect("report JSON parses");
        assert_eq!(
            parsed.get("workload"),
            Some(&Value::Str("streamcluster".into()))
        );
        assert_eq!(
            parsed.get("reads_completed"),
            Some(&Value::U64(r.reads_completed))
        );
        assert!(parsed.get("p95_read_latency").is_some());
        assert!(parsed.get("irlp_mean").is_some());
        assert!(parsed.get("rollback_rate").is_some());
        assert!(parsed.get("stalls").is_some());
        let chans = parsed.get("channels").expect("channels present");
        if let Value::Arr(items) = chans {
            assert_eq!(items.len(), 4);
            assert!(items[0].get("counters").is_some());
        } else {
            panic!("channels must be a JSON array");
        }
    }

    #[test]
    fn invariant_checker_green_on_healthy_runs() {
        for kind in [
            SystemKind::Baseline,
            SystemKind::RwowNr,
            SystemKind::RwowRde,
        ] {
            let r = small_run(kind, 800);
            assert_eq!(r.invariant_violations, 0, "{kind:?}");
            if cfg!(debug_assertions) {
                assert!(r.invariants_checked > 0, "{kind:?} checker never ran");
            }
        }
    }

    fn storm_run(kind: SystemKind, rate: f64, requests: u64) -> RunReport {
        let wl = catalog::by_name("canneal").unwrap();
        let cfg = SimConfig::paper_default(kind)
            .with_requests(requests)
            .with_faults(FaultConfig::storm(rate, 0xBAD5EED));
        System::new(cfg, wl).run()
    }

    #[test]
    fn fault_storm_recovers_every_error_visibly() {
        let r = storm_run(SystemKind::RwowRde, 0.05, 1200);
        assert!(r.faults_injected > 0, "storm must inject faults");
        assert_eq!(r.silent_corruptions, 0, "no silent corruption, ever");
        assert_eq!(r.invariant_violations, 0, "{r:?}");
        // Every uncorrectable error must surface through a visible path:
        // correction, reconstruction, retry, failure, or rollback.
        let visible = r.faults_corrected
            + r.faults_reconstructed
            + r.fault_retries
            + r.reads_failed
            + r.corruption_rollbacks;
        assert!(visible > 0, "injected faults left no visible trace: {r:?}");
        // Requests still complete under the storm.
        assert!(r.reads_completed + r.writes_completed >= 1100, "{r:?}");
    }

    #[test]
    fn fault_storm_is_deterministic() {
        let a = storm_run(SystemKind::RwowRde, 0.03, 800);
        let b = storm_run(SystemKind::RwowRde, 0.03, 800);
        assert_eq!(a.mem_cycles, b.mem_cycles);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.fault_retries, b.fault_retries);
        assert_eq!(a.corruption_rollbacks, b.corruption_rollbacks);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(
            a.to_json().to_json_string(),
            b.to_json().to_json_string(),
            "fault runs must be byte-reproducible"
        );
    }

    #[test]
    fn disabled_faults_leave_runs_byte_identical() {
        let wl = catalog::by_name("streamcluster").unwrap();
        let base = SimConfig::paper_default(SystemKind::RwowRde).with_requests(600);
        let off = System::new(base.clone(), wl.clone()).run();
        let zero = System::new(base.with_faults(FaultConfig::disabled()), wl).run();
        assert_eq!(
            off.to_json().to_json_string(),
            zero.to_json().to_json_string()
        );
        assert_eq!(off.faults_injected, 0);
        assert_eq!(off.corruption_rollbacks, 0);
    }

    #[test]
    fn baseline_survives_fault_storm() {
        let r = storm_run(SystemKind::Baseline, 0.05, 800);
        assert_eq!(r.silent_corruptions, 0);
        assert_eq!(r.invariant_violations, 0);
        assert!(r.faults_injected > 0);
        assert!(r.reads_completed + r.writes_completed >= 700, "{r:?}");
    }

    #[test]
    fn pcmap_beats_baseline_on_read_latency_and_ipc() {
        // Needs a memory-intensive workload for contention to matter.
        let wl = catalog::by_name("canneal").unwrap();
        let run = |kind: SystemKind| {
            System::new(
                SimConfig::paper_default(kind).with_requests(4_000),
                wl.clone(),
            )
            .run()
        };
        let base = run(SystemKind::Baseline);
        let rde = run(SystemKind::RwowRde);
        assert!(
            rde.mean_read_latency < base.mean_read_latency,
            "RDE {} vs baseline {}",
            rde.mean_read_latency,
            base.mean_read_latency
        );
        assert!(
            rde.ipc() > base.ipc(),
            "RDE {} vs baseline {}",
            rde.ipc(),
            base.ipc()
        );
        assert!(rde.irlp_mean > base.irlp_mean, "IRLP must improve");
        assert!(rde.write_throughput > base.write_throughput);
    }
}
