//! Engine selection and the discrete-event scheduler heap.
//!
//! The simulator has two execution engines over one component model
//! (DESIGN.md §14):
//!
//! - [`Engine::Cycle`] — the original loop: every epoch re-scans all
//!   controllers ([`pcmap_ctrl::Controller::next_wake`]) and cores to find
//!   the next cycle with pending work.
//! - [`Engine::Event`] — a binary-heap scheduler over the components'
//!   cached [`pcmap_ctrl::Controller::next_tick`] horizons; the heap is
//!   updated only when a horizon changes, so an epoch costs `O(log n)`
//!   instead of `O(channels + cores)`.
//!
//! Both engines visit exactly the same set of cycles: components define a
//! `step` at a non-due cycle to be a structural no-op, so the jump target
//! is the same minimum either way and the resulting
//! [`crate::RunReport`] is byte-identical (`crates/sim/tests/engine_equiv.rs`
//! proves this on every golden scenario).

use pcmap_types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::str::FromStr;

/// Which execution engine drives [`crate::System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Scan-based epoch loop (the original engine).
    Cycle,
    /// Binary-heap discrete-event scheduler.
    Event,
}

impl Engine {
    /// Engine selected by the `PCMAP_ENGINE` environment variable
    /// (`cycle` or `event`); unset or empty means [`Engine::Event`].
    #[must_use]
    pub fn from_env() -> Self {
        // pcmap-lint: allow(nondet-taint, reason = "PCMAP_ENGINE selects between the two engines whose equivalence the pardiff/differential suites prove; either choice yields byte-identical results")
        match std::env::var("PCMAP_ENGINE") {
            Ok(s) if !s.is_empty() => s
                .parse()
                .unwrap_or_else(|e: String| panic!("PCMAP_ENGINE: {e}")),
            _ => Self::Event,
        }
    }

    /// Stable label (flag value / report field).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Cycle => "cycle",
            Self::Event => "event",
        }
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cycle" => Ok(Self::Cycle),
            "event" => Ok(Self::Event),
            other => Err(format!("unknown engine {other:?} (use cycle|event)")),
        }
    }
}

/// What produced a pending tick. Channels outrank cores at equal cycles,
/// mirroring the serial scan order of the cycle engine (channels are
/// scanned before cores when computing the next epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TickSource {
    /// A memory-channel controller (index into `System::ctrls`).
    Channel(usize),
    /// A CPU core's local clock (index into `System::cores`).
    Core(usize),
}

/// A pending wake-up: component `source` has work at cycle `at`.
///
/// Ordering is `(at, source)` — earliest cycle first, then channels in
/// index order before cores in index order. The scheduler only consumes
/// the minimum `at`, but a total, deterministic order keeps heap
/// behaviour independent of insertion history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Tick {
    /// Cycle at which the source next has work.
    pub at: Cycle,
    /// Component owing the work.
    pub source: TickSource,
}

/// Min-heap of component horizons with lazy invalidation.
///
/// Each source has at most one *current* horizon (`last`); superseded
/// heap entries are left in place and discarded when they surface. A
/// horizon is re-pushed only when it changes, so a quiescent component
/// costs nothing per epoch.
#[derive(Debug)]
pub struct EventHeap {
    heap: BinaryHeap<Reverse<Tick>>,
    /// Current horizon per source (channels first, then cores).
    last: Vec<Option<Cycle>>,
    channels: usize,
}

impl EventHeap {
    /// An empty heap for `channels` controllers and `cores` CPU cores.
    #[must_use]
    pub fn new(channels: usize, cores: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            last: vec![None; channels + cores],
            channels,
        }
    }

    fn slot(&self, source: TickSource) -> usize {
        match source {
            TickSource::Channel(c) => c,
            TickSource::Core(i) => self.channels + i,
        }
    }

    /// Records `source`'s current horizon. Pushes only on change; `None`
    /// retires the source until its next update.
    pub fn update(&mut self, source: TickSource, tick: Option<Cycle>) {
        let slot = self.slot(source);
        if self.last[slot] == tick {
            return;
        }
        self.last[slot] = tick;
        if let Some(at) = tick {
            self.heap.push(Reverse(Tick { at, source }));
        }
    }

    /// Earliest current horizon, or [`Cycle::MAX`] when every source is
    /// idle. Lazily discards superseded entries.
    pub fn earliest(&mut self) -> Cycle {
        while let Some(&Reverse(t)) = self.heap.peek() {
            if self.last[self.slot(t.source)] == Some(t.at) {
                return t.at;
            }
            self.heap.pop();
        }
        Cycle::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parses_and_labels() {
        assert_eq!("cycle".parse::<Engine>().unwrap(), Engine::Cycle);
        assert_eq!("event".parse::<Engine>().unwrap(), Engine::Event);
        assert!("turbo".parse::<Engine>().is_err());
        assert_eq!(Engine::Cycle.label(), "cycle");
        assert_eq!(Engine::Event.label(), "event");
    }

    #[test]
    fn equal_cycle_ticks_order_channels_before_cores_by_index() {
        let at = Cycle(10);
        let mut ticks = [
            Tick {
                at,
                source: TickSource::Core(1),
            },
            Tick {
                at,
                source: TickSource::Channel(3),
            },
            Tick {
                at,
                source: TickSource::Core(0),
            },
            Tick {
                at,
                source: TickSource::Channel(0),
            },
        ];
        ticks.sort();
        let order: Vec<TickSource> = ticks.iter().map(|t| t.source).collect();
        assert_eq!(
            order,
            vec![
                TickSource::Channel(0),
                TickSource::Channel(3),
                TickSource::Core(0),
                TickSource::Core(1),
            ]
        );
    }

    #[test]
    fn heap_returns_current_minimum_and_discards_stale_entries() {
        let mut h = EventHeap::new(2, 1);
        h.update(TickSource::Channel(0), Some(Cycle(50)));
        h.update(TickSource::Channel(1), Some(Cycle(30)));
        h.update(TickSource::Core(0), Some(Cycle(40)));
        assert_eq!(h.earliest(), Cycle(30));
        // Channel 1 moves later: its old entry is stale.
        h.update(TickSource::Channel(1), Some(Cycle(90)));
        assert_eq!(h.earliest(), Cycle(40));
        // Core retires entirely.
        h.update(TickSource::Core(0), None);
        assert_eq!(h.earliest(), Cycle(50));
        h.update(TickSource::Channel(0), None);
        h.update(TickSource::Channel(1), None);
        assert_eq!(h.earliest(), Cycle::MAX);
    }

    #[test]
    fn unchanged_horizon_is_not_repushed() {
        let mut h = EventHeap::new(1, 0);
        h.update(TickSource::Channel(0), Some(Cycle(7)));
        let len = h.heap.len();
        h.update(TickSource::Channel(0), Some(Cycle(7)));
        assert_eq!(h.heap.len(), len);
        assert_eq!(h.earliest(), Cycle(7));
    }
}
