//! Sweep-level parallelism: farming independent simulation runs to a
//! fixed-size worker pool.
//!
//! Every paper experiment is a sweep over (workload × system-kind ×
//! config) points whose runs share nothing — each builds its own
//! [`System`](crate::System) from a [`SimConfig`](crate::SimConfig) and a
//! cloned workload. [`SweepRunner`] exploits that: it maps the points over
//! a [`pcmap_par::Pool`] and hands results back **in input order**, so a
//! sweep's output (tables, JSON exports, golden numbers) is byte-identical
//! at every `--jobs` value, including the threadless `--jobs 1` serial
//! path.

use crate::experiments::EvalScale;
use crate::system::{RunReport, SimConfig, System};
use pcmap_core::SystemKind;
use pcmap_par::Pool;
use pcmap_workloads::catalog::Workload;

/// One independent simulation to run inside a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The fully-built run configuration.
    pub cfg: SimConfig,
    /// The workload to drive it with.
    pub workload: Workload,
}

impl SweepPoint {
    /// The standard experiment point: paper-default config for `kind` at
    /// `scale`, i.e. exactly what
    /// [`run_one`](crate::experiments::run_one) simulates.
    #[must_use]
    pub fn standard(workload: &Workload, kind: SystemKind, scale: EvalScale) -> Self {
        Self {
            cfg: SimConfig::paper_default(kind).with_requests(scale.requests),
            workload: workload.clone(),
        }
    }

    /// Runs this point to completion (serially; the sweep layer provides
    /// the parallelism).
    #[must_use]
    pub fn run(self) -> RunReport {
        System::new(self.cfg, self.workload).run()
    }
}

/// Farms independent runs to a fixed worker pool, emitting results in
/// input order.
pub struct SweepRunner {
    pool: Pool,
}

impl SweepRunner {
    /// A runner with `jobs` concurrent workers (`1` = serial, inline).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            pool: Pool::new(jobs),
        }
    }

    /// The configured concurrency.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// The underlying pool (for the intra-run channel engine,
    /// [`System::run_parallel`]).
    pub fn pool(&mut self) -> &mut Pool {
        &mut self.pool
    }

    /// Ordered parallel map over arbitrary sweep items: `out[i] =
    /// f(items[i])` regardless of which worker finished first.
    pub fn map<T, R, F>(&mut self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.pool.ordered_map(items, f)
    }

    /// Runs every point and returns the reports in input order.
    pub fn run_points(&mut self, points: Vec<SweepPoint>) -> Vec<RunReport> {
        self.map(points, SweepPoint::run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_workloads::catalog;

    #[test]
    fn sweep_results_are_input_ordered_and_job_count_invariant() {
        let scale = EvalScale {
            requests: 400,
            full_mt: false,
        };
        let points = || {
            vec![
                SweepPoint::standard(
                    &catalog::by_name("streamcluster").unwrap(),
                    SystemKind::RwowRde,
                    scale,
                ),
                SweepPoint::standard(
                    &catalog::by_name("dedup").unwrap(),
                    SystemKind::Baseline,
                    scale,
                ),
                SweepPoint::standard(
                    &catalog::by_name("streamcluster").unwrap(),
                    SystemKind::Baseline,
                    scale,
                ),
            ]
        };
        let serial = SweepRunner::new(1).run_points(points());
        let par = SweepRunner::new(3).run_points(points());
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.kind, p.kind, "input order preserved");
            assert_eq!(s.workload, p.workload);
            assert_eq!(
                s.to_json().to_json_string(),
                p.to_json().to_json_string(),
                "sweep output must not depend on the job count"
            );
        }
    }
}
