//! Equivalence harness for the parallel engines (DESIGN.md §9).
//!
//! The determinism contract: for every workload, system kind, scale, and
//! rollback mode, the parallel channel engine ([`System::run_parallel`])
//! and the sweep pool ([`SweepRunner`]) must produce `RunReport`s whose
//! [`RunReport::to_json`](pcmap_sim::RunReport::to_json) rendering is
//! **byte-identical** to the serial engine's — merged latency histograms,
//! windowed IRLP/throughput series, per-channel snapshots and all. Any
//! scheduling leak (heap insertion order, RNG stream sharing, snapshot
//! merge order) shows up here as a first-byte diff.

use pcmap_core::{RollbackMode, SystemKind};
use pcmap_par::Pool;
use pcmap_sim::{SimConfig, SweepPoint, SweepRunner, System};
use pcmap_workloads::catalog;

fn cfg(kind: SystemKind, requests: u64) -> SimConfig {
    SimConfig::paper_default(kind).with_requests(requests)
}

fn serial_json(c: &SimConfig, workload: &str) -> String {
    let wl = catalog::by_name(workload).expect("catalog workload");
    System::new(c.clone(), wl).run().to_json().to_json_string()
}

fn parallel_json(c: &SimConfig, workload: &str, jobs: usize) -> String {
    let wl = catalog::by_name(workload).expect("catalog workload");
    let mut pool = Pool::new(jobs);
    System::new(c.clone(), wl)
        .run_parallel(&mut pool)
        .to_json()
        .to_json_string()
}

/// The headline matrix: {baseline, PCMap} × {2 workloads} × {2 scales},
/// parallel channel engine at 4 workers vs the serial engine.
#[test]
fn channel_engine_json_is_byte_identical_to_serial() {
    for kind in [SystemKind::Baseline, SystemKind::RwowRde] {
        for workload in ["streamcluster", "canneal"] {
            for requests in [400u64, 1500] {
                let c = cfg(kind, requests);
                let serial = serial_json(&c, workload);
                let par = parallel_json(&c, workload, 4);
                assert_eq!(
                    serial, par,
                    "parallel != serial for {kind:?}/{workload}/{requests}"
                );
            }
        }
    }
}

/// Rollback accounting runs its own per-core RNG streams; the always-
/// faulty mode must stay on them regardless of which worker steps the
/// channel.
#[test]
fn channel_engine_matches_serial_under_rollback_accounting() {
    let c = cfg(SystemKind::RwowNr, 1200).with_rollback(RollbackMode::AlwaysFaulty);
    assert_eq!(serial_json(&c, "canneal"), parallel_json(&c, "canneal", 4));
}

/// Worker count must not matter — only `1` takes the threadless path, but
/// 2, 4, and 8 workers must all agree with it bit-for-bit.
#[test]
fn channel_engine_is_worker_count_invariant() {
    let c = cfg(SystemKind::RwowRde, 800);
    let serial = serial_json(&c, "streamcluster");
    for jobs in [1usize, 2, 4, 8] {
        assert_eq!(
            serial,
            parallel_json(&c, "streamcluster", jobs),
            "jobs = {jobs}"
        );
    }
}

/// A `--jobs 1` pool must be the serial path (no worker threads at all),
/// not merely equivalent to it.
#[test]
fn jobs_one_pool_is_threadless() {
    let pool = Pool::new(1);
    assert!(pool.is_serial());
    assert_eq!(pool.jobs(), 1);
}

/// Sweep-level parallelism: farming (workload × kind) `run_one` points to
/// 4 workers must reproduce the serial sweep byte-for-byte, in input
/// order.
#[test]
fn sweep_runner_json_is_byte_identical_and_input_ordered() {
    let points = || -> Vec<SweepPoint> {
        ["streamcluster", "canneal"]
            .iter()
            .flat_map(|w| {
                let wl = catalog::by_name(w).expect("catalog workload");
                [
                    SystemKind::Baseline,
                    SystemKind::RwowNr,
                    SystemKind::RwowRde,
                ]
                .into_iter()
                .map(move |k| SweepPoint {
                    cfg: cfg(k, 500),
                    workload: wl.clone(),
                })
            })
            .collect()
    };
    let serial: Vec<String> = SweepRunner::new(1)
        .run_points(points())
        .iter()
        .map(|r| r.to_json().to_json_string())
        .collect();
    let par: Vec<String> = SweepRunner::new(4)
        .run_points(points())
        .iter()
        .map(|r| r.to_json().to_json_string())
        .collect();
    assert_eq!(serial, par);
}

/// Profiling is a pure observer: a serial profiler-off run and a
/// parallel profiler-on run (spans, counters, occupancy, trace capture
/// all live) must still be byte-identical. This is the cross-engine
/// variant of `profiling_does_not_change_simulation` and the acceptance
/// gate for pcmap-prof's determinism-neutrality contract.
#[test]
fn profiled_parallel_run_is_byte_identical_to_unprofiled_serial() {
    let c = cfg(SystemKind::RwowRde, 1200);
    let baseline = serial_json(&c, "canneal");
    pcmap_prof::enable();
    pcmap_prof::enable_trace();
    let profiled = parallel_json(&c, "canneal", 4);
    pcmap_prof::disable_trace();
    pcmap_prof::disable();
    assert_eq!(
        baseline, profiled,
        "profiling leaked into the simulation state"
    );
}

/// The lifecycle tracer (ISSUE 7) is a pure observer too: a serial
/// untraced run and parallel traced runs at several worker counts must
/// all render byte-identical RunReport JSON. The full timeline report is
/// carried out-of-band (`RunReport::lifecycle`, excluded from
/// `to_json`), so the only JSON-visible tracer output is the
/// `lifetrace_dropped` counter — which must be 0 here.
#[test]
fn lifetraced_parallel_run_is_byte_identical_to_untraced_serial() {
    let c = cfg(SystemKind::RwowRde, 1200);
    let baseline = serial_json(&c, "canneal");
    let wl = catalog::by_name("canneal").expect("catalog workload");
    for jobs in [1usize, 4] {
        let mut pool = Pool::new(jobs);
        let mut sys = System::new(c.clone(), wl.clone());
        sys.enable_lifecycle_tracing();
        let r = sys.run_parallel(&mut pool);
        assert_eq!(r.lifetrace_dropped, 0);
        let lc = r.lifecycle.as_ref().expect("tracing was on");
        assert_eq!(lc.merged.violations, 0, "jobs = {jobs}");
        assert_eq!(
            baseline,
            r.to_json().to_json_string(),
            "lifecycle tracing leaked into the simulation at jobs = {jobs}"
        );
    }
}

/// Fault injection must not weaken the contract: each channel's
/// `FaultPlan` is channel-private state stepped in the same order by both
/// engines, so a seeded fault storm must stay byte-identical across
/// worker counts — recovery retries, watchdog trips, degradation windows,
/// corruption rollbacks and all.
#[test]
fn fault_storm_json_is_byte_identical_across_engines() {
    use pcmap_types::FaultConfig;
    for kind in [SystemKind::Baseline, SystemKind::RwowRde] {
        let c = cfg(kind, 1000).with_faults(FaultConfig::storm(0.04, 0xFEED));
        let serial = serial_json(&c, "canneal");
        for jobs in [2usize, 4] {
            assert_eq!(
                serial,
                parallel_json(&c, "canneal", jobs),
                "faulty run diverged for {kind:?} at jobs = {jobs}"
            );
        }
    }
}
