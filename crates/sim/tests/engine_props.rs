//! Property tests for the discrete-event scheduler (DESIGN.md §14).
//!
//! Three contracts back the engine-equivalence proof:
//!
//! 1. **`next_tick` monotonicity** — after a controller steps at `now`,
//!    its published horizon is strictly in the future (never `< now`, and
//!    never `== now`, else the engine would livelock re-visiting the
//!    same cycle).
//! 2. **No missed event** — single-stepping a component through every
//!    cycle between `now` and its claimed tick observes no state change:
//!    no completions, no queue movement, no counter drift. This is what
//!    makes skipping those cycles sound.
//! 3. **Heap pop-order stability** — equal-cycle ticks pop in a fixed
//!    total order (channels by index, then cores by index), so the
//!    schedule never depends on heap insertion history.

use pcmap_core::{build_controller, SystemKind};
use pcmap_ctrl::{Controller, MemRequest, ReqId, ReqKind};
use pcmap_sim::{EventHeap, Tick, TickSource};
use pcmap_types::{CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams, Xoshiro256};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Drives one controller with a random request soup, invoking `check`
/// after every step with `(ctrl, now)`.
fn drive(kind: SystemKind, seed: u64, ops: u64, mut check: impl FnMut(&mut dyn Controller, Cycle)) {
    let org = MemOrg::tiny();
    let mut ctrl = build_controller(
        kind,
        org,
        TimingParams::paper_default(),
        QueueParams::paper_default(),
        seed,
    );
    let mut rng = Xoshiro256::new(seed);
    let mut now = Cycle(0);
    for next_id in 1..=ops {
        // pcmap-lint: allow(manual-time-advance, reason = "property driver models request arrival times, not the engine clock")
        now = Cycle(now.0 + rng.next_below(60));
        let addr = PhysAddr::new(rng.next_below(64) * 64);
        let loc = org.decode(addr);
        let id = ReqId(next_id);
        if rng.chance(0.5) {
            let stored = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
            let mut data = stored;
            data.set_word(
                rng.next_below(8) as usize,
                rng.next_u64() | 1, // never a silent store by accident
            );
            let req = MemRequest {
                id,
                kind: ReqKind::Write { data },
                line: addr.line(),
                loc,
                core: CoreId(0),
                arrival: now,
            };
            let _ = ctrl.enqueue_write(req, now);
        } else {
            let req = MemRequest {
                id,
                kind: ReqKind::Read,
                line: addr.line(),
                loc,
                core: CoreId(0),
                arrival: now,
            };
            let _ = ctrl.enqueue_read(req, now);
        }
        ctrl.step(now);
        check(ctrl.as_mut(), now);
    }
    // Drain to idle, checking at every wake.
    while let Some(wake) = ctrl.next_wake(now) {
        now = wake;
        ctrl.step(now);
        check(ctrl.as_mut(), now);
        assert!(now.0 < 10_000_000, "scheduler failed to drain");
    }
}

const KINDS: [SystemKind; 3] = [
    SystemKind::Baseline,
    SystemKind::RwowNr,
    SystemKind::RwowRde,
];

proptest! {
    /// Contract 1: a freshly stepped controller never claims a horizon at
    /// or before the cycle it just ran.
    #[test]
    fn next_tick_is_strictly_in_the_future_after_step(seed: u64, kind_ix in 0usize..3) {
        drive(KINDS[kind_ix], seed, 60, |ctrl, now| {
            if let Some(t) = ctrl.next_tick() {
                prop_assert!(t > now, "next_tick {t:?} not beyond step cycle {now:?}");
            }
        });
    }

    /// Contract 2: every cycle strictly between a step and the claimed
    /// horizon is a structural no-op — stepping there produces no
    /// completions and moves no determinism-visible state.
    #[test]
    fn no_event_is_missed_between_step_and_claimed_tick(seed: u64, kind_ix in 0usize..3) {
        drive(KINDS[kind_ix], seed, 40, |ctrl, now| {
            let Some(tick) = ctrl.next_tick() else {
                return;
            };
            let before = (
                ctrl.read_q_len(),
                ctrl.write_q_len(),
                ctrl.stats().snapshot().to_json().to_json_string(),
            );
            // Bound the walk so pathological horizons don't stall the
            // suite; the first cycles after `now` are the risky ones.
            let walk_to = tick.0.min(now.0 + 200);
            for t in (now.0 + 1)..walk_to {
                let out = ctrl.step(Cycle(t));
                prop_assert!(
                    out.is_empty(),
                    "step at non-due cycle {t} produced {} completions (tick {tick:?})",
                    out.len()
                );
                prop_assert_eq!(ctrl.next_tick(), Some(tick), "horizon moved at {}", t);
            }
            let after = (
                ctrl.read_q_len(),
                ctrl.write_q_len(),
                ctrl.stats().snapshot().to_json().to_json_string(),
            );
            prop_assert_eq!(before, after, "non-due steps mutated controller state");
        });
    }

    /// Contract 3a: the scheduler heap pops equal-cycle ticks in a fixed
    /// total order — channels by index before cores by index — no matter
    /// the insertion order.
    #[test]
    fn tick_heap_pop_order_is_stable_for_equal_cycles(seed: u64, n in 2usize..24) {
        let mut rng = Xoshiro256::new(seed);
        let mut ticks: Vec<Tick> = (0..n)
            .map(|_| {
                let at = Cycle(rng.next_below(4)); // force collisions
                let source = if rng.chance(0.5) {
                    TickSource::Channel(rng.next_below(4) as usize)
                } else {
                    TickSource::Core(rng.next_below(8) as usize)
                };
                Tick { at, source }
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<Tick>> = ticks.iter().map(|&t| Reverse(t)).collect();
        let mut popped = Vec::new();
        while let Some(Reverse(t)) = heap.pop() {
            popped.push(t);
        }
        // The pop sequence is exactly the (at, channel-before-core, index)
        // sort of the inputs, independent of insertion history.
        ticks.sort();
        prop_assert_eq!(popped, ticks);
    }

    /// Contract 3b: `EventHeap::earliest` equals the model — the minimum
    /// over each source's *current* horizon — after any update sequence,
    /// including horizon moves and retirements.
    #[test]
    fn event_heap_matches_min_over_current_horizons(seed: u64, updates in 1usize..60) {
        let (channels, cores) = (3usize, 4usize);
        let mut h = EventHeap::new(channels, cores);
        let mut model: Vec<Option<Cycle>> = vec![None; channels + cores];
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..updates {
            let slot = rng.next_below((channels + cores) as u64) as usize;
            let source = if slot < channels {
                TickSource::Channel(slot)
            } else {
                TickSource::Core(slot - channels)
            };
            let tick = if rng.chance(0.2) {
                None
            } else {
                Some(Cycle(rng.next_below(500)))
            };
            h.update(source, tick);
            model[slot] = tick;
            let want = model.iter().flatten().min().copied().unwrap_or(Cycle::MAX);
            prop_assert_eq!(h.earliest(), want);
        }
    }
}
