//! Differential battery for the two execution engines (DESIGN.md §14).
//!
//! The equivalence contract: for every golden scenario (fig08 / fig10 /
//! tab04), fault regime, tracing configuration, and jobs count, the
//! discrete-event engine ([`pcmap_sim::Engine::Event`]) must reproduce
//! the cycle engine's ([`pcmap_sim::Engine::Cycle`]) `RunReport` JSON
//! **byte-for-byte**. Both engines run the same guarded component model
//! and jump to the same horizon minimum; any divergence — a component
//! whose non-due `step` is not a structural no-op, a horizon the heap
//! caches wrong, a per-visited-cycle counter — surfaces here as a
//! first-byte diff.

use pcmap_core::{RollbackMode, SystemKind};
use pcmap_par::Pool;
use pcmap_sim::{Engine, SimConfig, System};
use pcmap_types::FaultConfig;
use pcmap_workloads::catalog;

fn cfg(kind: SystemKind, requests: u64) -> SimConfig {
    SimConfig::paper_default(kind).with_requests(requests)
}

fn engine_json(c: &SimConfig, workload: &str, engine: Engine) -> String {
    let wl = catalog::by_name(workload).expect("catalog workload");
    System::new(c.clone(), wl)
        .run_with_engine(engine)
        .to_json()
        .to_json_string()
}

fn engine_json_jobs(c: &SimConfig, workload: &str, engine: Engine, jobs: usize) -> String {
    let wl = catalog::by_name(workload).expect("catalog workload");
    let mut pool = Pool::new(jobs);
    System::new(c.clone(), wl)
        .run_parallel_with_engine(&mut pool, engine)
        .to_json()
        .to_json_string()
}

/// Asserts the full engine × jobs matrix for one configuration: event
/// serial, event jobs-1, event jobs-4, and cycle jobs-4 must all equal
/// cycle serial byte-for-byte.
fn assert_engines_agree(c: &SimConfig, workload: &str, label: &str) {
    let reference = engine_json(c, workload, Engine::Cycle);
    assert_eq!(
        reference,
        engine_json(c, workload, Engine::Event),
        "event != cycle (serial) for {label}"
    );
    for jobs in [1usize, 4] {
        assert_eq!(
            reference,
            engine_json_jobs(c, workload, Engine::Event, jobs),
            "event@jobs{jobs} != cycle for {label}"
        );
    }
    assert_eq!(
        reference,
        engine_json_jobs(c, workload, Engine::Cycle, 4),
        "cycle@jobs4 != cycle for {label}"
    );
}

/// Figure 8 golden scenario: all four system kinds on canneal.
#[test]
fn engines_agree_on_fig08_scenarios() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::WowNr,
        SystemKind::RwowRd,
        SystemKind::RwowRde,
    ] {
        let c = cfg(kind, 1000);
        assert_engines_agree(&c, "canneal", &format!("fig08 {kind:?}"));
    }
}

/// Figure 10 golden scenario: baseline vs full PCMap on both
/// equivalence-suite workloads.
#[test]
fn engines_agree_on_fig10_scenarios() {
    for workload in ["canneal", "streamcluster"] {
        for kind in [SystemKind::Baseline, SystemKind::RwowRde] {
            let c = cfg(kind, 1000);
            assert_engines_agree(&c, workload, &format!("fig10 {kind:?}/{workload}"));
        }
    }
}

/// Table IV golden scenario: the rollback-accounting runs on MP6,
/// including the always-faulty bound (per-core rollback RNG streams).
#[test]
fn engines_agree_on_tab04_scenarios() {
    for (kind, rollback) in [
        (SystemKind::Baseline, RollbackMode::NeverFaulty),
        (SystemKind::RwowNr, RollbackMode::AlwaysFaulty),
        (SystemKind::RwowNr, RollbackMode::NeverFaulty),
    ] {
        let c = cfg(kind, 3500).with_rollback(rollback);
        assert_engines_agree(&c, "MP6", &format!("tab04 {kind:?}/{rollback:?}"));
    }
}

/// The fault storm profile: recovery retries, watchdog trips, rank
/// degradation windows and corruption rollbacks must all land on the
/// same cycles in both engines.
#[test]
fn engines_agree_under_fault_storm() {
    for kind in [SystemKind::Baseline, SystemKind::RwowRde] {
        let c = cfg(kind, 1000).with_faults(FaultConfig::storm(0.04, 0xFEED));
        assert_engines_agree(&c, "canneal", &format!("storm {kind:?}"));
    }
}

/// Lifecycle tracing on: the tracer observes per-cycle wait attribution,
/// so it is the most sensitive probe of engines visiting different
/// cycles. Determinism-visible observability counters must match too.
#[test]
fn engines_agree_with_lifecycle_tracing_on() {
    let c = cfg(SystemKind::RwowRde, 1200);
    let wl = catalog::by_name("canneal").expect("catalog workload");
    let run = |engine: Engine| {
        let mut sys = System::new(c.clone(), wl.clone());
        sys.enable_lifecycle_tracing();
        sys.run_with_engine(engine)
    };
    let a = run(Engine::Cycle);
    let b = run(Engine::Event);
    assert_eq!(
        a.to_json().to_json_string(),
        b.to_json().to_json_string(),
        "traced event != traced cycle"
    );
    // Determinism-visible obs counters: the report JSON already embeds
    // events_dropped / lifetrace_dropped / invariants; compare the
    // lifecycle sidecar's merged totals explicitly since they ride
    // outside to_json.
    assert_eq!(a.lifetrace_dropped, 0);
    assert_eq!(b.lifetrace_dropped, 0);
    let (la, lb) = (a.lifecycle.expect("traced"), b.lifecycle.expect("traced"));
    assert_eq!(la.merged.violations, 0);
    assert_eq!(la.merged.violations, lb.merged.violations);
    assert_eq!(la.merged.requests, lb.merged.requests);
}

/// `PCMAP_ENGINE` unset must default to the event engine and `run()`
/// must agree with the explicit-engine entry points.
#[test]
fn default_engine_is_event_and_run_agrees() {
    assert_eq!(Engine::from_env(), Engine::Event);
    let c = cfg(SystemKind::RwowRde, 400);
    let wl = catalog::by_name("streamcluster").expect("catalog workload");
    let via_run = System::new(c.clone(), wl.clone())
        .run()
        .to_json()
        .to_json_string();
    assert_eq!(via_run, engine_json(&c, "streamcluster", Engine::Event));
    assert_eq!(via_run, engine_json(&c, "streamcluster", Engine::Cycle));
}
