//! Error detection and correction codes for the PCMap memory system.
//!
//! An ECC DIMM stores 8 check bits per 64-bit data word on a ninth chip;
//! PCMap adds a tenth *PCC* (parity correction code) chip whose word is the
//! XOR of the eight data words, enabling RAID-style reconstruction of a word
//! held by a chip that is busy serving a write (§IV-B of the paper).
//!
//! - [`hamming`] — a real bit-level Hamming SECDED(72,64): single-error
//!   correction, double-error detection.
//! - [`parity`] — the PCC code: XOR parity over the line's words and erased
//!   word reconstruction.
//! - [`line`] — per-cache-line codec combining both: the 8-byte ECC word
//!   (one SECDED check byte per data word) and the 8-byte PCC word stored on
//!   the ninth and tenth chips.
//!
//! # Example
//!
//! ```
//! use pcmap_ecc::hamming;
//!
//! let cw = hamming::encode(0xdead_beef_cafe_f00d);
//! // Flip any single bit: the decoder corrects it.
//! let corrupted = cw ^ (1u128 << 17);
//! match hamming::decode(corrupted) {
//!     hamming::Decoded::Corrected { data, .. } => assert_eq!(data, 0xdead_beef_cafe_f00d),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod hamming;
pub mod line;
pub mod parity;

pub use hamming::{decode, encode, Decoded};
pub use line::LineCodec;
pub use parity::{parity_of, reconstruct_word};
