//! Per-cache-line codec: the ECC word and PCC word stored on chips 9 and 10.
//!
//! Each 64-bit data word gets one SECDED check byte; the eight check bytes
//! of a line pack into the single 64-bit *ECC word* held by the ECC chip.
//! The *PCC word* is the XOR of the eight data words, held by the PCC chip.

use crate::hamming;
use crate::parity;
use pcmap_types::{CacheLine, WordMask, WORDS_PER_LINE};

/// Computes and verifies the ECC/PCC words of cache lines.
///
/// This type is stateless; it exists so downstream code reads as hardware
/// (`codec.ecc_word(..)` ≙ "the ECC chip's content for this line").
///
/// # Example
///
/// ```
/// use pcmap_ecc::LineCodec;
/// use pcmap_types::CacheLine;
///
/// let codec = LineCodec::new();
/// let line = CacheLine::from_seed(3);
/// let ecc = codec.ecc_word(&line);
/// assert!(codec.verify(&line, ecc).is_clean());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineCodec;

/// Result of verifying a line against its stored ECC word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineCheck {
    /// All eight words verified clean.
    Clean,
    /// Some words had single-bit errors that were corrected; the corrected
    /// line is returned.
    Corrected {
        /// The repaired line.
        line: CacheLine,
        /// Which word slots needed correction.
        words: WordMask,
    },
    /// At least one word had an uncorrectable (double-bit) error.
    Uncorrectable {
        /// Word slots where double errors were detected.
        words: WordMask,
    },
}

impl LineCheck {
    /// `true` if no error was found.
    pub fn is_clean(&self) -> bool {
        matches!(self, LineCheck::Clean)
    }

    /// The usable line data, if recoverable.
    pub fn recovered(&self, original: &CacheLine) -> Option<CacheLine> {
        match self {
            LineCheck::Clean => Some(*original),
            LineCheck::Corrected { line, .. } => Some(*line),
            LineCheck::Uncorrectable { .. } => None,
        }
    }
}

impl LineCodec {
    /// Creates a codec.
    pub fn new() -> Self {
        Self
    }

    /// The 64-bit ECC word for `line`: check byte of word *i* in byte *i*.
    pub fn ecc_word(&self, line: &CacheLine) -> u64 {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::EccEncode);
        let mut out = 0u64;
        for i in 0..WORDS_PER_LINE {
            let byte = hamming::check_byte(hamming::encode(line.word(i)));
            out |= (byte as u64) << (i * 8);
        }
        out
    }

    /// The 64-bit PCC word for `line` (XOR of the data words).
    pub fn pcc_word(&self, line: &CacheLine) -> u64 {
        parity::parity_of(line)
    }

    /// Recomputes only the check bytes selected by `mask`, merging them into
    /// an existing ECC word — the fine-grained ECC update performed when a
    /// write touches only some words.
    pub fn update_ecc_word(&self, old_ecc: u64, line: &CacheLine, mask: WordMask) -> u64 {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::EccEncode);
        let mut out = old_ecc;
        for i in mask.iter() {
            let byte = hamming::check_byte(hamming::encode(line.word(i)));
            out &= !(0xffu64 << (i * 8));
            out |= (byte as u64) << (i * 8);
        }
        out
    }

    /// Verifies `line` against a stored ECC word, correcting single-bit
    /// errors per word.
    pub fn verify(&self, line: &CacheLine, ecc_word: u64) -> LineCheck {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::EccDecode);
        let mut corrected = *line;
        let mut fixed = WordMask::empty();
        let mut dead = WordMask::empty();
        for i in 0..WORDS_PER_LINE {
            let check = ((ecc_word >> (i * 8)) & 0xff) as u8;
            let cw = hamming::assemble(line.word(i), check);
            match hamming::decode(cw) {
                hamming::Decoded::Clean { .. } => {}
                hamming::Decoded::Corrected { data, .. } => {
                    corrected.set_word(i, data);
                    fixed.insert(i);
                }
                hamming::Decoded::DoubleError => dead.insert(i),
            }
        }
        if !dead.is_empty() {
            LineCheck::Uncorrectable { words: dead }
        } else if !fixed.is_empty() {
            LineCheck::Corrected {
                line: corrected,
                words: fixed,
            }
        } else {
            LineCheck::Clean
        }
    }

    /// Reconstructs the word at `missing` of a partially read line using the
    /// PCC word — RoW's read path while one data chip is busy.
    ///
    /// # Panics
    ///
    /// Panics if `missing >= 8`.
    pub fn reconstruct(&self, partial: &CacheLine, missing: usize, pcc_word: u64) -> CacheLine {
        let _span = pcmap_prof::span(pcmap_prof::SpanId::EccDecode);
        let mut out = *partial;
        out.set_word(
            missing,
            parity::reconstruct_word(partial, missing, pcc_word),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_verify() {
        let codec = LineCodec::new();
        let line = CacheLine::from_seed(11);
        let ecc = codec.ecc_word(&line);
        assert!(codec.verify(&line, ecc).is_clean());
        assert_eq!(codec.verify(&line, ecc).recovered(&line), Some(line));
    }

    #[test]
    fn single_bit_flip_in_any_word_is_corrected() {
        let codec = LineCodec::new();
        let line = CacheLine::from_seed(12);
        let ecc = codec.ecc_word(&line);
        for w in 0..WORDS_PER_LINE {
            for bit in [0u32, 31, 63] {
                let mut bad = line;
                bad.set_word(w, bad.word(w) ^ (1u64 << bit));
                match codec.verify(&bad, ecc) {
                    LineCheck::Corrected { line: fixed, words } => {
                        assert_eq!(fixed, line);
                        assert_eq!(words.count(), 1);
                        assert!(words.contains(w));
                    }
                    other => panic!("word {w} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn double_bit_flip_is_uncorrectable() {
        let codec = LineCodec::new();
        let line = CacheLine::from_seed(13);
        let ecc = codec.ecc_word(&line);
        let mut bad = line;
        bad.set_word(2, bad.word(2) ^ 0b11);
        match codec.verify(&bad, ecc) {
            LineCheck::Uncorrectable { words } => assert!(words.contains(2)),
            other => panic!("{other:?}"),
        }
        assert_eq!(codec.verify(&bad, ecc).recovered(&bad), None);
    }

    #[test]
    fn partial_ecc_update_matches_full_recompute() {
        let codec = LineCodec::new();
        let old = CacheLine::from_seed(14);
        let mut new = old;
        new.set_word(1, 0xaaaa);
        new.set_word(6, 0xbbbb);
        let mask: WordMask = [1usize, 6].into_iter().collect();
        let updated = codec.update_ecc_word(codec.ecc_word(&old), &new, mask);
        assert_eq!(updated, codec.ecc_word(&new));
    }

    #[test]
    fn reconstruction_under_second_concurrent_error_is_uncorrectable() {
        // RoW reconstructs a busy chip's word from the seven present words
        // plus the PCC chip. If a *second* error corrupts one of the
        // present words at the same time, the XOR parity folds that
        // corruption into the rebuilt word too — the result is wrong in
        // two words and SECDED must refuse it, never verify it clean.
        let codec = LineCodec::new();
        let line = CacheLine::from_seed(16);
        let ecc = codec.ecc_word(&line);
        let pcc = codec.pcc_word(&line);
        let mut partial = line;
        partial.set_word(2, partial.word(2) ^ 0b101); // double-bit transient
        partial.set_word(5, 0); // busy chip: word unavailable
        let rebuilt = codec.reconstruct(&partial, 5, pcc);
        // The parity mixes word 2's flips into the reconstruction.
        assert_eq!(rebuilt.word(5), line.word(5) ^ 0b101);
        match codec.verify(&rebuilt, ecc) {
            LineCheck::Uncorrectable { words } => {
                assert!(words.contains(2), "the transient victim is flagged");
                assert!(words.contains(5), "the poisoned reconstruction too");
            }
            other => panic!("second concurrent error must be refused: {other:?}"),
        }
        assert_eq!(codec.verify(&rebuilt, ecc).recovered(&rebuilt), None);
    }

    #[test]
    fn reconstruction_under_single_concurrent_flip_still_recovers() {
        // A *single*-bit concurrent error stays within SECDED's per-word
        // correction power: both the victim word and the poisoned
        // reconstruction carry one flipped bit each, and verify corrects
        // the line back to the stored truth.
        let codec = LineCodec::new();
        let line = CacheLine::from_seed(17);
        let ecc = codec.ecc_word(&line);
        let pcc = codec.pcc_word(&line);
        let mut partial = line;
        partial.set_word(1, partial.word(1) ^ (1 << 40));
        partial.set_word(6, 0);
        let rebuilt = codec.reconstruct(&partial, 6, pcc);
        match codec.verify(&rebuilt, ecc) {
            LineCheck::Corrected { line: fixed, words } => {
                assert_eq!(fixed, line);
                assert_eq!(words.count(), 2);
            }
            other => panic!("single concurrent flip must correct: {other:?}"),
        }
    }

    #[test]
    fn reconstruct_restores_missing_word() {
        let codec = LineCodec::new();
        let line = CacheLine::from_seed(15);
        let pcc = codec.pcc_word(&line);
        for missing in 0..WORDS_PER_LINE {
            let mut partial = line;
            partial.set_word(missing, 0); // the busy chip's word is unavailable
            assert_eq!(codec.reconstruct(&partial, missing, pcc), line);
        }
    }

    proptest! {
        #[test]
        fn prop_verify_clean(seed: u64) {
            let codec = LineCodec::new();
            let line = CacheLine::from_seed(seed);
            prop_assert!(codec.verify(&line, codec.ecc_word(&line)).is_clean());
        }

        #[test]
        fn prop_single_flip_corrected(seed: u64, w in 0usize..8, bit in 0u32..64) {
            let codec = LineCodec::new();
            let line = CacheLine::from_seed(seed);
            let ecc = codec.ecc_word(&line);
            let mut bad = line;
            bad.set_word(w, bad.word(w) ^ (1u64 << bit));
            prop_assert_eq!(codec.verify(&bad, ecc).recovered(&bad), Some(line));
        }

        #[test]
        fn prop_partial_update_equals_full(seed: u64, bits in 0u16..256) {
            let codec = LineCodec::new();
            let old = CacheLine::from_seed(seed);
            let mut new = old;
            let mask = WordMask::from_bits(bits);
            for i in mask.iter() {
                new.set_word(i, old.word(i).wrapping_add(1));
            }
            let updated = codec.update_ecc_word(codec.ecc_word(&old), &new, mask);
            prop_assert_eq!(updated, codec.ecc_word(&new));
        }
    }
}
